#![warn(missing_docs)]

//! # PrivHP — Private Synthetic Data Generation in Bounded Memory
//!
//! Facade crate re-exporting the whole workspace. This is the crate the
//! `examples/` and integration `tests/` use; downstream users can depend on
//! `privhp` alone and reach every subsystem:
//!
//! * [`dp`] — differential-privacy primitives (Laplace/geometric mechanisms,
//!   ε-budget accounting);
//! * [`sketch`] — Count-Min / Count sketches and their ε-DP variants,
//!   Misra–Gries, tail-norm utilities;
//! * [`domain`] — hierarchical binary decompositions of metric spaces
//!   (`[0,1]^d`, the unit interval, IPv4, geographic boxes);
//! * [`core`] — the PrivHP algorithm itself (paper Algorithms 1–3), the
//!   synthetic-data sampler, budget allocation, and theoretical bound
//!   evaluators;
//! * [`metrics`] — 1-Wasserstein utility measurement (exact 1-D,
//!   hierarchical/tree, sliced);
//! * [`baselines`] — the Table-1 comparators (PMM, SRRW, uniform,
//!   non-private);
//! * [`workloads`] — seeded synthetic stream generators.
//!
//! ## Quick start
//!
//! ```
//! use privhp::core::{PrivHp, PrivHpConfig};
//! use privhp::domain::UnitInterval;
//! use rand::SeedableRng;
//!
//! let data: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0).powi(2)).collect();
//! let config = PrivHpConfig::for_domain(1.0, data.len(), 8);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let gen = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng)
//!     .expect("valid configuration");
//! let synthetic: Vec<f64> = gen.sample_many(1000, &mut rng);
//! assert_eq!(synthetic.len(), 1000);
//! ```

pub use privhp_baselines as baselines;
pub use privhp_core as core;
pub use privhp_domain as domain;
pub use privhp_dp as dp;
pub use privhp_metrics as metrics;
pub use privhp_sketch as sketch;
pub use privhp_workloads as workloads;
