//! Offline stand-in for the slice of `criterion` the workspace's benches
//! use. Provides the same macro/builder surface (`criterion_group!`,
//! `criterion_main!`, `Criterion`, benchmark groups, `iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`) but a much simpler measurement
//! loop: warm up once, then time up to `sample_size` iterations capped by a
//! wall-clock budget, and print mean ns/iter. No statistics, plots, or
//! baselines — enough to smoke-run `cargo bench` and keep the bench targets
//! compiling offline.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget for the stand-in measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(200);

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Re-export of the standard black box (what recent criterion uses too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The stand-in runs one setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Explicit iteration count per batch.
    NumBatches(u64),
}

/// Throughput annotation (recorded but only echoed by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter display.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function + parameter form, e.g. `privhp/n=2^14`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up
        if test_mode() {
            self.report(1, Duration::ZERO);
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.report(iters, start.elapsed());
    }

    /// Times `routine` with fresh per-iteration state from `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        if test_mode() {
            self.report(1, Duration::ZERO);
            return;
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
        self.report(iters, measured);
    }

    fn report(&self, iters: u64, total: Duration) {
        if iters > 0 && !test_mode() {
            let per = total.as_nanos() / iters as u128;
            println!("    {iters} iters, {per} ns/iter");
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the iteration cap for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records a throughput annotation (echoed only).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  [throughput: {n} elements/iter]"),
            Throughput::Bytes(n) => println!("  [throughput: {n} bytes/iter]"),
        }
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}/{id}", self.name);
        let mut b = Bencher { sample_size: self.sample_size };
        f(&mut b);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench: {}/{id}", self.name);
        let mut b = Bencher { sample_size: self.sample_size };
        f(&mut b, input);
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default iteration cap.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {name}");
        let mut b = Bencher { sample_size: self.sample_size };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.to_string(), criterion: self, sample_size }
    }

    /// Prints the closing summary (no-op in the stand-in).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("counting", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= 1);
    }

    #[test]
    fn group_builder_chain_compiles() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
