//! Offline stand-in for the `rand 0.8` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually calls: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`rngs::StdRng`].
//!
//! Differences from the real crate, chosen deliberately and documented so a
//! later PR can swap the real dependency back in without surprises:
//!
//! * `StdRng` is **xoshiro256++** seeded through splitmix64 rather than
//!   ChaCha12. It is a high-quality statistical PRNG but *not* a CSPRNG;
//!   the workspace's privacy analysis treats RNG quality as an orthogonal
//!   concern (see `privhp-dp`'s module docs), and every consumer only
//!   relies on determinism-given-seed.
//! * `SeedableRng` exposes only `seed_from_u64` (the single constructor
//!   used anywhere in the workspace).
//! * `gen_range` accepts half-open and inclusive ranges over the integer
//!   and float types the workspace samples; other `SampleUniform` types are
//!   simply not implemented.
//!
//! Streams produced under this stand-in differ numerically from upstream
//! `rand`, but all workspace tests assert distributional properties, not
//! exact draws.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let take = (dest.len() - i).min(8);
            dest[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole value range via `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply (Lemire) rejection sampling: unbiased and fast.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return <$t as Standard>::random_from(rng);
                }
                lo.wrapping_add(sample_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::random_from(rng);
                let x = self.start + (self.end - self.start) * u;
                // Floating-point rounding can land exactly on the excluded
                // upper bound; nudge back inside.
                if x < self.end { x } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::random_from(rng);
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    )*};
}
// f64 only: a parallel f32 impl would make `gen_range(0.0..1.0)` ambiguous
// under literal fallback, and the workspace never samples f32 ranges.
impl_range_float!(f64);

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T` over its full range
    /// (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0,1]");
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of upstream `rand` — see the crate docs
    /// for why this offline stand-in differs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_range_inclusive_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match rng.gen_range(0u8..=1) {
                0 => lo_seen = true,
                1 => hi_seen = true,
                _ => unreachable!(),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "P(true) = {frac}");
    }

    #[test]
    fn float_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut &mut rng);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u64();
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = rng.gen_range(5..5);
    }
}
