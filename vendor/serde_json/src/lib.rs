//! Offline stand-in for the slice of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`to_value`] /
//! [`from_value`], all built on the vendored `serde` crate's reduced
//! [`Value`] data model.
//!
//! The emitted JSON is standard (RFC 8259): real serde_json can parse files
//! written by this crate. The parser accepts standard JSON; numbers parse
//! to `Int`/`UInt` when integral and `Float` otherwise, so `u64` seeds
//! round-trip at full precision.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialisation/deserialisation failure.
pub type Error = serde::Error;

/// Lowers any serialisable value to the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serialises to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value_str(s)?)
}

/// Serialises an already-built [`Value`] tree to compact JSON without
/// cloning it (the `to_string` path would route through `to_value`, which
/// deep-copies; response-building servers serialise large trees they
/// already hold as `Value`).
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Parses JSON text into a raw [`Value`].
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---- printer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        // `{}` prints integral floats without a decimal point; keep one so
        // the value parses back as Float, not Int.
        if s.contains(['.', 'e', 'E']) {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is serde_json's lossy convention too.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn fail(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral chars as
                            // two \uXXXX units.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.fail("invalid unicode escape"))?);
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                // Plain ASCII: the overwhelmingly common case, one byte.
                0x00..=0x7F => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: step back and validate exactly this
                    // char's bytes (its length is in the lead byte).
                    // Validating the whole remaining input here would make
                    // string parsing quadratic in document size.
                    self.pos -= 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.fail("invalid UTF-8")),
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.fail("truncated \\u escape"));
            };
            self.pos += 1;
            let digit =
                (b as char).to_digit(16).ok_or_else(|| self.fail("bad hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse_value_str(json).unwrap();
            assert_eq!(to_string(&Wrapper(v.clone())).unwrap(), json);
        }
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn u64_seed_roundtrips_exactly() {
        let seed = u64::MAX - 5;
        let json = to_string(&seed).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn floats_keep_decimal_point() {
        let json = to_string(&4.0f64).unwrap();
        assert_eq!(json, "4.0");
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(back, 4.0);
    }

    #[test]
    fn nested_pretty_output_parses_back() {
        let data = vec![(1u64, 0.5f64), (2, 1.5)];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(u64, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\none \"quoted\" back\\slash\ttab";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let v: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn garbage_rejected_with_position() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(parse_value_str("[1,]").is_err());
    }

    #[test]
    fn object_parse_preserves_order() {
        let v = parse_value_str("{\"b\": 1, \"a\": 2}").unwrap();
        let Value::Object(fields) = v else { panic!() };
        assert_eq!(fields[0].0, "b");
        assert_eq!(fields[1].0, "a");
    }
}
