//! Offline stand-in for the slice of `proptest` the workspace's property
//! tests use: the `proptest!` macro over `ident in strategy` bindings,
//! range and tuple strategies, `proptest::collection::vec`, the
//! `prop_assert*` macros, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one important way: there is **no
//! shrinking**. A failing case reports the case number and the seed so it
//! can be replayed (`PROPTEST_SEED=<n> cargo test`), but it is not
//! minimised. Case generation is deterministic per test function unless
//! `PROPTEST_SEED` overrides it.

use std::ops::Range;

/// Re-exports matching `proptest::prelude::*` at the names the tests use.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// A failing property (what `prop_assert!` raises).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration. Only `cases` is honoured by the stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

// ---- random source --------------------------------------------------------

/// The deterministic generator backing value strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening multiply; bias is irrelevant at test scales but cheap to
        // avoid anyway.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A generator of random values for one property input.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let x = self.start + (self.end - self.start) * rng.unit_f64();
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: an exact size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test deterministic seed, overridable with `PROPTEST_SEED`.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a property inside `proptest!`, failing the current case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// Property-test entry macro, mirroring proptest's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    // NOTE: the `#[test]` attribute written in the source is captured by the
    // `$meta` repetition and re-emitted verbatim (matching a literal
    // `#[test]` after a meta repetition would be ambiguous to the macro
    // parser).
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {case}/{} (seed {seed}): {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Vec strategies honour exact and ranged lengths.
        #[test]
        fn vec_lengths(
            exact in proptest::collection::vec(0u8..2, 7),
            ranged in proptest::collection::vec(0.0f64..1.0, 1..5)
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..5).contains(&ranged.len()));
        }

        /// Tuple strategies sample component-wise.
        #[test]
        fn tuples_sample(pairs in proptest::collection::vec((0u64..10, 0.5f64..1.5), 1..20)) {
            for (k, w) in &pairs {
                prop_assert!(*k < 10);
                prop_assert!((0.5..1.5).contains(w), "w = {}", w);
            }
        }
    }

    #[test]
    fn deterministic_without_env_override() {
        if std::env::var("PROPTEST_SEED").is_ok() {
            return; // seeded externally; determinism-across-names untestable
        }
        let a = crate::seed_for("x");
        assert_eq!(a, crate::seed_for("x"));
        assert_ne!(a, crate::seed_for("y"));
    }
}
