//! Derive macros for the workspace's vendored `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! reduced `Serialize::to_value` / `Deserialize::from_value` traits, without
//! `syn`/`quote` (the build environment is offline, so this crate parses the
//! item's token stream directly). Supported shapes — exactly the ones the
//! workspace uses:
//!
//! * structs with named fields, unit structs, tuple structs;
//! * enums with unit, newtype, tuple and struct variants
//!   (externally-tagged encoding, as in real serde);
//! * generic type parameters (each parameter is bounded by the derived
//!   trait, serde-style);
//! * field attributes `#[serde(default)]` and `#[serde(with = "module")]`,
//!   where `module::serialize(&T) -> Value` and
//!   `module::deserialize(&Value) -> Result<T, Error>`.
//!
//! Anything else fails loudly with a `compile_error!` rather than silently
//! producing wrong encodings.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derives the reduced `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives the reduced `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input).and_then(|item| generate(&item, mode)) {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive produced invalid code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---- item model -----------------------------------------------------------

struct Field {
    name: String,
    default: bool,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    UnitStruct,
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter declarations, e.g. `A: Clone` (without `<>`).
    generics: Vec<String>,
    /// Bare generic parameter names, e.g. `A`.
    generic_names: Vec<String>,
    body: Body,
}

// ---- token-level parsing --------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips `#[...]` attribute groups, returning any `#[serde(...)]`
    /// payloads encountered.
    fn take_attrs(&mut self) -> Result<Vec<TokenStream>, String> {
        let mut serde_payloads = Vec::new();
        while self.at_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.at_ident("serde") {
                        inner.next();
                        if let Some(TokenTree::Group(payload)) = inner.next() {
                            serde_payloads.push(payload.stream());
                        }
                    }
                }
                other => return Err(format!("malformed attribute near {other:?}")),
            }
        }
        Ok(serde_payloads)
    }

    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Collects the tokens of one generic parameter / one field type: up to
    /// a top-level `,` (angle-bracket depth tracked manually, since `<>` are
    /// plain puncts in a token stream).
    fn take_until_toplevel_comma(&mut self) -> Vec<TokenTree> {
        let mut depth = 0i32;
        let mut out = Vec::new();
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            out.push(self.next().unwrap());
        }
        out
    }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
}

fn parse_serde_attrs(payloads: &[TokenStream], field: &mut Field) -> Result<(), String> {
    for payload in payloads {
        let mut c = Cursor::new(payload.clone());
        while let Some(t) = c.next() {
            match t {
                TokenTree::Ident(i) if i.to_string() == "default" => field.default = true,
                TokenTree::Ident(i) if i.to_string() == "with" => {
                    if !c.at_punct('=') {
                        return Err("expected `with = \"module\"`".into());
                    }
                    c.next();
                    match c.next() {
                        Some(TokenTree::Literal(lit)) => {
                            let s = lit.to_string();
                            field.with = Some(s.trim_matches('"').to_string());
                        }
                        other => return Err(format!("expected module string, found {other:?}")),
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => {
                    return Err(format!(
                        "unsupported #[serde(...)] attribute `{other}` (the vendored \
                         serde stand-in supports only `default` and `with`)"
                    ))
                }
            }
        }
    }
    Ok(())
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let serde_attrs = c.take_attrs()?;
        c.skip_visibility();
        let name = c.expect_ident()?;
        if !c.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        let _ty = c.take_until_toplevel_comma();
        if c.at_punct(',') {
            c.next();
        }
        let mut field = Field { name, default: false, with: None };
        parse_serde_attrs(&serde_attrs, &mut field)?;
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        let _ = c.take_attrs()?;
        c.skip_visibility();
        let ty = c.take_until_toplevel_comma();
        if !ty.is_empty() {
            count += 1;
        }
        if c.at_punct(',') {
            c.next();
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _ = c.take_attrs()?; // doc comments, #[default], ...
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream())?;
                c.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        if c.at_punct('=') {
            return Err(format!(
                "variant `{name}`: explicit discriminants are not supported by the \
                 vendored serde stand-in"
            ));
        }
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    let _ = c.take_attrs()?;
    c.skip_visibility();

    let keyword = c.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("cannot derive serde traits for `{other}` items")),
    };
    let name = c.expect_ident()?;

    let mut generics = Vec::new();
    let mut generic_names = Vec::new();
    if c.at_punct('<') {
        c.next();
        let mut depth = 1i32;
        let mut current: Vec<TokenTree> = Vec::new();
        loop {
            let Some(t) = c.next() else {
                return Err("unterminated generic parameter list".into());
            };
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        push_generic(&current, &mut generics, &mut generic_names)?;
                        current.clear();
                        continue;
                    }
                    _ => {}
                }
            }
            current.push(t);
        }
        push_generic(&current, &mut generics, &mut generic_names)?;
    }

    if c.at_ident("where") {
        return Err("`where` clauses are not supported by the vendored serde stand-in".into());
    }

    let body = if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            None => Body::UnitStruct,
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };

    Ok(Item { name, generics, generic_names, body })
}

fn push_generic(
    tokens: &[TokenTree],
    generics: &mut Vec<String>,
    names: &mut Vec<String>,
) -> Result<(), String> {
    if tokens.is_empty() {
        return Ok(());
    }
    if matches!(&tokens[0], TokenTree::Punct(p) if p.as_char() == '\'') {
        return Err("lifetime parameters are not supported by the vendored serde stand-in".into());
    }
    if matches!(&tokens[0], TokenTree::Ident(i) if i.to_string() == "const") {
        return Err("const generics are not supported by the vendored serde stand-in".into());
    }
    let TokenTree::Ident(first) = &tokens[0] else {
        return Err(format!("unsupported generic parameter near {:?}", tokens[0]));
    };
    names.push(first.to_string());
    generics.push(tokens_to_string(tokens));
    Ok(())
}

// ---- code generation ------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| {
                if g.contains(':') {
                    format!("{g} + ::serde::{trait_name}")
                } else {
                    format!("{g}: ::serde::{trait_name}")
                }
            })
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            item.name,
            item.generic_names.join(", ")
        )
    }
}

fn ser_field_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(module) => format!("{module}::serialize(&{access})"),
        None => format!("::serde::Serialize::to_value(&{access})"),
    }
}

fn de_field_expr(field: &Field, source: &str, ty_name: &str) -> String {
    let found = match &field.with {
        Some(module) => format!("{module}::deserialize(__x)?"),
        None => "::serde::Deserialize::from_value(__x)?".to_string(),
    };
    let missing = if field.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field({:?}, {:?}))",
            field.name, ty_name
        )
    };
    format!(
        "match {source}.get({:?}) {{ \
           ::std::option::Option::Some(__x) => {found}, \
           ::std::option::Option::None => {missing}, \
         }}",
        field.name
    )
}

fn generate(item: &Item, mode: Mode) -> Result<String, String> {
    let name = &item.name;
    match mode {
        Mode::Ser => {
            let body = match &item.body {
                Body::UnitStruct => "::serde::Value::Null".to_string(),
                Body::NamedStruct(fields) => {
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "__fields.push(({:?}.to_string(), {}));",
                                f.name,
                                ser_field_expr(f, &format!("self.{}", f.name))
                            )
                        })
                        .collect();
                    format!(
                        "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, \
                         ::serde::Value)> = ::std::vec::Vec::new(); {} \
                         ::serde::Value::Object(__fields) }}",
                        pushes.join(" ")
                    )
                }
                Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Body::TupleStruct(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Body::Enum(variants) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|v| {
                            let vname = &v.name;
                            match &v.kind {
                                VariantKind::Unit => format!(
                                    "{name}::{vname} => ::serde::Value::String({:?}.to_string()),",
                                    vname
                                ),
                                VariantKind::Tuple(n) => {
                                    let binds: Vec<String> =
                                        (0..*n).map(|i| format!("__f{i}")).collect();
                                    let inner = if *n == 1 {
                                        "::serde::Serialize::to_value(__f0)".to_string()
                                    } else {
                                        let items: Vec<String> = binds
                                            .iter()
                                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                                            .collect();
                                        format!(
                                            "::serde::Value::Array(vec![{}])",
                                            items.join(", ")
                                        )
                                    };
                                    format!(
                                        "{name}::{vname}({}) => ::serde::Value::Object(vec![({:?}.to_string(), {inner})]),",
                                        binds.join(", "),
                                        vname
                                    )
                                }
                                VariantKind::Struct(fields) => {
                                    let binds: Vec<String> =
                                        fields.iter().map(|f| f.name.clone()).collect();
                                    let pushes: Vec<String> = fields
                                        .iter()
                                        .map(|f| {
                                            format!(
                                                "__fields.push(({:?}.to_string(), {}));",
                                                f.name,
                                                ser_field_expr(f, &format!("(*{})", f.name))
                                            )
                                        })
                                        .collect();
                                    format!(
                                        "{name}::{vname} {{ {} }} => {{ \
                                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new(); \
                                         {} \
                                         ::serde::Value::Object(vec![({:?}.to_string(), ::serde::Value::Object(__fields))]) }},",
                                        binds.join(", "),
                                        pushes.join(" "),
                                        vname
                                    )
                                }
                            }
                        })
                        .collect();
                    format!("match self {{ {} }}", arms.join(" "))
                }
            };
            Ok(format!(
                "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
                impl_header(item, "Serialize")
            ))
        }
        Mode::De => {
            let body = match &item.body {
                Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
                Body::NamedStruct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{}: {},", f.name, de_field_expr(f, "__v", name)))
                        .collect();
                    format!(
                        "if !matches!(__v, ::serde::Value::Object(_)) {{ \
                           return ::std::result::Result::Err(::serde::Error::type_mismatch({:?}, __v)); \
                         }} \
                         ::std::result::Result::Ok({name} {{ {} }})",
                        format!("object ({name})"),
                        inits.join(" ")
                    )
                }
                Body::TupleStruct(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Body::TupleStruct(n) => {
                    let gets: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| \
                           ::serde::Error::type_mismatch(\"array\", __v))?; \
                         if __items.len() != {n} {{ \
                           return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {n} elements, found {{}}\", __items.len()))); \
                         }} \
                         ::std::result::Result::Ok({name}({}))",
                        gets.join(", ")
                    )
                }
                Body::Enum(variants) => {
                    let unit_arms: Vec<String> = variants
                        .iter()
                        .filter(|v| matches!(v.kind, VariantKind::Unit))
                        .map(|v| {
                            format!(
                                "{:?} => ::std::result::Result::Ok({name}::{}),",
                                v.name, v.name
                            )
                        })
                        .collect();
                    let data_arms: Vec<String> = variants
                        .iter()
                        .filter_map(|v| {
                            let vname = &v.name;
                            match &v.kind {
                                VariantKind::Unit => None,
                                VariantKind::Tuple(1) => Some(format!(
                                    "{:?} => ::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::from_value(__inner)?)),",
                                    vname
                                )),
                                VariantKind::Tuple(n) => {
                                    let gets: Vec<String> = (0..*n)
                                        .map(|i| {
                                            format!(
                                                "::serde::Deserialize::from_value(&__items[{i}])?"
                                            )
                                        })
                                        .collect();
                                    Some(format!(
                                        "{:?} => {{ \
                                         let __items = __inner.as_array().ok_or_else(|| \
                                           ::serde::Error::type_mismatch(\"array\", __inner))?; \
                                         if __items.len() != {n} {{ \
                                           return ::std::result::Result::Err(::serde::Error::custom(\
                                             format!(\"variant {vname}: expected {n} elements, found {{}}\", __items.len()))); \
                                         }} \
                                         ::std::result::Result::Ok({name}::{vname}({})) }},",
                                        vname,
                                        gets.join(", ")
                                    ))
                                }
                                VariantKind::Struct(fields) => {
                                    let inits: Vec<String> = fields
                                        .iter()
                                        .map(|f| {
                                            format!(
                                                "{}: {},",
                                                f.name,
                                                de_field_expr(
                                                    f,
                                                    "__inner",
                                                    &format!("{name}::{vname}")
                                                )
                                            )
                                        })
                                        .collect();
                                    Some(format!(
                                        "{:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                        vname,
                                        inits.join(" ")
                                    ))
                                }
                            }
                        })
                        .collect();
                    format!(
                        "match __v {{ \
                           ::serde::Value::String(__s) => match __s.as_str() {{ \
                             {} \
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                               format!(\"unknown {name} variant `{{__other}}`\"))), \
                           }}, \
                           ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{ \
                             let (__tag, __inner) = &__tagged[0]; \
                             match __tag.as_str() {{ \
                               {} \
                               __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown {name} variant `{{__other}}`\"))), \
                             }} \
                           }}, \
                           __other => ::std::result::Result::Err(::serde::Error::type_mismatch(\
                             \"enum tag\", __other)), \
                         }}",
                        unit_arms.join(" "),
                        data_arms.join(" ")
                    )
                }
            };
            Ok(format!(
                "{} {{ fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}",
                impl_header(item, "Deserialize")
            ))
        }
    }
}
