//! Offline stand-in for the slice of `serde` this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! reduced serialisation framework with the same *spelling* as serde at the
//! call sites that matter (`#[derive(Serialize, Deserialize)]`,
//! `#[serde(default)]`, `#[serde(with = "module")]`, `serde_json::to_string`
//! / `from_str`) but a deliberately small data model: every value lowers to
//! a JSON-shaped [`Value`] tree.
//!
//! Design notes, for the PR that eventually swaps the real serde back in:
//!
//! * [`Serialize::to_value`] / [`Deserialize::from_value`] replace serde's
//!   visitor machinery. Custom `#[serde(with = "m")]` modules therefore
//!   implement `m::serialize(&T) -> Value` and
//!   `m::deserialize(&Value) -> Result<T, Error>`.
//! * Enum encoding follows serde's externally-tagged convention: unit
//!   variants as `"Name"`, data variants as `{"Name": ...}`.
//! * Maps serialise as arrays of `[key, value]` pairs (JSON objects cannot
//!   key on structs, and the real codebase already serialised its only
//!   struct-keyed map that way).
//!
//! The derive macros live in the companion `serde_derive` crate and are
//! re-exported here, matching serde's `features = ["derive"]` layout.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the interchange format of the reduced framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (JSON number without fraction or exponent).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as `f64`, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// A custom error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A struct field was absent (and not `#[serde(default)]`).
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserialising {ty}"))
    }

    /// A value had the wrong JSON kind.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange representation.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the interchange representation back into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                if let Some(u) = v.as_u64() {
                    if u <= <$t>::MAX as u64 {
                        return Ok(u as $t);
                    }
                }
                if let Some(i) = v.as_i64() {
                    if (i as i128) >= <$t>::MIN as i128 && (i as i128) <= <$t>::MAX as i128 {
                        return Ok(i as $t);
                    }
                }
                Err(Error::type_mismatch(stringify!($t), v))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64().ok_or_else(|| Error::type_mismatch("u64", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::type_mismatch("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::type_mismatch("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::type_mismatch("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::type_mismatch("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::type_mismatch("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-element array, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Deserialize::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let pairs: Vec<(K, V)> = Deserialize::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip_at_full_precision() {
        let big: u64 = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        let neg: i64 = -42;
        assert_eq!(i64::from_value(&neg.to_value()).unwrap(), neg);
        let f = 0.1f64 + 0.2;
        assert_eq!(f64::from_value(&f.to_value()).unwrap(), f);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let back: Vec<(u64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(<Option<u32>>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn hashmap_roundtrips_as_pair_array() {
        let mut m = std::collections::HashMap::new();
        m.insert(7u64, 1.5f64);
        m.insert(9, 2.5);
        let v = m.to_value();
        assert!(matches!(v, Value::Array(_)));
        let back: std::collections::HashMap<u64, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(String::from_value(&Value::Int(3)).is_err());
        assert!(<Vec<u8>>::from_value(&Value::Bool(true)).is_err());
    }

    #[test]
    fn int_bounds_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert_eq!(u8::from_value(&Value::Int(255)).unwrap(), 255);
    }
}
