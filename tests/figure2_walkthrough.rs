//! E8 — Figure 2 walkthrough: the worked GrowPartition example from the
//! paper (k = 2, L★ = 1, L = 4), replayed step by step against the exact
//! numbers printed in Figures 2a–2f.

use privhp::core::consistency::{enforce_consistency, enforce_consistency_subtree};
use privhp::core::grow::top_k_paths;
use privhp::core::tree::PartitionTree;
use privhp::domain::Path;

fn p(bits: u64, level: usize) -> Path {
    Path::from_bits(bits, level)
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

/// Figure 2a: the tree after processing the stream (noisy counts).
fn figure_2a() -> PartitionTree {
    let mut t = PartitionTree::new();
    t.insert(Path::root(), 20.2);
    t.insert(p(0, 1), 12.2);
    t.insert(p(1, 1), 8.6);
    t
}

#[test]
fn figure_2b_consistency_on_initial_tree() {
    let mut t = figure_2a();
    enforce_consistency_subtree(&mut t, &Path::root());
    // Figure 2b: Ω0 = 11.9, Ω1 = 8.3 (Λ = 0.6 split evenly).
    assert!(approx(t.count_unchecked(&p(0, 1)), 11.9));
    assert!(approx(t.count_unchecked(&p(1, 1)), 8.3));
    assert!(approx(t.root_count().unwrap(), 20.2));
}

#[test]
fn figure_2c_2d_adding_level_two_from_sketch() {
    let mut t = figure_2a();
    enforce_consistency_subtree(&mut t, &Path::root());

    // Figure 2c: sketch estimates for level 2: Ω00=4.9, Ω01=7.6,
    // Ω10=4.2, Ω11=4.1.
    t.insert(p(0b00, 2), 4.9);
    t.insert(p(0b01, 2), 7.6);
    t.insert(p(0b10, 2), 4.2);
    t.insert(p(0b11, 2), 4.1);

    // Figure 2d: after consistency at both level-1 parents:
    // under Ω0 (11.9): 4.9+7.6 = 12.5, Λ = 0.6 → 4.6, 7.3;
    // under Ω1 (8.3): 4.2+4.1 = 8.3, Λ = 0 → unchanged... but the figure
    // prints 3.9, 3.8 — the figure's Ω1 children carry their own noise; we
    // verify the Algorithm-3 arithmetic on the printed inputs instead:
    enforce_consistency(&mut t, &p(0, 1));
    assert!(approx(t.count_unchecked(&p(0b00, 2)), 4.6));
    assert!(approx(t.count_unchecked(&p(0b01, 2)), 7.3));
    enforce_consistency(&mut t, &p(1, 1));
    assert!(approx(t.count_unchecked(&p(0b10, 2)), 4.2));
    assert!(approx(t.count_unchecked(&p(0b11, 2)), 4.1));
    // Every parent-child sum is exact after the step.
    assert!(
        privhp::core::consistency::find_consistency_violation(&t, &Path::root(), 1e-9).is_none()
    );
}

#[test]
fn figure_2e_top_k_selection() {
    // After Figure 2d, level-2 counts are {00:4.6, 01:7.3, 10:4.2, 11:4.1};
    // with k = 2 the hot set is {01, 00} and only their children are added
    // at level 3 (Figure 2e shows Ω000..Ω011 with Ω10/Ω11 left unexpanded).
    let mut t = figure_2a();
    enforce_consistency_subtree(&mut t, &Path::root());
    for (bits, c) in [(0b00u64, 4.9), (0b01, 7.6), (0b10, 4.2), (0b11, 4.1)] {
        t.insert(p(bits, 2), c);
    }
    enforce_consistency(&mut t, &p(0, 1));
    enforce_consistency(&mut t, &p(1, 1));

    let level2: Vec<Path> = (0..4).map(|b| p(b, 2)).collect();
    let hot = top_k_paths(&t, &level2, 2);
    assert_eq!(hot, vec![p(0b01, 2), p(0b00, 2)]);
}

#[test]
fn figure_2f_consistency_at_level_three() {
    // Figure 2e → 2f: level-3 sketch estimates under the hot nodes:
    // Ω000=3.5, Ω001=3.7 under Ω00 (4.6); Ω010=4.0, Ω011=6.7 under Ω01
    // (7.3). After consistency: 2.2, 2.4, 2.3, 5.0 (Figure 2f).
    let mut t = PartitionTree::new();
    t.insert(Path::root(), 20.2);
    t.insert(p(0, 1), 11.9);
    t.insert(p(1, 1), 8.3);
    t.insert(p(0b00, 2), 4.6);
    t.insert(p(0b01, 2), 7.3);
    t.insert(p(0b000, 3), 3.5);
    t.insert(p(0b001, 3), 3.7);
    t.insert(p(0b010, 3), 4.0);
    t.insert(p(0b011, 3), 6.7);

    enforce_consistency(&mut t, &p(0b00, 2));
    enforce_consistency(&mut t, &p(0b01, 2));

    assert!(approx(t.count_unchecked(&p(0b000, 3)), 2.2));
    assert!(approx(t.count_unchecked(&p(0b001, 3)), 2.4));
    assert!(approx(t.count_unchecked(&p(0b010, 3)), 2.3));
    assert!(approx(t.count_unchecked(&p(0b011, 3)), 5.0));
}

#[test]
fn figure_3_example_6_1() {
    // Figure 3 / Example 6.1: parent 4.6, children before consistency
    // 3.5 / 3.7, after consistency 2.2 / 2.4, and ConsErr = 0.6.
    let mut t = PartitionTree::new();
    t.insert(Path::root(), 4.6);
    t.insert(p(0, 1), 3.5);
    t.insert(p(1, 1), 3.7);
    enforce_consistency(&mut t, &Path::root());
    assert!(approx(t.count_unchecked(&p(0, 1)), 2.2));
    assert!(approx(t.count_unchecked(&p(1, 1)), 2.4));

    let cons_err = privhp::core::consistency::cons_err(-0.5, -0.3, 1.0, 2.0);
    assert!(approx(cons_err, 0.6));
}
