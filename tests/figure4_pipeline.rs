//! E10 (structural part) — Figure 4: the proof-pipeline trees
//! `𝒯_X → 𝒯_exact → 𝒯_approx` built from the figure's exact counts
//! (k = 2, L★ = 2, L = 3).

use privhp::core::analysis::{exact_complete_tree, exact_pruned_tree, with_exact_counts};
use privhp::domain::Path;

fn p(bits: u64, level: usize) -> Path {
    Path::from_bits(bits, level)
}

/// Figure 4a's per-level exact counts: 13 points; level-3 leaf counts
/// (3, 0, 0, 2, 2, 0, 1, 5).
fn figure4_level_counts() -> Vec<Vec<f64>> {
    let leaves = [3.0, 0.0, 0.0, 2.0, 2.0, 0.0, 1.0, 5.0];
    let mut out = vec![leaves.to_vec()];
    while out.last().unwrap().len() > 1 {
        let prev = out.last().unwrap();
        let next: Vec<f64> = prev.chunks(2).map(|c| c[0] + c[1]).collect();
        out.push(next);
    }
    out.reverse();
    out
}

#[test]
fn figure_4a_complete_tree() {
    let lc = figure4_level_counts();
    let t = exact_complete_tree(&lc);
    assert_eq!(t.root_count(), Some(13.0));
    assert_eq!(t.count(&p(0, 1)), Some(5.0));
    assert_eq!(t.count(&p(1, 1)), Some(8.0));
    assert_eq!(t.count(&p(0b00, 2)), Some(3.0));
    assert_eq!(t.count(&p(0b11, 2)), Some(6.0));
    assert_eq!(t.count(&p(0b111, 3)), Some(5.0));
    assert_eq!(t.len(), 15);
}

#[test]
fn figure_4b_exact_pruning() {
    // L* = 2, k = 2: level 3 keeps only the children of the exact top-2
    // level-2 nodes, which are Ω00 (3) and Ω11 (6). Figure 4b shows exactly
    // Ω000, Ω001, Ω110, Ω111 retained.
    let lc = figure4_level_counts();
    let t = exact_pruned_tree(&lc, 2, 2);
    assert!(t.contains(&p(0b000, 3)));
    assert!(t.contains(&p(0b001, 3)));
    assert!(t.contains(&p(0b110, 3)));
    assert!(t.contains(&p(0b111, 3)));
    assert!(!t.contains(&p(0b010, 3)), "Ω010 must be pruned");
    assert!(!t.contains(&p(0b100, 3)), "Ω100 must be pruned");
    assert_eq!(t.level_nodes(3).len(), 4);
    // Counts stay exact in T_exact.
    assert_eq!(t.count(&p(0b111, 3)), Some(5.0));
}

#[test]
fn figure_4c_structure_swap() {
    // Figure 4c (T_approx): a *different* structure — noisy pruning kept
    // Ω01's children instead of Ω00's — refilled with exact counts.
    let lc = figure4_level_counts();
    // Build the alternative structure by hand (as the noisy run would).
    let mut shaped = exact_pruned_tree(&lc, 2, 2);
    // Simulate the structure difference: drop 000/001, add 010/011.
    // (with_exact_counts only cares about the node set.)
    let mut alt = privhp::core::tree::PartitionTree::new();
    for (path, c) in shaped.iter() {
        if path.level() < 3 {
            alt.insert(*path, *c);
        }
    }
    for bits in [0b010u64, 0b011, 0b110, 0b111] {
        alt.insert(p(bits, 3), -1.0); // wrong counts on purpose
    }
    let approx = with_exact_counts(&alt, &lc);
    // Exact counts restored from the level tables (Figure 4c values:
    // Ω010 = 0, Ω011 = 2).
    assert_eq!(approx.count(&p(0b010, 3)), Some(0.0));
    assert_eq!(approx.count(&p(0b011, 3)), Some(2.0));
    assert_eq!(approx.count(&p(0b110, 3)), Some(1.0));
    assert_eq!(approx.count(&p(0b111, 3)), Some(5.0));
    assert_eq!(approx.root_count(), Some(13.0));
    let _ = &mut shaped;
}

#[test]
fn pruning_cost_bounded_by_lemma7_on_figure4() {
    // Lemma 7: W1(μ, T_exact) ≤ ||tail_k^L||/n · Σ_{l>L*} γ_l. On the
    // figure's data with k=2, L*=2: at level 3 the pruned mass is the
    // leaves outside the kept subtrees = cells (2,0) + (1,... ) →
    // tail-driven. We verify the measured 1-D distance respects the bound.
    let lc = figure4_level_counts();
    let t = exact_pruned_tree(&lc, 2, 2);
    // Reconstruct the 13 data points at leaf-cell midpoints.
    let mut data = Vec::new();
    for (cell, &c) in lc[3].iter().enumerate() {
        for _ in 0..(c as usize) {
            data.push((cell as f64 + 0.5) / 8.0);
        }
    }
    let domain = privhp::domain::UnitInterval::new();
    let mut segments = Vec::new();
    for leaf in t.leaves() {
        let mass = t.count_unchecked(&leaf);
        if mass > 0.0 {
            let (lo, hi) = domain.cell_bounds(&leaf);
            segments.push(privhp::metrics::wasserstein1d::Segment { lo, hi, mass });
        }
    }
    let w1 = privhp::metrics::wasserstein1d::w1_sample_vs_segments(&data, &segments);
    // Resolution of the depth-3 histogram alone contributes ≤ γ_3 = 1/8;
    // Lemma 7 adds the pruned tail (tail_2 at level 3 of the *kept-subtree
    // competition*). A generous composite bound:
    let tail = {
        let mut cells = lc[2].clone();
        cells.sort_by(|a, b| b.partial_cmp(a).unwrap());
        cells[2] + cells[3] // mass outside the top-2 level-2 nodes
    };
    let bound = tail / 13.0 * 0.25 + 0.125;
    assert!(w1 <= bound + 1e-9, "W1 {w1} exceeds Lemma-7-style bound {bound}");
}
