//! Property-based invariants across the workspace (proptest).
//!
//! Each property encodes a structural guarantee the paper's analysis relies
//! on: consistency (Algorithm 3) always restores the hierarchy constraints,
//! the sampler is proportional to consistent counts, tail norms behave
//! monotonically, `W1` is a metric, the budget split is exact, and path
//! arithmetic round-trips.

use privhp::core::consistency::{enforce_consistency_subtree, find_consistency_violation};
use privhp::core::tree::PartitionTree;
use privhp::domain::{HierarchicalDomain, Hypercube, Path, UnitInterval};
use privhp::dp::budget::BudgetSplit;
use privhp::metrics::wasserstein1d::w1_exact_1d;
use privhp::sketch::tail::{tail_norm_l1, tail_vector};
use privhp::sketch::{CountMinSketch, SketchParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 3 restores non-negativity and parent=children-sum on any
    /// complete tree with arbitrary (possibly negative) counts.
    #[test]
    fn consistency_always_restores_invariants(
        counts in proptest::collection::vec(-50.0f64..50.0, 31)
    ) {
        let mut i = 0;
        let mut tree = PartitionTree::complete(4, |_| {
            let c = counts[i % counts.len()];
            i += 1;
            c
        });
        enforce_consistency_subtree(&mut tree, &Path::root());
        prop_assert!(find_consistency_violation(&tree, &Path::root(), 1e-6).is_none());
    }

    /// Consistency is idempotent: a second pass changes nothing.
    #[test]
    fn consistency_idempotent(
        counts in proptest::collection::vec(-20.0f64..20.0, 15)
    ) {
        let mut i = 0;
        let mut tree = PartitionTree::complete(3, |_| {
            let c = counts[i % counts.len()];
            i += 1;
            c
        });
        enforce_consistency_subtree(&mut tree, &Path::root());
        let snapshot: Vec<(Path, f64)> = tree.iter().map(|(p, c)| (*p, *c)).collect();
        enforce_consistency_subtree(&mut tree, &Path::root());
        for (p, c) in snapshot {
            prop_assert!((tree.count_unchecked(&p) - c).abs() < 1e-9);
        }
    }

    /// tail_k is non-increasing in k and tail_0 is the L1 norm.
    #[test]
    fn tail_norm_monotone(v in proptest::collection::vec(0.0f64..100.0, 1..64)) {
        let l1: f64 = v.iter().sum();
        prop_assert!((tail_norm_l1(&v, 0) - l1).abs() < 1e-6);
        let mut prev = f64::INFINITY;
        for k in 0..v.len() {
            let t = tail_norm_l1(&v, k);
            prop_assert!(t <= prev + 1e-9);
            prop_assert!(t >= -1e-9);
            prev = t;
        }
    }

    /// tail_vector and tail_norm agree.
    #[test]
    fn tail_vector_consistent(
        v in proptest::collection::vec(0.0f64..100.0, 1..48),
        k in 0usize..48
    ) {
        let direct: f64 = tail_vector(&v, k).iter().sum();
        prop_assert!((tail_norm_l1(&v, k) - direct).abs() < 1e-6);
    }

    /// Exact 1-D W1 satisfies the metric axioms on random samples.
    #[test]
    fn w1_metric_axioms(
        a in proptest::collection::vec(0.0f64..1.0, 1..40),
        b in proptest::collection::vec(0.0f64..1.0, 1..40),
        c in proptest::collection::vec(0.0f64..1.0, 1..40)
    ) {
        let ab = w1_exact_1d(&a, &b);
        let ba = w1_exact_1d(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(w1_exact_1d(&a, &a) < 1e-9, "identity");
        let bc = w1_exact_1d(&b, &c);
        let ac = w1_exact_1d(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle");
    }

    /// Count-Min never underestimates on non-negative streams.
    #[test]
    fn cms_never_underestimates(
        updates in proptest::collection::vec((0u64..200, 0.1f64..10.0), 1..300),
        seed in 0u64..1000
    ) {
        let mut sketch = CountMinSketch::new(SketchParams::new(4, 32), seed);
        let mut truth = std::collections::HashMap::new();
        for (key, w) in &updates {
            sketch.update(*key, *w);
            *truth.entry(*key).or_insert(0.0f64) += *w;
        }
        for (key, t) in truth {
            prop_assert!(sketch.query(key) >= t - 1e-6);
        }
    }

    /// Budget splits always sum to ε and stay strictly positive.
    #[test]
    fn budget_split_exact(
        eps in 0.01f64..10.0,
        weights in proptest::collection::vec(0.01f64..100.0, 1..30)
    ) {
        let s = BudgetSplit::from_weights(eps, &weights).unwrap();
        prop_assert!((s.epsilon() - eps).abs() < 1e-9 * eps.max(1.0));
        prop_assert!(s.sigmas().iter().all(|&x| x > 0.0));
    }

    /// Path child/parent/ancestor arithmetic round-trips under random
    /// branch sequences.
    #[test]
    fn path_roundtrip(branches in proptest::collection::vec(0u8..2, 0..40)) {
        let mut p = Path::root();
        for &b in &branches {
            p = p.child(b);
        }
        prop_assert_eq!(p.level(), branches.len());
        for (i, &b) in branches.iter().enumerate() {
            prop_assert_eq!(p.branch_at(i), b);
        }
        // Walk back up.
        let mut q = p;
        for _ in 0..branches.len() {
            q = q.parent().unwrap();
        }
        prop_assert_eq!(q, Path::root());
        // Ancestors are prefixes.
        for l in 0..=branches.len() {
            prop_assert!(p.ancestor(l).is_ancestor_of(&p));
        }
    }

    /// Hypercube locate/sample round-trip: sampling a located cell then
    /// relocating recovers the cell.
    #[test]
    fn hypercube_locate_sample_roundtrip(
        coords in proptest::collection::vec(0.0f64..1.0, 1..4),
        level in 0usize..12,
        seed in 0u64..1000
    ) {
        let cube = Hypercube::new(coords.len());
        let theta = cube.locate(&coords, level);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let resampled = cube.sample_uniform(&theta, &mut rng);
        prop_assert_eq!(cube.locate(&resampled, level), theta);
    }

    /// Interval cells at any level tile [0,1] without gaps.
    #[test]
    fn interval_cells_tile(level in 0usize..16, x in 0.0f64..1.0) {
        let iv = UnitInterval::new();
        let theta = iv.locate(&x, level);
        let (lo, hi) = iv.cell_bounds(&theta);
        prop_assert!(lo <= x && x < hi + 1e-15);
        prop_assert!((hi - lo - iv.level_diameter(level)).abs() < 1e-12);
    }

    /// The query layer's CDF is monotone and its quantile function inverts
    /// it, on any consistent random tree.
    #[test]
    fn query_cdf_quantile_duality(
        counts in proptest::collection::vec(0.0f64..20.0, 15),
        ranks in proptest::collection::vec(0.001f64..0.999, 1..6)
    ) {
        let mut i = 0;
        let mut tree = PartitionTree::complete(3, |_| {
            let c = counts[i % counts.len()];
            i += 1;
            c
        });
        enforce_consistency_subtree(&mut tree, &Path::root());
        let domain = UnitInterval::new();
        let q = privhp::core::TreeQuery::new(&tree, &domain);
        // CDF monotone on a grid.
        let mut prev = -1e-12;
        for g in 0..=16 {
            let c = q.cdf(g as f64 / 16.0);
            prop_assert!(c >= prev - 1e-9, "CDF must be monotone");
            prev = c;
        }
        if q.total_mass() > 1e-9 {
            for &r in &ranks {
                let x = q.quantile(r);
                prop_assert!((q.cdf(x) - r).abs() < 1e-6,
                    "quantile({r}) = {x} but cdf back = {}", q.cdf(x));
            }
        }
    }

    /// The continual counter's estimate stays within a noise-scale band of
    /// the truth for any weight sequence.
    #[test]
    fn continual_counter_tracks_truth(
        weights in proptest::collection::vec(0.0f64..5.0, 1..200),
        seed in 0u64..500
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut c = privhp::dp::continual::ContinualCounter::new(8, 100.0);
        let mut truth = 0.0;
        for &w in &weights {
            truth += w;
            let est = c.update(w, &mut rng);
            // scale 8/100 = 0.08 per p-sum, ≤ 8 p-sums: very tight band.
            prop_assert!((est - truth).abs() < 5.0,
                "estimate {est} vs truth {truth}");
        }
    }

    /// Subdomain probabilities from the query layer sum to 1 over any
    /// level of a consistent tree.
    #[test]
    fn query_level_masses_sum_to_one(
        counts in proptest::collection::vec(0.1f64..20.0, 15),
        level in 0usize..4
    ) {
        let mut i = 0;
        let mut tree = PartitionTree::complete(3, |_| {
            let c = counts[i % counts.len()];
            i += 1;
            c
        });
        enforce_consistency_subtree(&mut tree, &Path::root());
        let domain = UnitInterval::new();
        let q = privhp::core::TreeQuery::new(&tree, &domain);
        if q.total_mass() > 1e-9 {
            let sum: f64 = (0..(1u64 << level))
                .map(|bits| q.subdomain_probability(&Path::from_bits(bits, level)))
                .sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "level {level} masses sum to {sum}");
        }
    }
}
