//! Golden-model property test for the dense-arena `PartitionTree`.
//!
//! The tree stores its complete prefix in a dense arena and everything
//! deeper in a sparse overlay (plus a per-level registry). This test
//! drives the real tree and a plain `HashMap`-based reference model —
//! the pre-arena implementation, re-stated in ~40 lines — through the
//! same random operation sequences, deliberately crossing the dense/
//! overlay boundary, and checks every observable surface after every
//! sequence: counts, membership, leaf/internal classification, per-level
//! registries, length, depth, memory accounting, and a serde round-trip
//! (which additionally re-densifies the complete prefix).

use privhp::core::tree::PartitionTree;
use privhp::domain::Path;
use proptest::prelude::*;

/// The sparse reference implementation the arena replaced.
#[derive(Default)]
struct RefModel {
    counts: std::collections::HashMap<Path, f64>,
    levels: Vec<Vec<Path>>,
}

impl RefModel {
    fn insert(&mut self, path: Path, count: f64) {
        if self.counts.insert(path, count).is_none() {
            while self.levels.len() <= path.level() {
                self.levels.push(Vec::new());
            }
            self.levels[path.level()].push(path);
        }
    }

    fn is_internal(&self, path: &Path) -> bool {
        path.level() < Path::MAX_LEVEL
            && (self.counts.contains_key(&path.left()) || self.counts.contains_key(&path.right()))
    }

    fn is_leaf(&self, path: &Path) -> bool {
        self.counts.contains_key(path) && !self.is_internal(path)
    }

    fn leaves(&self) -> Vec<Path> {
        let mut out = Vec::new();
        for level in &self.levels {
            for p in level {
                if self.is_leaf(p) {
                    out.push(*p);
                }
            }
        }
        out
    }
}

/// One scripted mutation. Paths are derived from `(level, bits)` raw
/// material so sequences hit both the dense prefix and the overlay.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { level: usize, bits: u64, count: f64 },
    AddCount { level: usize, bits: u64, delta: f64 },
    SetCount { level: usize, bits: u64, count: f64 },
}

fn op_from_raw(kind: u8, level_raw: usize, bits_raw: u64, value: f64) -> Op {
    let level = level_raw % 7;
    let bits = bits_raw & ((1u64 << level) - 1);
    match kind % 3 {
        0 => Op::Insert { level, bits, count: value },
        1 => Op::AddCount { level, bits, delta: value },
        _ => Op::SetCount { level, bits, count: value },
    }
}

/// Asserts every observable surface agrees between tree and model.
fn assert_equivalent(tree: &PartitionTree, model: &RefModel, context: &str) {
    assert_eq!(tree.len(), model.counts.len(), "{context}: len");
    assert_eq!(tree.is_empty(), model.counts.is_empty(), "{context}: is_empty");
    assert_eq!(tree.memory_words(), 2 * model.counts.len(), "{context}: memory_words");
    let model_depth = model.levels.len().saturating_sub(1);
    assert_eq!(tree.depth(), model_depth, "{context}: depth");
    assert_eq!(tree.root_count(), model.counts.get(&Path::root()).copied(), "{context}: root");

    for (path, count) in &model.counts {
        assert_eq!(tree.count(path), Some(*count), "{context}: count at {path}");
        assert!(tree.contains(path), "{context}: contains {path}");
        assert_eq!(tree.count_unchecked(path), *count, "{context}: count_unchecked {path}");
        assert_eq!(tree.is_leaf(path), model.is_leaf(path), "{context}: is_leaf {path}");
        assert_eq!(
            tree.is_internal(path),
            model.is_internal(path),
            "{context}: is_internal {path}"
        );
        let expected_children =
            match (model.counts.get(&path.left()), model.counts.get(&path.right())) {
                (Some(l), Some(r)) => Some((*l, *r)),
                _ => None,
            };
        assert_eq!(
            tree.children_counts(path),
            expected_children,
            "{context}: children_counts {path}"
        );
    }

    // Probe absent paths around the boundary too.
    for level in 0..=7usize {
        for bits in [0u64, 1, (1 << level) - 1] {
            let bits = bits & ((1u64 << level) - 1);
            let p = Path::from_bits(bits, level);
            assert_eq!(tree.contains(&p), model.counts.contains_key(&p), "{context}: contains {p}");
            assert_eq!(tree.count(&p), model.counts.get(&p).copied(), "{context}: count {p}");
        }
    }

    // Registries: same paths per level (dense levels are bits-ordered in
    // the tree; the model inserted them in the same order).
    for level in 0..model.levels.len() {
        let mut a: Vec<Path> = tree.level_nodes(level).to_vec();
        let mut b = model.levels[level].clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{context}: level_nodes({level})");
    }

    // Leaf sets agree (order may differ between registry layouts).
    let mut tree_leaves = tree.leaves();
    let mut model_leaves = model.leaves();
    tree_leaves.sort();
    model_leaves.sort();
    assert_eq!(tree_leaves, model_leaves, "{context}: leaves");

    // iter() covers exactly the node set.
    let mut iterated: Vec<(Path, f64)> = tree.iter().map(|(p, c)| (*p, *c)).collect();
    iterated.sort_by_key(|(p, _)| *p);
    let mut expected: Vec<(Path, f64)> = model.counts.iter().map(|(p, c)| (*p, *c)).collect();
    expected.sort_by_key(|(p, _)| *p);
    assert_eq!(iterated, expected, "{context}: iter");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena-backed tree ≡ sparse reference model under random
    /// insert/add_count/set_count sequences that cross the L★ boundary,
    /// including after a serde round-trip.
    #[test]
    fn arena_tree_matches_hashmap_reference(
        dense_depth in 0usize..4,
        start_sel in 0u8..2,
        raw_ops in proptest::collection::vec(
            (0u8..6, 0usize..64, 0u64..1024, -50.0f64..50.0),
            1..60
        )
    ) {
        let (mut tree, mut model) = if start_sel == 1 {
            // Seed with a complete tree: the dense prefix covers
            // 0..=dense_depth, later inserts below it land in the overlay.
            let mut idx = 0u64;
            let tree = PartitionTree::complete(dense_depth, |_| {
                idx += 1;
                idx as f64 * 0.5
            });
            let mut model = RefModel::default();
            let mut idx = 0u64;
            for level in 0..=dense_depth {
                for bits in 0..(1u64 << level) {
                    idx += 1;
                    model.insert(Path::from_bits(bits, level), idx as f64 * 0.5);
                }
            }
            (tree, model)
        } else {
            (PartitionTree::new(), RefModel::default())
        };

        for &(kind, level_raw, bits_raw, value) in &raw_ops {
            match op_from_raw(kind, level_raw, bits_raw, value) {
                Op::Insert { level, bits, count } => {
                    let p = Path::from_bits(bits, level);
                    tree.insert(p, count);
                    model.insert(p, count);
                }
                Op::AddCount { level, bits, delta } => {
                    let p = Path::from_bits(bits, level);
                    // Mutating an absent node panics; the model decides.
                    if model.counts.contains_key(&p) {
                        tree.add_count(&p, delta);
                        *model.counts.get_mut(&p).unwrap() += delta;
                    }
                }
                Op::SetCount { level, bits, count } => {
                    let p = Path::from_bits(bits, level);
                    if model.counts.contains_key(&p) {
                        tree.set_count(&p, count);
                        *model.counts.get_mut(&p).unwrap() = count;
                    }
                }
            }
        }

        assert_equivalent(&tree, &model, "after ops");

        // Serde round-trip preserves every surface (and re-detects the
        // maximal complete prefix internally).
        let json = serde_json::to_string(&tree).expect("serialise");
        let back: PartitionTree = serde_json::from_str(&json).expect("deserialise");
        assert_equivalent(&back, &model, "after serde round-trip");

        // The prefix bulk-update entry point matches per-level add_count
        // whenever a root-to-leaf chain exists.
        if model.counts.contains_key(&Path::root()) {
            let deepest = model.counts.keys().copied().max_by_key(|p| p.level()).unwrap();
            let chain_ok = (0..=deepest.level())
                .all(|l| model.counts.contains_key(&deepest.ancestor(l)));
            if chain_ok {
                tree.add_count_prefix(&deepest, deepest.level(), 2.0);
                for l in 0..=deepest.level() {
                    *model.counts.get_mut(&deepest.ancestor(l)).unwrap() += 2.0;
                }
                assert_equivalent(&tree, &model, "after add_count_prefix");
            }
        }
    }
}
