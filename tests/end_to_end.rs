//! Cross-crate integration tests: PrivHP end-to-end on every domain, with
//! utility sanity checks against the baselines and the memory-bound
//! regression guard.

use privhp::baselines::{Pmm, UniformBaseline};
use privhp::core::{PrivHp, PrivHpBuilder, PrivHpConfig};
use privhp::domain::{GeoBox, GeoPoint, HierarchicalDomain, Hypercube, Ipv4Space, UnitInterval};
use privhp::metrics::tree_wasserstein::tree_w1_between_samples;
use privhp::metrics::wasserstein1d::w1_exact_1d;
use privhp::workloads::{GaussianMixture, SparseClusters, Workload};
use rand::SeedableRng;

type Rng = rand::rngs::StdRng;

#[test]
fn privhp_beats_uniform_on_skewed_1d() {
    let mut rng = Rng::seed_from_u64(1);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(8_192, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 16).with_seed(2);
    let g = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
    let synthetic = g.sample_many(8_192, &mut rng);
    let uniform = UniformBaseline::new(&UnitInterval::new()).sample_many(8_192, &mut rng);
    let w1_hp = w1_exact_1d(&data, &synthetic);
    let w1_un = w1_exact_1d(&data, &uniform);
    assert!(w1_hp < w1_un / 3.0, "PrivHP ({w1_hp}) must decisively beat uniform ({w1_un})");
}

#[test]
fn privhp_close_to_pmm_at_fraction_of_memory() {
    let mut rng = Rng::seed_from_u64(3);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(1 << 14, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 32).with_seed(4);
    let hp = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
    let pmm = Pmm::build(&UnitInterval::new(), 1.0, &data, &mut rng);

    let w1_hp = w1_exact_1d(&data, &hp.sample_many(1 << 14, &mut rng));
    let w1_pmm = w1_exact_1d(&data, &pmm.sample_many(1 << 14, &mut rng));

    assert!(
        hp.memory_words() * 2 < pmm.memory_words(),
        "PrivHP must be materially smaller: {} vs {}",
        hp.memory_words(),
        pmm.memory_words()
    );
    assert!(
        w1_hp < w1_pmm * 6.0,
        "PrivHP W1 ({w1_hp}) should be within a small factor of PMM ({w1_pmm})"
    );
}

#[test]
fn sparse_inputs_pay_no_pruning_cost() {
    // With support on 8 clusters and k = 16 >= 8, tail_k ~ 0: PrivHP should
    // track the data tightly despite tiny memory.
    let mut rng = Rng::seed_from_u64(5);
    let data: Vec<f64> = SparseClusters::new(8, 0.002, 7).generate(1 << 14, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 16).with_seed(6);
    let g = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
    let w1 = w1_exact_1d(&data, &g.sample_many(1 << 14, &mut rng));
    assert!(w1 < 0.02, "sparse input should be captured near-perfectly, got {w1}");
}

#[test]
fn works_on_2d_hypercube() {
    let mut rng = Rng::seed_from_u64(7);
    let cube = Hypercube::new(2);
    let data: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(4_096, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 16).with_seed(8);
    let g = PrivHp::build(&cube, config, data.iter().cloned(), &mut rng).unwrap();
    let synthetic = g.sample_many(8_192, &mut rng);
    let uniform: Vec<Vec<f64>> = UniformBaseline::new(&cube).sample_many(8_192, &mut rng);
    let d_hp = tree_w1_between_samples(&cube, &data, &synthetic, 8);
    let d_un = tree_w1_between_samples(&cube, &data, &uniform, 8);
    assert!(d_hp < d_un / 2.0, "2-D: PrivHP {d_hp} must beat uniform {d_un}");
}

#[test]
fn works_on_ipv4() {
    let mut rng = Rng::seed_from_u64(9);
    let hot = [(10u8, 0u8), (192u8, 168u8)];
    let data = privhp::workloads::ipv4_sessions(8_192, &hot, 0.9, &mut rng);
    let space = Ipv4Space::new();
    let base = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(10);
    let depth = base.depth.min(space.max_level());
    let l_star = base.l_star.min(depth - 1);
    let config = base.with_levels(l_star, depth);
    let g = PrivHp::build(&space, config, data.iter().copied(), &mut rng).unwrap();
    let synthetic = g.sample_many(8_192, &mut rng);
    // With n = 8192, the hierarchy depth is log2(εn) = 13 < 16, so leaves
    // are /13 blocks and per-/16 shares are resolution-diluted; measure at
    // the /8 level (coarser than the leaf level), where the hot mass is
    // fully captured.
    let hot_octets = [10u8, 192u8];
    let in_hot = synthetic.iter().filter(|&&a| hot_octets.contains(&((a >> 24) as u8))).count()
        as f64
        / synthetic.len() as f64;
    assert!(in_hot > 0.6, "hot /8s must dominate the release: {in_hot}");
}

#[test]
fn works_on_geo() {
    let mut rng = Rng::seed_from_u64(11);
    let city = GeoBox::new(0.0, 1.0, 0.0, 1.0);
    let data: Vec<GeoPoint> = (0..4_096)
        .map(|i| {
            GeoPoint::new(
                0.2 + 0.01 * ((i % 13) as f64 / 13.0),
                0.7 + 0.01 * ((i % 7) as f64 / 7.0),
            )
        })
        .collect();
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(12);
    let g = PrivHp::build(&city, config, data.iter().copied(), &mut rng).unwrap();
    let synthetic = g.sample_many(2_048, &mut rng);
    let near = synthetic
        .iter()
        .filter(|p| (p.lat - 0.205).abs() < 0.05 && (p.lon - 0.705).abs() < 0.05)
        .count() as f64
        / synthetic.len() as f64;
    assert!(near > 0.5, "the single geographic hot spot must dominate: {near}");
}

#[test]
fn works_on_pure_categorical_domain() {
    // Theorem 3's "any metric space": the discrete metric. Zero-diameter
    // levels below the category resolution must not break the Lemma-5
    // budget allocation.
    use privhp::domain::Categorical;
    let mut rng = Rng::seed_from_u64(31);
    let domain = Categorical::new(16);
    // Zipf-ish category frequencies.
    let data: Vec<u64> = (0..8_192).map(|i| ((i * i + i / 3) % 37) % 16).collect();
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(32);
    let g = PrivHp::build(&domain, config, data.iter().copied(), &mut rng).unwrap();
    let synthetic = g.sample_many(8_192, &mut rng);
    assert!(synthetic.iter().all(|&c| c < 16), "phantom category emitted");
    // Compare category marginals by total variation.
    let hist = |xs: &[u64]| {
        let mut h = vec![0.0f64; 16];
        for &x in xs {
            h[x as usize] += 1.0 / xs.len() as f64;
        }
        h
    };
    let tv = privhp::metrics::total_variation(&hist(&data), &hist(&synthetic));
    assert!(tv < 0.1, "categorical marginal TV too high: {tv}");
}

#[test]
fn works_on_mixed_product_domain() {
    // Continuous value × categorical label, the tabular-data shape.
    use privhp::domain::{Categorical, ProductDomain};
    let mut rng = Rng::seed_from_u64(21);
    let domain = ProductDomain::new(UnitInterval::new(), Categorical::new(8));
    // Two correlated clusters: label 2 near x=0.2, label 6 near x=0.8.
    let data: Vec<(f64, u64)> = (0..4_096)
        .map(|i| {
            if i % 3 == 0 {
                (0.8 + 0.01 * ((i % 11) as f64 / 11.0), 6u64)
            } else {
                (0.2 + 0.01 * ((i % 13) as f64 / 13.0), 2u64)
            }
        })
        .collect();
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(22);
    let g = PrivHp::build(&domain, config, data.iter().cloned(), &mut rng).unwrap();
    let synthetic = g.sample_many(4_096, &mut rng);
    // The label marginal must be recovered: ~2/3 label 2, ~1/3 label 6.
    let label2 = synthetic.iter().filter(|(_, c)| *c == 2).count() as f64 / 4_096.0;
    let label6 = synthetic.iter().filter(|(_, c)| *c == 6).count() as f64 / 4_096.0;
    assert!((label2 - 2.0 / 3.0).abs() < 0.15, "label-2 share {label2}");
    assert!((label6 - 1.0 / 3.0).abs() < 0.15, "label-6 share {label6}");
    // ... and the joint structure: label-2 points should sit near x=0.2.
    let joint_ok = synthetic.iter().filter(|(x, c)| *c == 2 && (*x - 0.205).abs() < 0.1).count()
        as f64
        / synthetic.iter().filter(|(_, c)| *c == 2).count().max(1) as f64;
    assert!(joint_ok > 0.6, "joint (x | label=2) structure lost: {joint_ok}");
}

#[test]
fn memory_bound_regression_guard() {
    // M must track k·log²n within a constant (we allow 8x headroom so the
    // guard survives constant tweaks but catches O(n) regressions).
    for exp in [12usize, 16] {
        let n = 1usize << exp;
        let mut rng = Rng::seed_from_u64(13);
        let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut rng);
        let config = PrivHpConfig::for_domain(1.0, n, 16).with_seed(14);
        let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        for x in &data {
            b.ingest(x);
        }
        let m = b.memory_words() as f64;
        let bound = 8.0 * 16.0 * (n as f64).log2().powi(2);
        assert!(m <= bound, "n=2^{exp}: memory {m} exceeds 8*k*log^2(n) = {bound}");
    }
}

#[test]
fn release_is_deterministic_in_seeds() {
    let mut data_rng = Rng::seed_from_u64(15);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(2_000, &mut data_rng);
    let run = || {
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(16);
        let mut rng = Rng::seed_from_u64(17);
        PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.tree().len(), b.tree().len());
    assert_eq!(a.tree().root_count(), b.tree().root_count());
}

#[test]
fn budget_split_spans_all_levels_and_sums_to_epsilon() {
    let mut rng = Rng::seed_from_u64(18);
    let config = PrivHpConfig::for_domain(0.7, 4_096, 8).with_seed(19);
    let levels = config.levels();
    let b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
    assert_eq!(b.split().levels(), levels);
    assert!((b.split().epsilon() - 0.7).abs() < 1e-9);
}
