//! Registry smoke test: every registered method must build, sample, and
//! report memory on a tiny 1-D stream.
//!
//! This is the auto-coverage net for method additions — a new method only
//! has to be registered in `MethodRegistry::standard`/`standard_1d` and it
//! is exercised here, with no test edits required.

use privhp::domain::UnitInterval;
use privhp_bench::methods::run_method_1d;
use privhp_bench::methods::{BuildContext, MethodRegistry};
use rand::SeedableRng;

fn tiny_stream(n: usize) -> Vec<f64> {
    // Deterministic, skewed toward 0 so tree-based methods have structure
    // to find even at small n.
    (0..n).map(|i| ((i as f64 / n as f64).powi(2) * 0.999).min(0.999)).collect()
}

#[test]
fn every_registered_method_builds_and_samples() {
    let registry = MethodRegistry::<UnitInterval>::standard_1d();
    let domain = UnitInterval::new();
    let data = tiny_stream(512);
    let suite = registry.suite(1, &[4]);
    assert!(suite.len() >= 7, "expected the full Table-1 suite, got {suite:?}");

    for method in suite {
        let entry = registry
            .entry(method)
            .unwrap_or_else(|| panic!("{} missing from registry", method.name()));
        let ctx = BuildContext { method, epsilon: 1.0, seed: 0x530, dim: 1 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x530);
        let generator = entry.build(&domain, &ctx, &data, &mut rng);

        assert_eq!(generator.name(), method.name(), "trait name must match method name");
        assert!(generator.memory_words() >= 1, "{}: memory_words must be nonzero", method.name());

        let samples = generator.sample_many_points(256, &mut rng);
        assert_eq!(samples.len(), 256, "{}: short sample batch", method.name());
        assert!(
            samples.iter().all(|x| (0.0..1.0).contains(x)),
            "{}: samples must stay in [0,1)",
            method.name()
        );

        if let Some(tree) = generator.tree() {
            assert!(
                tree.root_count().is_some(),
                "{}: tree-based methods must expose a rooted tree",
                method.name()
            );
        }
    }
}

#[test]
fn every_registered_method_evaluates_end_to_end() {
    let registry = MethodRegistry::<UnitInterval>::standard_1d();
    let data = tiny_stream(512);
    for method in registry.suite(1, &[4]) {
        let out = run_method_1d(method, 1.0, &data, 0x5111);
        assert!(
            out.w1.is_finite() && out.w1 >= 0.0,
            "{}: W1 must be a finite non-negative number, got {}",
            method.name(),
            out.w1
        );
        assert!(out.memory_words >= 1, "{}: zero memory reported", method.name());
        assert!(out.build_seconds >= 0.0);
    }
}
