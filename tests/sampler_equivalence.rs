//! Property-based equivalence for the chunked CDF sampler (proptest).
//!
//! The chunked `sample_many` path (uniform batch → branch-free CDF search
//! → batched Morton jitter) must draw from exactly the distribution the
//! per-draw tree walk encodes, on consistent trees, on raw noisy
//! (inconsistent) trees, and on degenerate zero-mass trees — and the flat
//! `sample_many_into` buffer must be the bit-exact encoding of
//! `sample_many`'s points.

use privhp::core::consistency::enforce_consistency_subtree;
use privhp::core::sampler::TreeSampler;
use privhp::core::tree::PartitionTree;
use privhp::domain::{HierarchicalDomain, Hypercube, Path, UnitInterval};
use privhp::dp::rng::rng_from_seed;
use proptest::prelude::*;

/// A complete depth-`depth` tree whose counts cycle through `counts`.
fn complete_tree(depth: usize, counts: &[f64]) -> PartitionTree {
    let mut i = 0;
    PartitionTree::complete(depth, |_| {
        let c = counts[i % counts.len()];
        i += 1;
        c
    })
}

/// Dense leaf frequencies of 2-D samples located back to `depth`.
fn leaf_frequencies(cube: &Hypercube, pts: &[Vec<f64>], depth: usize) -> Vec<f64> {
    let mut hist = vec![0.0; 1usize << depth];
    for p in pts {
        hist[cube.locate(p, depth).bits() as usize] += 1.0 / pts.len() as f64;
    }
    hist
}

/// Total-variation distance between two leaf-frequency vectors.
fn tv(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() * 0.5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// On a consistent 2-D tree, the chunked sampler's leaf frequencies
    /// agree with the per-draw walk's (two independent m=4096 draws of the
    /// same distribution stay within a small TV distance).
    #[test]
    fn chunked_matches_walk_on_consistent_tree(
        counts in proptest::collection::vec(0.0f64..50.0, 31),
        seed in 0u64..1_000,
    ) {
        let depth = 4;
        let cube = Hypercube::new(2);
        let mut tree = complete_tree(depth, &counts);
        enforce_consistency_subtree(&mut tree, &Path::root());
        let sampler = TreeSampler::new(&tree, &cube);

        let m = 4_096;
        let mut rng = rng_from_seed(seed);
        let chunked = sampler.sample_many(m, &mut rng);
        let mut rng = rng_from_seed(seed ^ 0x77AA);
        let walk: Vec<Vec<f64>> = (0..m).map(|_| sampler.sample(&mut rng)).collect();

        let d = tv(&leaf_frequencies(&cube, &chunked, depth),
                   &leaf_frequencies(&cube, &walk, depth));
        prop_assert!(d < 0.08, "chunked vs walk TV distance {d} over {} leaves", 1usize << depth);
    }

    /// Same agreement on an inconsistent tree (children do not sum to
    /// their parent; no consistency pass): the CDF is built from the
    /// walk's own branch probabilities, so the two paths encode the same
    /// measure whenever every junction keeps positive mass.
    #[test]
    fn chunked_matches_walk_on_inconsistent_tree(
        counts in proptest::collection::vec(0.5f64..40.0, 31),
        seed in 0u64..1_000,
    ) {
        let depth = 3;
        let cube = Hypercube::new(2);
        let tree = complete_tree(depth, &counts);
        let sampler = TreeSampler::new(&tree, &cube);

        let m = 4_096;
        let mut rng = rng_from_seed(seed ^ 0x1CE);
        let chunked = sampler.sample_many(m, &mut rng);
        let mut rng = rng_from_seed(seed ^ 0xF00D);
        let walk: Vec<Vec<f64>> = (0..m).map(|_| sampler.sample(&mut rng)).collect();

        let d = tv(&leaf_frequencies(&cube, &chunked, depth),
                   &leaf_frequencies(&cube, &walk, depth));
        prop_assert!(d < 0.08, "chunked vs walk TV distance {d} on a noisy tree");
    }

    /// A zero-mass tree falls back to the uniform-over-cells walk, which is
    /// bit-identical between the batch and per-draw paths.
    #[test]
    fn zero_mass_tree_falls_back_bit_identically(seed in 0u64..10_000) {
        let cube = Hypercube::new(2);
        let tree = complete_tree(3, &[0.0]);
        let sampler = TreeSampler::new(&tree, &cube);

        let mut rng = rng_from_seed(seed);
        let batch = sampler.sample_many(256, &mut rng);
        let mut rng = rng_from_seed(seed);
        let walk: Vec<Vec<f64>> = (0..256).map(|_| sampler.sample(&mut rng)).collect();
        for (a, b) in batch.iter().zip(&walk) {
            prop_assert!((0.0..1.0).contains(&a[0]) && (0.0..1.0).contains(&a[1]));
            prop_assert_eq!(a[0].to_bits(), b[0].to_bits());
            prop_assert_eq!(a[1].to_bits(), b[1].to_bits());
        }
    }

    /// Morton round-trip through the batch jitter: with all mass on one
    /// leaf, every batched sample must locate back to exactly that leaf —
    /// the de-interleaved cell bounds are the cell the CDF selected.
    #[test]
    fn batched_points_relocate_to_their_leaf(
        leaf_bits in 0u64..64,
        seed in 0u64..1_000,
    ) {
        let depth = 6;
        let cube = Hypercube::new(2);
        let target = Path::from_bits(leaf_bits, depth);
        let mut tree = PartitionTree::new();
        for l in 0..=depth {
            let node = target.ancestor(l);
            tree.insert(node, 1.0);
            if let Some(sib) = node.sibling() {
                tree.insert(sib, 0.0);
            }
        }
        let sampler = TreeSampler::new(&tree, &cube);

        let mut rng = rng_from_seed(seed ^ 0x3D);
        for p in sampler.sample_many(512, &mut rng) {
            prop_assert_eq!(cube.locate(&p, depth), target);
        }
    }

    /// `sample_many_into`'s flat buffer is the bit-exact row-major encoding
    /// of `sample_many`'s points, in 1-D and 2-D, at an equal RNG state.
    #[test]
    fn flat_buffer_encodes_sample_many_exactly(
        counts in proptest::collection::vec(0.0f64..30.0, 15),
        seed in 0u64..10_000,
    ) {
        let m = 777;

        let interval = UnitInterval::new();
        let mut tree = complete_tree(3, &counts);
        enforce_consistency_subtree(&mut tree, &Path::root());
        let sampler = TreeSampler::new(&tree, &interval);
        let mut rng = rng_from_seed(seed);
        let pts = sampler.sample_many(m, &mut rng);
        let mut rng = rng_from_seed(seed);
        let mut flat = Vec::new();
        sampler.sample_many_into(m, &mut rng, &mut flat);
        prop_assert_eq!(flat.len(), m);
        for (p, lane) in pts.iter().zip(&flat) {
            prop_assert_eq!(p.to_bits(), lane.to_bits());
        }

        let cube = Hypercube::new(2);
        let mut tree = complete_tree(4, &counts);
        enforce_consistency_subtree(&mut tree, &Path::root());
        let sampler = TreeSampler::new(&tree, &cube);
        let mut rng = rng_from_seed(seed ^ 0xD2);
        let pts = sampler.sample_many(m, &mut rng);
        let mut rng = rng_from_seed(seed ^ 0xD2);
        let mut flat = Vec::new();
        sampler.sample_many_into(m, &mut rng, &mut flat);
        prop_assert_eq!(flat.len(), 2 * m);
        for (p, row) in pts.iter().zip(flat.chunks_exact(2)) {
            prop_assert_eq!(p[0].to_bits(), row[0].to_bits());
            prop_assert_eq!(p[1].to_bits(), row[1].to_bits());
        }
    }
}
