//! Merge semantics of the sharded ingest path (proptest).
//!
//! The mergeable-builder design promises that K-shard ingest —
//! `ingest_par`, or explicit `new_shard` builders merged by hand — is
//! indistinguishable from one sequential pass: **bit-identical** tree
//! counters and sketch-arena tables (the deterministic state is a sum of
//! exact integer updates), and **byte-identical** finalized release
//! documents for the same noise seed (noise is injected exactly once, at
//! finalize, from a seed committed at construction). These properties are
//! what make data-parallel and multi-machine ingest safe to use: the
//! thread/shard count can never change a release.

use privhp::core::config::SketchKind;
use privhp::core::{PrivHpBuilder, PrivHpConfig};
use privhp::domain::{HierarchicalDomain, Hypercube, UnitInterval};
use privhp::dp::rng::rng_from_seed;
use proptest::prelude::*;

/// Asserts two builders hold bit-identical deterministic state.
fn assert_state_eq<D: HierarchicalDomain + Clone>(
    a: &PrivHpBuilder<D>,
    b: &PrivHpBuilder<D>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.items_seen(), b.items_seen());
    for (p, c) in a.tree().iter() {
        prop_assert!(
            c.to_bits() == b.tree().count_unchecked(p).to_bits(),
            "tree counters diverged at {p}"
        );
    }
    let (ta, tb) = (a.sketches().table(), b.sketches().table());
    prop_assert_eq!(ta.len(), tb.len());
    for (i, (x, y)) in ta.iter().zip(tb).enumerate() {
        prop_assert!(x.to_bits() == y.to_bits(), "sketch arena diverged at cell {i}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K-shard `ingest_par` equals sequential ingest bit-for-bit — tree
    /// counters, sketch tables, and the finalized release bytes — for
    /// both sketch kinds, any thread count (including K = 1), and streams
    /// that may be smaller than the shard count.
    #[test]
    fn ingest_par_equals_sequential(
        xs in proptest::collection::vec(0.0f64..1.0, 1..600),
        threads in 1usize..6,
        seed in 0u64..1000,
        use_count_sketch in proptest::collection::vec(0u8..2, 1)
    ) {
        let kind = if use_count_sketch[0] == 1 { SketchKind::CountSketch } else { SketchKind::CountMin };
        let config = PrivHpConfig::for_domain(1.0, xs.len().max(2), 4)
            .with_seed(seed)
            .with_sketch_kind(kind);

        let mut rng = rng_from_seed(seed ^ 0xA1);
        let mut sequential =
            PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
        for x in &xs {
            sequential.ingest(x);
        }

        let mut rng = rng_from_seed(seed ^ 0xA1);
        let mut parallel = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        parallel.ingest_par(&xs, threads);

        assert_state_eq(&sequential, &parallel)?;

        let a = serde_json::to_string(sequential.finalize().tree()).unwrap();
        let b = serde_json::to_string(parallel.finalize().tree()).unwrap();
        prop_assert!(a == b, "finalized release bytes differ");
    }

    /// Explicit shard builders (`new_shard` + `merge`) over an arbitrary
    /// partition of the stream — including empty shards — reproduce the
    /// sequential state exactly, on a 2-D domain.
    #[test]
    fn explicit_shard_merge_equals_sequential_2d(
        coords in proptest::collection::vec(0.0f64..1.0, 2..400),
        cut_a in 0usize..400,
        cut_b in 0usize..400,
        seed in 0u64..1000
    ) {
        let pts: Vec<Vec<f64>> = coords.chunks_exact(2).map(|c| c.to_vec()).collect();
        // Two cuts (possibly equal, possibly 0 or len: empty shards).
        let mut cuts = [cut_a % (pts.len() + 1), cut_b % (pts.len() + 1)];
        cuts.sort_unstable();
        let shards = [&pts[..cuts[0]], &pts[cuts[0]..cuts[1]], &pts[cuts[1]..]];

        let domain = Hypercube::new(2);
        let config = PrivHpConfig::for_domain(1.0, pts.len().max(2), 4).with_seed(seed);

        let mut rng = rng_from_seed(seed ^ 0xB2);
        let mut sequential = PrivHpBuilder::new(domain.clone(), config.clone(), &mut rng).unwrap();
        sequential.ingest_batch(&pts);

        let mut rng = rng_from_seed(seed ^ 0xB2);
        let mut coordinator = PrivHpBuilder::new(domain.clone(), config.clone(), &mut rng).unwrap();
        for shard_points in shards {
            let mut shard = PrivHpBuilder::new_shard(domain.clone(), config.clone()).unwrap();
            prop_assert!(shard.is_shard());
            shard.ingest_batch(shard_points);
            coordinator.merge(shard);
        }

        assert_state_eq(&sequential, &coordinator)?;

        let a = serde_json::to_string(sequential.finalize().tree()).unwrap();
        let b = serde_json::to_string(coordinator.finalize().tree()).unwrap();
        prop_assert!(a == b, "finalized release bytes differ");
    }

    /// `ingest_batch` (chunked level-major) is bit-identical to
    /// item-by-item `ingest` across chunk boundaries.
    #[test]
    fn batch_equals_item_ingest(
        xs in proptest::collection::vec(0.0f64..1.0, 1..700),
        seed in 0u64..1000
    ) {
        let config = PrivHpConfig::for_domain(1.0, xs.len().max(2), 4).with_seed(seed);
        let mut rng = rng_from_seed(seed ^ 0xC3);
        let mut item = PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
        for x in &xs {
            item.ingest(x);
        }
        let mut rng = rng_from_seed(seed ^ 0xC3);
        let mut batch = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        batch.ingest_batch(&xs);
        assert_state_eq(&item, &batch)?;
    }
}
