//! Networking scenario: a private summary of source addresses on a packet
//! stream.
//!
//! The IPv4 address space is one of the paper's motivating metric domains
//! (§1.2): the prefix hierarchy *is* the hierarchical decomposition, and
//! "hot" subdomains are busy networks. PrivHP ingests a packet stream in
//! bounded memory and releases a synthetic address stream from which
//! per-prefix traffic shares can be estimated without touching real
//! addresses.
//!
//! Run with: `cargo run --release --example ipv4_traffic`

use privhp::core::{PrivHp, PrivHpConfig};
use privhp::domain::{HierarchicalDomain, Ipv4Space};
use privhp::workloads::ipv4_sessions;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let space = Ipv4Space::new();

    // --- 1. Synthetic packet stream: 85% from four busy /16s. ------------
    let hot = [(10u8, 3u8), (10, 7), (172, 16), (192, 168)];
    let n = 50_000;
    let packets = ipv4_sessions(n, &hot, 0.85, &mut rng);

    // --- 2. PrivHP over the address space (depth ≤ 32 prefixes). ---------
    // k = 64 keeps all four hot /16 lineages (and their siblings) hot at
    // every level of the 16-deep prefix hierarchy.
    let epsilon = 1.0;
    let config = PrivHpConfig::for_domain(epsilon, n, 64);
    let depth = config.depth.min(space.max_level());
    let l_star = config.l_star.min(depth - 1);
    let config = config.with_levels(l_star, depth);
    let generator =
        PrivHp::build(&space, config, packets.iter().copied(), &mut rng).expect("valid config");
    println!(
        "{n} packets -> {} words of private state (prefix tree depth {depth})",
        generator.memory_words()
    );

    // --- 3. Estimate /16 traffic shares from the synthetic stream. -------
    let synthetic = generator.sample_many(n, &mut rng);
    let shares = |stream: &[u32]| -> HashMap<(u8, u8), f64> {
        let mut m = HashMap::new();
        for &a in stream {
            *m.entry(((a >> 24) as u8, (a >> 16) as u8)).or_insert(0.0) +=
                1.0 / stream.len() as f64;
        }
        m
    };
    let real = shares(&packets);
    let synth = shares(&synthetic);

    println!("\n/16 network        real share   synthetic share");
    let mut hot_sorted = hot.to_vec();
    hot_sorted.sort();
    for (a, b) in hot_sorted {
        let r = real.get(&(a, b)).copied().unwrap_or(0.0);
        let s = synth.get(&(a, b)).copied().unwrap_or(0.0);
        println!("{:>7}.{:<3}.0.0/16   {r:>9.4}   {s:>15.4}", a, b);
    }
    let r_cold: f64 = 1.0 - hot.iter().map(|k| real.get(k).copied().unwrap_or(0.0)).sum::<f64>();
    let s_cold: f64 = 1.0 - hot.iter().map(|k| synth.get(k).copied().unwrap_or(0.0)).sum::<f64>();
    println!("{:>18}   {r_cold:>9.4}   {s_cold:>15.4}", "(everything else)");

    // --- 4. The synthetic stream is ε-DP: drill-downs are free. ----------
    let busiest = synth
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|((a, b), share)| (format!("{a}.{b}.0.0/16"), *share))
        .unwrap();
    println!(
        "\nbusiest network per the private release: {} ({:.1}% of traffic)",
        busiest.0,
        busiest.1 * 100.0
    );
}
