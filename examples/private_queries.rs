//! Query-flexibility scenario: answer ad-hoc statistical queries in closed
//! form from one private release.
//!
//! The paper's motivation (§1): sketch-based private structures answer only
//! *predefined* queries, while a synthetic data generator supports any
//! downstream analysis by post-processing. This example builds one PrivHP
//! release and answers range probabilities, CDFs, quantiles and means
//! directly from the released tree (`privhp::core::TreeQuery`) — no
//! sampling noise, no extra privacy budget.
//!
//! Run with: `cargo run --release --example private_queries`

use privhp::core::{PrivHp, PrivHpConfig, TreeQuery};
use privhp::domain::UnitInterval;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);

    // Income-like data: log-normal-ish, heavy lower mass, long upper tail.
    let n = 30_000;
    let data: Vec<f64> = (0..n)
        .map(|_| {
            let z = gaussian(&mut rng);
            ((0.25 * (0.8 * z).exp()) / 2.0).clamp(0.0, 0.999)
        })
        .collect();

    let config = PrivHpConfig::for_domain(1.0, n, 32);
    let generator = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng)
        .expect("valid configuration");
    let domain = UnitInterval::new();
    let query = TreeQuery::new(generator.tree(), &domain);

    // Ground truth helpers (never released — shown for comparison only).
    let true_frac =
        |a: f64, b: f64| data.iter().filter(|&&x| a <= x && x < b).count() as f64 / n as f64;
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let true_quantile = |q: f64| sorted[((q * (n - 1) as f64) as usize).min(n - 1)];

    println!("ad-hoc queries from ONE eps=1 release (closed form, no sampling):\n");
    println!("query                         private      true");
    for (a, b) in [(0.0, 0.1), (0.1, 0.2), (0.2, 0.4), (0.4, 1.0)] {
        println!(
            "P[{a:.1} <= X < {b:.1}]            {:.4}       {:.4}",
            query.range_probability(a, b),
            true_frac(a, b)
        );
    }
    for q in [0.25, 0.5, 0.9, 0.99] {
        println!(
            "quantile({q:<4})                {:.4}       {:.4}",
            query.quantile(q),
            true_quantile(q)
        );
    }
    println!(
        "mean                          {:.4}       {:.4}",
        query.mean(),
        data.iter().sum::<f64>() / n as f64
    );
    println!(
        "CDF(0.3)                      {:.4}       {:.4}",
        query.cdf(0.3),
        true_frac(0.0, 0.3)
    );

    println!("\nall answers are post-processing of the same release — the total privacy");
    println!("cost stays eps = 1 no matter how many queries are asked (Lemma 2).");
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
