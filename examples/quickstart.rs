//! Quickstart: build an ε-differentially-private synthetic data generator
//! from a 1-D stream in bounded memory, then sample from it.
//!
//! Run with: `cargo run --release --example quickstart`

use privhp::core::{PrivHp, PrivHpConfig};
use privhp::domain::UnitInterval;
use privhp::metrics::wasserstein1d::w1_exact_1d;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);

    // --- 1. A sensitive stream: response times, bimodal and skewed. ------
    let n = 20_000;
    let data: Vec<f64> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.8) {
                // fast path: tight mode near 0.1
                (0.1 + 0.02 * gaussian(&mut rng)).clamp(0.0, 0.999)
            } else {
                // slow path: wide mode near 0.7
                (0.7 + 0.08 * gaussian(&mut rng)).clamp(0.0, 0.999)
            }
        })
        .collect();

    // --- 2. Configure PrivHP: ε = 1, pruning parameter k = 16. -----------
    // Defaults follow the paper's Corollary 1: hierarchy depth log2(εn),
    // sketch width 4k / depth log2(n), L* = O(log M), Lemma-5 budget split.
    let epsilon = 1.0;
    let k = 16;
    let config = PrivHpConfig::for_domain(epsilon, n, k);
    println!("PrivHP configuration:");
    println!("  epsilon = {epsilon}, k = {k}");
    println!("  hierarchy depth L = {}, pruning level L* = {}", config.depth, config.l_star);
    println!(
        "  sketches: {} levels x ({} rows x {} buckets)",
        config.depth - config.l_star,
        config.sketch.depth,
        config.sketch.width
    );

    // --- 3. One pass over the stream (all noise drawn up front). ---------
    let generator = PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng)
        .expect("valid configuration");
    println!(
        "\nreleased structure: {} tree nodes, {} words of memory (input: {n} points)",
        generator.tree().len(),
        generator.memory_words()
    );

    // --- 4. Sample synthetic data — safe to publish, ε-DP end to end. ----
    let synthetic = generator.sample_many(n, &mut rng);
    let w1 = w1_exact_1d(&data, &synthetic);
    println!("\nexact W1(real, synthetic) = {w1:.5}");

    // A data-independent uniform sample for scale:
    let uniform: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    println!(
        "exact W1(real, uniform)   = {:.5}  (the no-learning floor)",
        w1_exact_1d(&data, &uniform)
    );

    // --- 5. Downstream use costs no extra privacy (post-processing). -----
    let fast = synthetic.iter().filter(|&&x| x < 0.4).count() as f64 / n as f64;
    let fast_true = data.iter().filter(|&&x| x < 0.4).count() as f64 / n as f64;
    println!("\nP(fast path) from synthetic data: {fast:.3} (true: {fast_true:.3})");
}

/// Standard Gaussian via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
