//! Streaming scenario: the incremental builder API on an unbounded sensor
//! feed, with a memory-vs-utility comparison against the full-memory PMM
//! baseline.
//!
//! This example exercises the 1-pass interface directly: construct a
//! `PrivHpBuilder` (all privacy noise drawn up front — Algorithm 1 lines
//! 2–8), feed readings as they arrive, inspect the bounded memory footprint
//! mid-stream, then `finalize()` into a generator at release time.
//!
//! Run with: `cargo run --release --example streaming_sensor`

use privhp::baselines::Pmm;
use privhp::core::{PrivHpBuilder, PrivHpConfig};
use privhp::domain::UnitInterval;
use privhp::metrics::wasserstein1d::w1_exact_1d;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(314);
    let n = 60_000;
    let epsilon = 1.0;
    let k = 16;

    // --- 1. Open the stream summary before any data arrives. -------------
    let config = PrivHpConfig::for_domain(epsilon, n, k);
    let mut noise_rng = rand::rngs::StdRng::seed_from_u64(315);
    let mut builder = PrivHpBuilder::new(UnitInterval::new(), config, &mut noise_rng)
        .expect("valid configuration");
    println!("builder opened: {} words before any data", builder.memory_words());

    // --- 2. Ingest readings one at a time (temperature-like drift). ------
    let mut history = Vec::with_capacity(n);
    let mut level = 0.3f64;
    for i in 0..n {
        // Slow drift + diurnal wave + occasional spikes.
        level = (level + 0.0005 * gaussian(&mut rng)).clamp(0.05, 0.95);
        let wave = 0.08 * ((i as f64 / n as f64) * 12.0 * std::f64::consts::PI).sin();
        let spike = if rng.gen_bool(0.01) { rng.gen_range(0.0..0.3) } else { 0.0 };
        let reading = (level + wave + spike).clamp(0.0, 0.999);
        builder.ingest(&reading);
        history.push(reading);
        if (i + 1) % 20_000 == 0 {
            println!(
                "  after {:>6} readings: {} words (bounded, not O(n))",
                i + 1,
                builder.memory_words()
            );
        }
    }

    // --- 3. Release: grow the partition, get the generator. --------------
    let generator = builder.finalize();
    let synthetic = generator.sample_many(n, &mut rng);
    let w1_privhp = w1_exact_1d(&history, &synthetic);

    // --- 4. Full-memory reference (PMM needs the whole dataset). ---------
    let mut pmm_rng = rand::rngs::StdRng::seed_from_u64(316);
    let pmm = Pmm::build(&UnitInterval::new(), epsilon, &history, &mut pmm_rng);
    let pmm_synth = pmm.sample_many(n, &mut pmm_rng);
    let w1_pmm = w1_exact_1d(&history, &pmm_synth);

    println!("\n                     W1 to real data    memory (words)");
    println!("PrivHP (streaming)   {:>14.5}    {:>10}", w1_privhp, generator.memory_words());
    println!("PMM    (full data)   {:>14.5}    {:>10}", w1_pmm, pmm.memory_words());
    println!(
        "\nPrivHP holds {:.1}x less state for {:.2}x the distance — the paper's trade-off.",
        pmm.memory_words() as f64 / generator.memory_words() as f64,
        w1_privhp / w1_pmm
    );
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
