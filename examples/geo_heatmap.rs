//! Geographic scenario: a private heat map of ride pick-up locations.
//!
//! A city window (Sydney) is decomposed hierarchically; PrivHP summarises a
//! stream of pick-up coordinates in bounded memory, and the released
//! generator produces a synthetic pick-up dataset whose spatial density can
//! be rendered, aggregated, or mined without further privacy cost.
//!
//! Run with: `cargo run --release --example geo_heatmap`

use privhp::core::{PrivHp, PrivHpConfig};
use privhp::domain::{GeoBox, GeoPoint};
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let city = GeoBox::new(-34.1, -33.6, 150.9, 151.35); // greater Sydney

    // --- 1. Simulate pick-ups: CBD-heavy with two suburban hot spots. ----
    let hotspots = [
        (GeoPoint::new(-33.87, 151.21), 0.010, 0.55), // CBD
        (GeoPoint::new(-33.89, 151.19), 0.018, 0.25), // inner west
        (GeoPoint::new(-33.97, 151.10), 0.025, 0.20), // airport-ish
    ];
    let n = 30_000;
    let data: Vec<GeoPoint> = (0..n)
        .map(|_| loop {
            let pick: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            let (centre, spread, _) = hotspots
                .iter()
                .find(|(_, _, w)| {
                    acc += w;
                    pick < acc
                })
                .copied()
                .unwrap_or(hotspots[0]);
            let p = GeoPoint::new(
                centre.lat + spread * gaussian(&mut rng),
                centre.lon + spread * gaussian(&mut rng),
            );
            if city.contains(&p) {
                break p;
            }
        })
        .collect();

    // --- 2. Private summary in bounded memory. ----------------------------
    let epsilon = 1.0;
    let config = PrivHpConfig::for_domain(epsilon, n, 32);
    let generator =
        PrivHp::build(&city, config, data.iter().copied(), &mut rng).expect("valid config");
    println!(
        "ingested {n} pick-ups into {} words ({}x fewer than storing the stream)",
        generator.memory_words(),
        2 * n / generator.memory_words().max(1)
    );

    // --- 3. Publishable synthetic pick-ups + an ASCII heat map. -----------
    let synthetic = generator.sample_many(n, &mut rng);
    println!("\nprivate heat map (synthetic data, {}x{} grid):", GRID_W, GRID_H);
    render(&city, &synthetic);
    println!("\nreference heat map (real data — for the demo only, never published):");
    render(&city, &data);
}

const GRID_W: usize = 48;
const GRID_H: usize = 16;

fn render(city: &GeoBox, points: &[GeoPoint]) {
    let mut grid = vec![0usize; GRID_W * GRID_H];
    for p in points {
        let q = city.normalise(p);
        let x = ((q[1] * GRID_W as f64) as usize).min(GRID_W - 1);
        let y = ((q[0] * GRID_H as f64) as usize).min(GRID_H - 1);
        grid[y * GRID_W + x] += 1;
    }
    let max = *grid.iter().max().unwrap_or(&1);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    for row in grid.chunks(GRID_W).rev() {
        let line: String = row
            .iter()
            .map(|&c| {
                let idx = (c * (shades.len() - 1)).checked_div(max).unwrap_or(0);
                shades[idx]
            })
            .collect();
        println!("  |{line}|");
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
