//! Mixed-type tabular scenario: a continuous attribute × a categorical
//! label, privatised jointly.
//!
//! Real tabular data rarely lives in `[0,1]^d` alone. The
//! `ProductDomain` combines any two hierarchical domains under the max
//! metric with alternating splits — the same construction Corollary 1 uses
//! to assemble the hypercube from intervals — so PrivHP runs unchanged on
//! (value, label) records and the released generator preserves the *joint*
//! structure, not just the marginals.
//!
//! Run with: `cargo run --release --example mixed_tabular`

use privhp::core::{PrivHp, PrivHpConfig};
use privhp::domain::{Categorical, ProductDomain, UnitInterval};
use rand::Rng;
use rand::SeedableRng;

const LABELS: [&str; 4] = ["bronze", "silver", "gold", "platinum"];

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let domain = ProductDomain::new(UnitInterval::new(), Categorical::new(4));

    // Spend amounts correlated with loyalty tier: higher tiers spend more.
    let n = 25_000;
    let data: Vec<(f64, u64)> = (0..n)
        .map(|_| {
            let tier = match rng.gen_range(0.0..1.0) {
                t if t < 0.5 => 0u64,
                t if t < 0.8 => 1,
                t if t < 0.95 => 2,
                _ => 3,
            };
            let base = 0.1 + 0.22 * tier as f64;
            let spend = (base + 0.04 * gaussian(&mut rng)).clamp(0.0, 0.999);
            (spend, tier)
        })
        .collect();

    let config = PrivHpConfig::for_domain(1.0, n, 32);
    let generator =
        PrivHp::build(&domain, config, data.iter().cloned(), &mut rng).expect("valid config");
    let synthetic = generator.sample_many(n, &mut rng);
    println!("{n} (spend, tier) records -> {} words of private state\n", generator.memory_words());

    println!("tier        share(real)  share(synth)  mean spend(real)  mean spend(synth)");
    for tier in 0..4u64 {
        let real: Vec<f64> = data.iter().filter(|(_, t)| *t == tier).map(|(x, _)| *x).collect();
        let synth: Vec<f64> =
            synthetic.iter().filter(|(_, t)| *t == tier).map(|(x, _)| *x).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:<10}  {:>10.3}  {:>12.3}  {:>16.3}  {:>17.3}",
            LABELS[tier as usize],
            real.len() as f64 / n as f64,
            synth.len() as f64 / n as f64,
            mean(&real),
            mean(&synth)
        );
    }

    println!("\nThe joint (spend | tier) means survive the private release — the product");
    println!("decomposition keeps correlated attributes in shared subdomains.");
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
