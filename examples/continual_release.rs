//! Continual-observation scenario: release a fresh private generator at
//! every checkpoint of a live stream.
//!
//! The paper's 1-pass model releases once, at the end (§3.1, Definition 1),
//! but notes the method "can be adapted to continual observation by
//! replacing the counters and sketches with their continual observation
//! counterparts". This example runs that adaptation
//! (`privhp::core::ContinualPrivHp`): binary-mechanism counters + continual
//! Count-Min sketches, so the *whole sequence* of releases is ε-DP — no
//! budget is consumed per checkpoint.
//!
//! Run with: `cargo run --release --example continual_release`

use privhp::core::{ContinualPrivHp, PrivHpConfig};
use privhp::domain::UnitInterval;
use privhp::metrics::wasserstein1d::w1_exact_1d;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let n = 1 << 14;
    let epsilon = 4.0; // the continual model charges an extra log T factor
    let config = PrivHpConfig::for_domain(epsilon, n, 16);

    // Horizon 2^14 items.
    let mut privhp =
        ContinualPrivHp::new(UnitInterval::new(), config, 14).expect("valid configuration");
    println!(
        "continual PrivHP opened: {} words (binary-mechanism counters + continual sketches)\n",
        privhp.memory_words()
    );

    // A drifting stream: the mode moves from 0.2 to 0.8 over time.
    let mut history: Vec<f64> = Vec::new();
    println!("checkpoint   items     mode(true)   W1(all data so far)");
    for step in 1..=8 {
        for i in 0..(n / 8) {
            let t = (history.len() + i) as f64 / n as f64;
            let mode = 0.2 + 0.6 * t;
            let x = (mode + 0.05 * gaussian(&mut rng)).clamp(0.0, 0.999);
            privhp.ingest(&x, &mut rng);
            history.push(x);
        }
        // Release at the checkpoint — post-processing, costs no budget.
        let generator = privhp.release();
        let synthetic = generator.sample_many(history.len(), &mut rng);
        let w1 = w1_exact_1d(&history, &synthetic);
        let mode_now = 0.2 + 0.6 * (history.len() as f64 / n as f64);
        println!("{step:>10}   {:>6}      {mode_now:.2}        {w1:.5}", history.len());
    }

    println!("\nEvery checkpoint's release reflects the stream so far; the sequence of");
    println!("releases is jointly eps={epsilon}-DP (binary mechanism + post-processing).");
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
