//! Integration tests for the sweep engine and the declarative experiment
//! suite: scheduling must never change results (any thread count, any
//! co-scheduling), per-(cell, trial) seeds must be collision-free across
//! every registered sweep, and `exp_all` in smoke mode must exercise every
//! registered experiment end-to-end (grids, reports, JSON).

use privhp_bench::experiments::{all, build_all, Scale};
use privhp_bench::report::{merge_sweep_json, results_dir, write_sweep_json};
use privhp_bench::sweep::{run_sweeps, run_sweeps_sharded, ShardSpec, SweepResult};
use serde::{Serialize, Value};

/// One sequential test owns every environment-dependent phase: libtest runs
/// `#[test]`s on parallel threads, and `set_var` racing `env::var` readers
/// is undefined behaviour on glibc — so all env mutation and all env
/// consumption happen inside this single test body. (The sibling test below
/// never touches the environment.)
#[test]
fn sweep_engine_end_to_end() {
    std::env::set_var("PRIVHP_TRIALS", "2");
    let json_dir = std::env::temp_dir().join("privhp_sweep_engine_test");
    std::env::set_var("PRIVHP_RESULTS_DIR", json_dir.display().to_string());

    // Phase 1 — byte-identical results across thread counts: a real
    // experiment sweep (cheap CMS cells, fully driven by the
    // engine-assigned seeds) at 1 vs 6 threads.
    let build = || privhp_bench::experiments::sketch_error::sweep(Scale::Smoke);
    let serial = run_sweeps(vec![build()], 1);
    let parallel = run_sweeps(vec![build()], 6);
    assert_eq!(serial[0].cells.len(), parallel[0].cells.len());
    for (a, b) in serial[0].cells.iter().zip(&parallel[0].cells) {
        assert_eq!(a.label, b.label);
        for (va, vb) in a.values.iter().zip(&b.values) {
            let bits_a: Vec<u64> = va.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u64> = vb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "cell `{}` differs across thread counts", a.label);
        }
    }

    // Phase 2 — engine-assigned (cell, trial) seeds are collision-free
    // across every registered sweep of the suite.
    for sweep in build_all(Scale::Smoke) {
        let seeds = sweep.assigned_seeds();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            seeds.len(),
            "sweep `{}` assigned colliding seeds",
            sweep.experiment()
        );
    }

    // Phase 3 — exp_all in smoke mode (PRIVHP_TRIALS=2): the full suite
    // runs in one process-wide pool, every registered experiment produces
    // finite results, every report prints, every sweep writes its JSON.
    let experiments = all();
    assert_eq!(experiments.len(), 17, "16 exp_* binaries + exp_table1 at d=1 and d=2");

    let results: Vec<SweepResult> = run_sweeps(build_all(Scale::Smoke), 4);
    assert_eq!(results.len(), experiments.len());

    for (exp, result) in experiments.iter().zip(&results) {
        assert_eq!(result.experiment, exp.name);
        assert!(!result.cells.is_empty(), "{} declared no cells", exp.name);
        for cell in &result.cells {
            assert_eq!(cell.values.len(), cell.trials);
            for row in &cell.values {
                assert_eq!(row.len(), cell.metrics.len());
            }
            for metric in &cell.metrics {
                let s = cell.summary(metric);
                assert!(
                    s.mean.is_finite(),
                    "{}/{} metric `{metric}` is not finite",
                    exp.name,
                    cell.label
                );
            }
            assert!(cell.cpu_seconds >= 0.0 && cell.wall_seconds >= 0.0);
        }
        // The paper-facing report must render from the smoke-scale result.
        (exp.report)(result);
        write_sweep_json(result);
        let path = json_dir.join(format!("{}.json", exp.name));
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        assert!(body.trim_start().starts_with('{'), "{} JSON must be an object", exp.name);
        assert!(body.contains("\"experiment\""), "unified schema carries the experiment name");
        assert!(body.contains("\"cells\""), "unified schema carries the cell list");
    }

    // The override is honoured: nothing leaked into the workspace default.
    assert_eq!(results_dir(), json_dir);

    // Phase 4 — multi-machine sharding composes: running a real experiment
    // sweep as K `--shard I/K` invocations covers every cell exactly once
    // with values bit-identical to the unsharded run, and
    // `merge_sweep_json` reassembles the per-shard documents into one
    // equivalent document. (Lives in this test body because Scale::Smoke
    // reads PRIVHP_TRIALS.)
    let full = run_sweeps(vec![build()], 2);

    const K: usize = 3;
    let shard_results: Vec<SweepResult> = (0..K)
        .map(|i| {
            run_sweeps_sharded(vec![build()], 2, Some(ShardSpec::new(i, K).unwrap()))
                .pop()
                .expect("one sweep in, one result out")
        })
        .collect();

    // Coverage: every cell in exactly one shard, bit-identical values.
    let mut covered = 0usize;
    for cell in &full[0].cells {
        let owners: Vec<&SweepResult> = shard_results
            .iter()
            .filter(|r| r.cells.iter().any(|c| c.label == cell.label))
            .collect();
        assert_eq!(owners.len(), 1, "cell `{}` must be owned by exactly one shard", cell.label);
        let shard_cell =
            owners[0].cells.iter().find(|c| c.label == cell.label).expect("owner has the cell");
        for (va, vb) in cell.values.iter().zip(&shard_cell.values) {
            let bits_a: Vec<u64> = va.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u64> = vb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "cell `{}` differs under sharding", cell.label);
        }
        covered += 1;
    }
    assert_eq!(covered, full[0].cells.len());

    // Document merge: per-shard JSON documents reassemble the full suite.
    let docs: Vec<Value> = shard_results.iter().map(Serialize::to_value).collect();
    let merged = merge_sweep_json(&docs).expect("shard documents merge");
    assert_eq!(merged.get("experiment").and_then(Value::as_str), Some("exp_sketch_error"));
    let merged_cells = merged.get("cells").and_then(Value::as_array).expect("cells array");
    assert_eq!(merged_cells.len(), full[0].cells.len());

    // Duplicated cells (same shard twice) must be rejected.
    let dup = merge_sweep_json(&[docs[0].clone(), docs[0].clone()]);
    if !docs[0].get("cells").and_then(Value::as_array).map(|c| c.is_empty()).unwrap_or(true) {
        assert!(dup.unwrap_err().contains("more than one shard"));
    }

    // Mixed experiments must be rejected.
    let other = Value::Object(vec![
        ("experiment".into(), Value::String("exp_other".into())),
        ("cells".into(), Value::Array(Vec::new())),
    ]);
    let err = merge_sweep_json(&[docs[0].clone(), other]).unwrap_err();
    assert!(err.contains("different experiments"));
}

/// Every exp_* binary shim maps onto a registered experiment: the registry
/// covers the full `src/bin` surface (exp_all drives the suite; exp_table1
/// registers per-dimension sweeps). Touches no environment state.
#[test]
fn registry_covers_every_experiment_binary() {
    let names: Vec<&str> = all().iter().map(|e| e.name).collect();
    let bin_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut bins = 0usize;
    for entry in std::fs::read_dir(bin_dir).expect("bin dir readable") {
        let file = entry.expect("dir entry").file_name().into_string().expect("utf8 name");
        let Some(stem) = file.strip_suffix(".rs") else { continue };
        if !stem.starts_with("exp_") || stem == "exp_all" {
            continue;
        }
        bins += 1;
        if stem == "exp_table1" {
            assert!(names.contains(&"exp_table1_d1") && names.contains(&"exp_table1_d2"));
        } else {
            assert!(names.contains(&stem), "binary `{stem}` has no registered experiment");
        }
    }
    assert_eq!(bins, 16, "the suite is 16 exp_* binaries plus exp_all");
}
