//! Parallel trial execution.
//!
//! `E[W1]` is an expectation over algorithm randomness, so every
//! configuration is measured over many independent trials. Trials are
//! embarrassingly parallel; we fan them out over a fixed pool of scoped
//! threads (`std::thread::scope` — no external thread-pool dependency; no
//! work stealing needed since trials within one sweep have near-identical
//! cost).
//!
//! This is the standalone single-cell primitive, kept as public API for
//! callers outside the experiment suite (benches, one-off scripts). The
//! suite itself no longer calls it: whole (method × workload × parameter)
//! grids go through [`crate::sweep::run_sweeps`], which schedules the
//! trials of *many* cells over one shared pool — scheduler features
//! (exclusive cells, setup billing) live only there.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `trials` independent evaluations of `f` (given the trial index) in
/// parallel and returns the results in trial order.
///
/// `f` must be deterministic in the trial index for reproducibility. Each
/// task owns a distinct output slot: workers stream `(index, result)` pairs
/// over a channel and the caller's thread places them — no shared mutex on
/// the result path, workers race only on the queue-head counter.
pub fn run_trials<T, F>(trials: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let threads = threads.clamp(1, trials);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f) = (&next, &f);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                tx.send((i, f(i))).expect("receiver outlives workers");
            });
        }
        drop(tx); // the receive loop ends when the last worker finishes
        for (i, out) in rx {
            debug_assert!(slots[i].is_none(), "trial slot {i} filled twice");
            slots[i] = Some(out);
        }
    });

    slots.into_iter().map(|s| s.expect("every trial filled")).collect()
}

/// Default parallelism: `PRIVHP_THREADS` if set (≥ 1), else available cores
/// capped at 8 (experiment binaries run many sweeps; beyond 8 threads the
/// memory traffic dominates — the env var is the escape hatch for bigger
/// machines).
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("PRIVHP_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = run_trials(3, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials(2, 16, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_trials(8, 4, |i| i as f64 * 0.5);
        let b = run_trials(8, 2, |i| i as f64 * 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn non_copy_results_supported() {
        let out = run_trials(4, 2, |i| vec![i; i + 1]);
        assert_eq!(out[3], vec![3, 3, 3, 3]);
    }
}
