//! Parallel trial execution.
//!
//! `E[W1]` is an expectation over algorithm randomness, so every
//! configuration is measured over many independent trials. Trials are
//! embarrassingly parallel; we fan them out over a fixed pool of scoped
//! threads (`std::thread::scope` — no external thread-pool dependency; no
//! work stealing needed since trials within one sweep have near-identical
//! cost).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `trials` independent evaluations of `f` (given the trial index) in
/// parallel and returns the results in trial order.
///
/// `f` must be deterministic in the trial index for reproducibility.
pub fn run_trials<T, F>(trials: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let threads = threads.clamp(1, trials);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                results.lock().expect("trial thread panicked")[i] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("trial thread panicked")
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// Default parallelism: available cores capped at 8 (experiment binaries
/// run many sweeps; beyond 8 threads the memory traffic dominates).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_trial_order() {
        let out = run_trials(16, 4, |i| i * i);
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_works() {
        let out = run_trials(3, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn more_threads_than_trials() {
        let out = run_trials(2, 16, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_trials(8, 4, |i| i as f64 * 0.5);
        let b = run_trials(8, 2, |i| i as f64 * 0.5);
        assert_eq!(a, b);
    }
}
