//! Uniform construction interface over PrivHP and every baseline, so the
//! experiment binaries can sweep "method × workload × parameters" without
//! per-method plumbing.

use privhp_baselines::{BoundedQuantiles, NonPrivateHistogram, Pmm, PrivTree, Srrw, UniformBaseline};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::{Hypercube, UnitInterval};
use privhp_dp::rng::DeterministicRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The methods compared in the Table-1 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// The paper's contribution, with the given pruning parameter `k`.
    PrivHp {
        /// Pruning parameter.
        k: usize,
    },
    /// He et al.'s PMM (full hierarchy, optimal split).
    Pmm,
    /// SRRW-style dyadic baseline (full hierarchy, uniform split).
    Srrw,
    /// Data-independent uniform sampling.
    Uniform,
    /// Non-private exact histogram (ε = ∞ skyline).
    NonPrivate,
    /// PrivTree (Zhang et al.): static adaptive decomposition, needs full
    /// data access (1-D runs only).
    PrivTree,
    /// Bounded-space private quantiles (Alabi et al.; 1-D, fixed grid).
    Quantiles,
}

impl Method {
    /// Short display name for tables.
    pub fn name(&self) -> String {
        match self {
            Method::PrivHp { k } => format!("PrivHP(k={k})"),
            Method::Pmm => "PMM".into(),
            Method::Srrw => "SRRW".into(),
            Method::Uniform => "Uniform".into(),
            Method::NonPrivate => "NonPrivate".into(),
            Method::PrivTree => "PrivTree".into(),
            Method::Quantiles => "Quantiles".into(),
        }
    }
}

/// Result of building + evaluating a method on one trial.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Measured `W1` distance to the empirical input distribution.
    pub w1: f64,
    /// Memory retained by the summary, in 8-byte words.
    pub memory_words: usize,
    /// Wall-clock build time in seconds (stream pass + release).
    pub build_seconds: f64,
}

/// Builds `method` over 1-D `data` and returns its exact `W1` and memory.
pub fn run_method_1d(method: Method, epsilon: f64, data: &[f64], seed: u64) -> TrialOutcome {
    let domain = UnitInterval::new();
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let (w1, memory_words) = match method {
        Method::PrivHp { k } => {
            let config = PrivHpConfig::for_domain(epsilon, data.len(), k).with_seed(seed ^ 0xA5);
            let g = PrivHp::build(&domain, config, data.iter().copied(), &mut rng)
                .expect("valid config");
            (crate::eval::w1_generator_1d(data, g.tree(), &domain), g.memory_words())
        }
        Method::Pmm => {
            let g = Pmm::build(&domain, epsilon, data, &mut rng);
            (crate::eval::w1_generator_1d(data, g.tree(), &domain), g.memory_words())
        }
        Method::Srrw => {
            let g = Srrw::build(&domain, epsilon, data, &mut rng);
            (crate::eval::w1_generator_1d(data, g.tree(), &domain), g.memory_words())
        }
        Method::Uniform => {
            let g = UniformBaseline::new(&domain);
            (crate::eval::w1_uniform_1d(data), g.memory_words())
        }
        Method::NonPrivate => {
            let depth = ((data.len().max(2) as f64).log2().ceil() as usize).clamp(1, 18);
            let g = NonPrivateHistogram::build(&domain, depth, data);
            (crate::eval::w1_generator_1d(data, g.tree(), &domain), g.memory_words())
        }
        Method::PrivTree => {
            let depth = (((epsilon * data.len().max(2) as f64).max(2.0).log2().ceil())
                as usize)
                .clamp(1, 18);
            let g = PrivTree::build(&domain, epsilon, depth, data, &mut rng);
            (crate::eval::w1_generator_1d(data, g.tree(), &domain), g.memory_words())
        }
        Method::Quantiles => {
            let grid_bits = ((data.len().max(2) as f64).log2().ceil() as usize).clamp(2, 12);
            let g = BoundedQuantiles::build(epsilon, grid_bits, data, &mut rng);
            let mut sample_rng = DeterministicRng::seed_from_u64(seed ^ 0x51);
            let synthetic = g.sample_many(4 * data.len(), &mut sample_rng);
            (
                privhp_metrics::wasserstein1d::w1_exact_1d(data, &synthetic),
                g.memory_words(),
            )
        }
    };
    TrialOutcome { w1, memory_words, build_seconds: start.elapsed().as_secs_f64() }
}

/// Builds `method` over `d`-dimensional data and returns tree-`W1`
/// (evaluated at `eval_depth` levels with `4×` synthetic oversampling) and
/// memory.
pub fn run_method_nd(
    method: Method,
    epsilon: f64,
    data: &[Vec<f64>],
    dim: usize,
    eval_depth: usize,
    seed: u64,
) -> TrialOutcome {
    let cube = Hypercube::new(dim);
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let synthetic_n = (4 * data.len()).clamp(1_000, 40_000);
    let start = std::time::Instant::now();
    let (w1, memory_words) = match method {
        Method::PrivHp { k } => {
            let config = PrivHpConfig::for_domain(epsilon, data.len(), k).with_seed(seed ^ 0xA5);
            let g = PrivHp::build(&cube, config, data.iter().cloned(), &mut rng)
                .expect("valid config");
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::Pmm => {
            let g = Pmm::build(&cube, epsilon, data, &mut rng);
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::Srrw => {
            let g = Srrw::build(&cube, epsilon, data, &mut rng);
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::Uniform => {
            let g = UniformBaseline::new(&cube);
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::NonPrivate => {
            let depth = ((data.len().max(2) as f64).log2().ceil() as usize).clamp(1, 16);
            let g = NonPrivateHistogram::build(&cube, depth, data);
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::PrivTree => {
            let depth = (((epsilon * data.len().max(2) as f64).max(2.0).log2().ceil())
                as usize)
                .clamp(1, 16);
            let g = PrivTree::build(&cube, epsilon, depth, data, &mut rng);
            let w1 = crate::eval::tree_w1_generator_nd(
                &cube,
                data,
                |r| g.sample(r),
                synthetic_n,
                eval_depth,
                &mut rng,
            );
            (w1, g.memory_words())
        }
        Method::Quantiles => {
            panic!("the bounded-quantile baseline is 1-D only (finite ordered domains)")
        }
    };
    TrialOutcome { w1, memory_words, build_seconds: start.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_workloads::{GaussianMixture, Workload};

    fn data_1d(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        GaussianMixture::three_modes(1).generate(n, &mut rng)
    }

    #[test]
    fn all_methods_run_1d() {
        let data = data_1d(1_000, 1);
        for m in [
            Method::PrivHp { k: 8 },
            Method::Pmm,
            Method::Srrw,
            Method::Uniform,
            Method::NonPrivate,
            Method::PrivTree,
            Method::Quantiles,
        ] {
            let out = run_method_1d(m, 1.0, &data, 42);
            assert!(out.w1.is_finite() && out.w1 >= 0.0, "{}: W1 {}", m.name(), out.w1);
            assert!(out.memory_words >= 1);
        }
    }

    #[test]
    fn nonprivate_beats_uniform_on_skewed_data() {
        let data = data_1d(2_000, 2);
        let np = run_method_1d(Method::NonPrivate, 1.0, &data, 3);
        let un = run_method_1d(Method::Uniform, 1.0, &data, 3);
        assert!(np.w1 < un.w1, "skyline {} must beat uniform {}", np.w1, un.w1);
    }

    #[test]
    fn privhp_uses_less_memory_than_pmm() {
        let data = data_1d(1 << 13, 4);
        let hp = run_method_1d(Method::PrivHp { k: 8 }, 1.0, &data, 5);
        let pmm = run_method_1d(Method::Pmm, 1.0, &data, 5);
        assert!(
            hp.memory_words * 2 < pmm.memory_words,
            "PrivHP {} words vs PMM {} words",
            hp.memory_words,
            pmm.memory_words
        );
    }

    #[test]
    fn methods_run_2d() {
        let mut rng = DeterministicRng::seed_from_u64(6);
        let data: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(800, &mut rng);
        for m in [Method::PrivHp { k: 8 }, Method::Pmm, Method::Uniform] {
            let out = run_method_nd(m, 1.0, &data, 2, 8, 77);
            assert!(out.w1.is_finite() && out.w1 >= 0.0);
        }
    }
}
