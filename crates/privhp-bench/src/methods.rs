//! The method registry: a uniform "build + evaluate" interface over PrivHP
//! and every baseline, so experiment binaries sweep
//! "method × workload × parameters" without per-method plumbing.
//!
//! Layering:
//!
//! * [`Method`] is the *identifier* an experiment sweeps over (pure data,
//!   serialisable into result rows);
//! * [`MethodRegistry`] maps each identifier to a [`MethodEntry`] holding
//!   its dimensionality support and a build closure that turns
//!   `(domain, ε, data, seed)` into a boxed
//!   [`privhp_core::Generator`] — the one place construction knowledge
//!   lives;
//! * evaluation is method-agnostic: tree-based generators are scored
//!   exactly in 1-D ([`crate::eval::w1_generator_1d`]), everything else
//!   from samples. No `match` over methods anywhere downstream.
//!
//! Adding a method is now a one-file change: implement `Generator`, add a
//! `Method` variant and one `register` call in [`MethodRegistry::standard`]
//! — every experiment binary, the smoke tests, and the reports pick it up.

use privhp_baselines::{
    BoundedQuantiles, NonPrivateHistogram, Pmm, PrivTree, Srrw, UniformBaseline,
};
use privhp_core::{DimSupport, Generator, PrivHp, PrivHpConfig};
use privhp_domain::{HierarchicalDomain, Hypercube, UnitInterval};
use privhp_dp::rng::DeterministicRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// The methods compared in the Table-1 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// The paper's contribution, with the given pruning parameter `k`.
    PrivHp {
        /// Pruning parameter.
        k: usize,
    },
    /// He et al.'s PMM (full hierarchy, optimal split).
    Pmm,
    /// SRRW-style dyadic baseline (full hierarchy, uniform split).
    Srrw,
    /// Data-independent uniform sampling.
    Uniform,
    /// Non-private exact histogram (ε = ∞ skyline).
    NonPrivate,
    /// PrivTree (Zhang et al.): static adaptive decomposition, needs full
    /// data access (1-D runs only).
    PrivTree,
    /// Bounded-space private quantiles (Alabi et al.; 1-D, fixed grid).
    Quantiles,
}

impl Method {
    /// Short display name for tables.
    pub fn name(&self) -> String {
        match self {
            Method::PrivHp { k } => format!("PrivHP(k={k})"),
            _ => self.key().into(),
        }
    }

    /// Every method family in canonical Table-1 order, with PrivHP expanded
    /// over the given pruning parameters. Filter through
    /// [`MethodRegistry::suite`] to respect a domain's dimensionality.
    pub fn all(privhp_ks: &[usize]) -> Vec<Method> {
        let mut out: Vec<Method> = privhp_ks.iter().map(|&k| Method::PrivHp { k }).collect();
        out.extend([
            Method::Pmm,
            Method::Srrw,
            Method::PrivTree,
            Method::Quantiles,
            Method::Uniform,
            Method::NonPrivate,
        ]);
        out
    }

    /// Registry key: the method family, ignoring parameters like `k`.
    pub fn key(&self) -> &'static str {
        match self {
            Method::PrivHp { .. } => "PrivHP",
            Method::Pmm => "PMM",
            Method::Srrw => "SRRW",
            Method::Uniform => "Uniform",
            Method::NonPrivate => "NonPrivate",
            Method::PrivTree => "PrivTree",
            Method::Quantiles => "Quantiles",
        }
    }
}

/// Everything a build closure may depend on besides the domain and data.
#[derive(Debug, Clone, Copy)]
pub struct BuildContext {
    /// The method identifier being built (parameters like `k` live here).
    pub method: Method,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Trial seed; closures derive sub-seeds from it.
    pub seed: u64,
    /// Dimension of the target domain (drives depth heuristics).
    pub dim: usize,
}

impl BuildContext {
    /// Depth heuristic shared by the full-hierarchy comparators: deep
    /// enough to resolve `n` (or `εn`) cells, clamped so dense trees stay
    /// affordable (1-D affords two extra levels over `d ≥ 2`).
    fn clamp_depth(&self, raw: f64) -> usize {
        let cap = if self.dim == 1 { 18 } else { 16 };
        (raw.max(2.0).log2().ceil() as usize).clamp(1, cap)
    }
}

/// Builds one method over a stream; the registry stores one per method.
pub type BuildFn<D> = Box<
    dyn Fn(
            &D,
            &BuildContext,
            &[<D as HierarchicalDomain>::Point],
            &mut dyn RngCore,
        ) -> Box<dyn Generator<D>>
        + Send
        + Sync,
>;

/// One registered method: identity, dimensionality support, build recipe.
pub struct MethodEntry<D: HierarchicalDomain> {
    key: &'static str,
    dims: DimSupport,
    build: BuildFn<D>,
}

impl<D: HierarchicalDomain> MethodEntry<D> {
    /// Registry key of the method family.
    pub fn key(&self) -> &'static str {
        self.key
    }

    /// Dimensionality support of the method.
    pub fn dims(&self) -> DimSupport {
        self.dims
    }

    /// Builds the generator for one trial.
    pub fn build(
        &self,
        domain: &D,
        ctx: &BuildContext,
        data: &[D::Point],
        rng: &mut dyn RngCore,
    ) -> Box<dyn Generator<D>> {
        (self.build)(domain, ctx, data, rng)
    }
}

/// The registry: every method family buildable over domain `D`.
pub struct MethodRegistry<D: HierarchicalDomain> {
    entries: Vec<MethodEntry<D>>,
}

impl<D> MethodRegistry<D>
where
    D: HierarchicalDomain + Clone + 'static,
    D::Point: Clone + 'static,
{
    /// An empty registry (for bespoke experiment setups).
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Registers a method; replaces any existing entry with the same key,
    /// so callers can override standard recipes.
    pub fn register(&mut self, key: &'static str, dims: DimSupport, build: BuildFn<D>) {
        self.entries.retain(|e| e.key != key);
        self.entries.push(MethodEntry { key, dims, build });
    }

    /// Looks up the entry for a method.
    pub fn entry(&self, method: Method) -> Option<&MethodEntry<D>> {
        self.entries.iter().find(|e| e.key == method.key())
    }

    /// Iterates over all registered entries, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &MethodEntry<D>> {
        self.entries.iter()
    }

    /// The comparison suite this registry can build for a `dim`-dimensional
    /// domain, in canonical order: every registered method whose
    /// [`DimSupport`] covers `dim`, with PrivHP expanded over `privhp_ks`.
    pub fn suite(&self, dim: usize, privhp_ks: &[usize]) -> Vec<Method> {
        Method::all(privhp_ks)
            .into_iter()
            .filter(|m| self.entry(*m).is_some_and(|e| e.dims().supports(dim)))
            .collect()
    }

    /// The standard six domain-generic methods (everything except the 1-D
    /// bounded-quantile baseline, which [`MethodRegistry::standard_1d`]
    /// adds for the unit interval).
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(
            "PrivHP",
            DimSupport::Any,
            Box::new(|domain, ctx, data, rng| {
                let Method::PrivHp { k } = ctx.method else {
                    panic!("PrivHP entry built with mismatched method {:?}", ctx.method)
                };
                let config =
                    PrivHpConfig::for_domain(ctx.epsilon, data.len(), k).with_seed(ctx.seed ^ 0xA5);
                let mut rng = rng;
                Box::new(
                    PrivHp::build(domain, config, data.iter().cloned(), &mut rng)
                        .expect("valid config"),
                )
            }),
        );
        reg.register(
            "PMM",
            DimSupport::Any,
            Box::new(|domain, ctx, data, rng| {
                let mut rng = rng;
                Box::new(Pmm::build(domain, ctx.epsilon, data, &mut rng))
            }),
        );
        reg.register(
            "SRRW",
            DimSupport::Any,
            Box::new(|domain, ctx, data, rng| {
                let mut rng = rng;
                Box::new(Srrw::build(domain, ctx.epsilon, data, &mut rng))
            }),
        );
        reg.register(
            "Uniform",
            DimSupport::Any,
            Box::new(|domain, _ctx, _data, _rng| Box::new(UniformBaseline::new(domain))),
        );
        reg.register(
            "NonPrivate",
            DimSupport::Any,
            Box::new(|domain, ctx, data, _rng| {
                let depth = ctx.clamp_depth(data.len().max(2) as f64);
                Box::new(NonPrivateHistogram::build(domain, depth, data))
            }),
        );
        // PrivTree builds for any domain, but the experiments follow its
        // paper and the `Method::PrivTree` docs in running it 1-D only.
        reg.register(
            "PrivTree",
            DimSupport::OneDimOnly,
            Box::new(|domain, ctx, data, rng| {
                let depth = ctx.clamp_depth(ctx.epsilon * data.len().max(2) as f64);
                let mut rng = rng;
                Box::new(PrivTree::build(domain, ctx.epsilon, depth, data, &mut rng))
            }),
        );
        reg
    }
}

impl<D> Default for MethodRegistry<D>
where
    D: HierarchicalDomain + Clone + 'static,
    D::Point: Clone + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl MethodRegistry<UnitInterval> {
    /// The full 1-D suite: the six standard methods plus bounded quantiles.
    pub fn standard_1d() -> Self {
        let mut reg = Self::standard();
        reg.register(
            "Quantiles",
            DimSupport::OneDimOnly,
            Box::new(|_domain, ctx, data, rng| {
                let grid_bits = ((data.len().max(2) as f64).log2().ceil() as usize).clamp(2, 12);
                let mut rng = rng;
                Box::new(BoundedQuantiles::build(ctx.epsilon, grid_bits, data, &mut rng))
            }),
        );
        reg
    }
}

/// Result of building + evaluating a method on one trial.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Measured `W1` distance to the empirical input distribution.
    pub w1: f64,
    /// Memory retained by the summary, in 8-byte words.
    pub memory_words: usize,
    /// Wall-clock build time in seconds (stream pass + release).
    pub build_seconds: f64,
}

fn registry_1d() -> &'static MethodRegistry<UnitInterval> {
    static REGISTRY: std::sync::OnceLock<MethodRegistry<UnitInterval>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(MethodRegistry::standard_1d)
}

fn registry_nd() -> &'static MethodRegistry<Hypercube> {
    static REGISTRY: std::sync::OnceLock<MethodRegistry<Hypercube>> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(MethodRegistry::standard)
}

/// Builds `method` over 1-D `data` through the registry and returns its
/// `W1` (exact for tree-based generators) and memory.
pub fn run_method_1d(method: Method, epsilon: f64, data: &[f64], seed: u64) -> TrialOutcome {
    let domain = UnitInterval::new();
    let registry = registry_1d();
    let entry =
        registry.entry(method).unwrap_or_else(|| panic!("method {} not registered", method.name()));
    let ctx = BuildContext { method, epsilon, seed, dim: 1 };
    let mut rng = DeterministicRng::seed_from_u64(seed);

    let start = std::time::Instant::now();
    let generator = entry.build(&domain, &ctx, data, &mut rng);
    let build_seconds = start.elapsed().as_secs_f64();

    let w1 = match generator.tree() {
        Some(tree) => crate::eval::w1_generator_1d(data, tree, &domain),
        None => {
            // Sample-based fallback for non-tree generators, with an
            // independent sampling stream so evaluation noise cannot
            // correlate with build noise.
            let mut sample_rng = DeterministicRng::seed_from_u64(seed ^ 0x51);
            let synthetic = generator.sample_many_points(4 * data.len(), &mut sample_rng);
            privhp_metrics::wasserstein1d::w1_exact_1d(data, &synthetic)
        }
    };
    TrialOutcome { w1, memory_words: generator.memory_words(), build_seconds }
}

/// Builds `method` over `d`-dimensional data through the registry and
/// returns tree-`W1` (evaluated at `eval_depth` levels with `4×` synthetic
/// oversampling, clamped to `[1k, 40k]` samples) and memory.
pub fn run_method_nd(
    method: Method,
    epsilon: f64,
    data: &[Vec<f64>],
    dim: usize,
    eval_depth: usize,
    seed: u64,
) -> TrialOutcome {
    let cube = Hypercube::new(dim);
    let registry = registry_nd();
    let entry = registry.entry(method).unwrap_or_else(|| {
        panic!("method {} is not available for d = {dim} (1-D only)", method.name())
    });
    assert!(entry.dims().supports(dim), "{} does not support d = {dim} (1-D only)", method.name());
    let ctx = BuildContext { method, epsilon, seed, dim };
    let mut rng = DeterministicRng::seed_from_u64(seed);
    let synthetic_n = (4 * data.len()).clamp(1_000, 40_000);

    let start = std::time::Instant::now();
    let generator = entry.build(&cube, &ctx, data, &mut rng);
    let build_seconds = start.elapsed().as_secs_f64();

    let w1 = crate::eval::tree_w1_generator_nd(
        &cube,
        data,
        &*generator,
        synthetic_n,
        eval_depth,
        &mut rng,
    );
    TrialOutcome { w1, memory_words: generator.memory_words(), build_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_workloads::{GaussianMixture, Workload};

    fn data_1d(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        GaussianMixture::three_modes(1).generate(n, &mut rng)
    }

    #[test]
    fn all_methods_run_1d() {
        let data = data_1d(1_000, 1);
        for m in [
            Method::PrivHp { k: 8 },
            Method::Pmm,
            Method::Srrw,
            Method::Uniform,
            Method::NonPrivate,
            Method::PrivTree,
            Method::Quantiles,
        ] {
            let out = run_method_1d(m, 1.0, &data, 42);
            assert!(out.w1.is_finite() && out.w1 >= 0.0, "{}: W1 {}", m.name(), out.w1);
            assert!(out.memory_words >= 1);
        }
    }

    #[test]
    fn registry_covers_every_method_exactly_once() {
        let reg = MethodRegistry::standard_1d();
        let keys: Vec<&str> = reg.entries().map(|e| e.key()).collect();
        for m in [
            Method::PrivHp { k: 8 },
            Method::Pmm,
            Method::Srrw,
            Method::Uniform,
            Method::NonPrivate,
            Method::PrivTree,
            Method::Quantiles,
        ] {
            assert_eq!(
                keys.iter().filter(|k| **k == m.key()).count(),
                1,
                "{} registered exactly once",
                m.key()
            );
        }
    }

    #[test]
    fn register_replaces_existing_entry() {
        let mut reg = MethodRegistry::<UnitInterval>::standard_1d();
        let before = reg.entries().count();
        reg.register(
            "Uniform",
            DimSupport::Any,
            Box::new(|domain, _ctx, _data, _rng| {
                Box::new(privhp_baselines::UniformBaseline::new(domain))
            }),
        );
        assert_eq!(reg.entries().count(), before, "replacement must not duplicate");
    }

    #[test]
    fn generator_names_match_method_names() {
        let data = data_1d(400, 9);
        let domain = UnitInterval::new();
        let reg = MethodRegistry::standard_1d();
        for m in [Method::Pmm, Method::Uniform, Method::Quantiles, Method::PrivTree] {
            let ctx = BuildContext { method: m, epsilon: 1.0, seed: 7, dim: 1 };
            let mut rng = DeterministicRng::seed_from_u64(7);
            let g = reg.entry(m).unwrap().build(&domain, &ctx, &data, &mut rng);
            assert_eq!(g.name(), m.name());
        }
    }

    #[test]
    fn suite_respects_dimensionality() {
        let one_d = MethodRegistry::<UnitInterval>::standard_1d().suite(1, &[8, 32]);
        assert_eq!(
            one_d,
            vec![
                Method::PrivHp { k: 8 },
                Method::PrivHp { k: 32 },
                Method::Pmm,
                Method::Srrw,
                Method::PrivTree,
                Method::Quantiles,
                Method::Uniform,
                Method::NonPrivate,
            ]
        );
        let two_d = MethodRegistry::<Hypercube>::standard().suite(2, &[8]);
        assert!(!two_d.contains(&Method::Quantiles), "quantiles are 1-D only");
        assert!(!two_d.contains(&Method::PrivTree), "PrivTree runs 1-D only");
        assert!(two_d.contains(&Method::Pmm));
    }

    #[test]
    fn nonprivate_beats_uniform_on_skewed_data() {
        let data = data_1d(2_000, 2);
        let np = run_method_1d(Method::NonPrivate, 1.0, &data, 3);
        let un = run_method_1d(Method::Uniform, 1.0, &data, 3);
        assert!(np.w1 < un.w1, "skyline {} must beat uniform {}", np.w1, un.w1);
    }

    #[test]
    fn privhp_uses_less_memory_than_pmm() {
        let data = data_1d(1 << 13, 4);
        let hp = run_method_1d(Method::PrivHp { k: 8 }, 1.0, &data, 5);
        let pmm = run_method_1d(Method::Pmm, 1.0, &data, 5);
        assert!(
            hp.memory_words * 2 < pmm.memory_words,
            "PrivHP {} words vs PMM {} words",
            hp.memory_words,
            pmm.memory_words
        );
    }

    #[test]
    fn methods_run_2d() {
        let mut rng = DeterministicRng::seed_from_u64(6);
        let data: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(800, &mut rng);
        for m in [Method::PrivHp { k: 8 }, Method::Pmm, Method::Uniform] {
            let out = run_method_nd(m, 1.0, &data, 2, 8, 77);
            assert!(out.w1.is_finite() && out.w1 >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "1-D only")]
    fn quantiles_rejected_above_1d() {
        let data = vec![vec![0.5, 0.5]; 64];
        let _ = run_method_nd(Method::Quantiles, 1.0, &data, 2, 4, 1);
    }
}
