#![warn(missing_docs)]

//! Experiment harness shared by every `exp_*` binary and criterion bench.
//!
//! The harness regenerates the paper's tables and figures (the per-
//! experiment index lives in DESIGN.md §4; measured-vs-paper records go to
//! EXPERIMENTS.md). Design principles:
//!
//! * **No estimator noise where avoidable** — in 1-D the distance between
//!   the data and a tree generator is computed *exactly* against the
//!   piecewise-uniform leaf density ([`eval::w1_generator_1d`]); Monte-Carlo
//!   sampling is only used where unavoidable (`d ≥ 2`, via tree-`W1`);
//! * **Deterministic** — every trial derives its RNG from
//!   `(experiment seed, trial index)`;
//! * **Parallel** — trials fan out over threads with `crossbeam::scope`
//!   ([`runner::run_trials`]), since `E[W1]` needs dozens of independent
//!   runs per configuration;
//! * **Recorded** — [`report`] prints aligned tables and appends JSON rows
//!   under `bench_results/`.

pub mod eval;
pub mod methods;
pub mod report;
pub mod runner;

/// Default number of independent trials used when estimating `E[W1]`.
pub const DEFAULT_TRIALS: usize = 24;

/// Trial count, overridable with `PRIVHP_TRIALS` (floor 2) so constrained
/// machines can regenerate the tables at reduced statistical resolution.
pub fn trials_from_env() -> usize {
    std::env::var("PRIVHP_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|t| t.max(2))
        .unwrap_or(DEFAULT_TRIALS)
}
