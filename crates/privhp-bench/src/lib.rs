#![warn(missing_docs)]

//! Experiment harness shared by every `exp_*` binary and criterion bench.
//!
//! The harness regenerates the paper's tables and figures (the per-
//! experiment index lives in DESIGN.md §4; measured-vs-paper records go to
//! EXPERIMENTS.md). Design principles:
//!
//! * **No estimator noise where avoidable** — in 1-D the distance between
//!   the data and a tree generator is computed *exactly* against the
//!   piecewise-uniform leaf density ([`eval::w1_generator_1d`]); Monte-Carlo
//!   sampling is only used where unavoidable (`d ≥ 2`, via tree-`W1`);
//! * **Deterministic** — every (cell, trial) seed comes from one
//!   splitmix64-style mixer ([`sweep::trial_seed`]), collision-free within a
//!   sweep and independent of scheduling;
//! * **Scheduled** — experiments declare their (method × workload ×
//!   parameter) grids as [`sweep::Sweep`]s; the engine flattens every
//!   (cell × trial) task into one queue drained by a process-wide pool
//!   ([`sweep::run_sweeps`]), so whole suites (`exp_all`) interleave their
//!   cells instead of running sweep-by-sweep;
//! * **Recorded** — [`report`] prints aligned tables and writes one JSON
//!   document per sweep (experiment, cell params, summaries, timings) under
//!   `bench_results/`.

pub mod eval;
pub mod experiments;
pub mod methods;
pub mod report;
pub mod runner;
pub mod sweep;

/// Default number of independent trials used when estimating `E[W1]`.
pub const DEFAULT_TRIALS: usize = 24;

/// Trial count, overridable with `PRIVHP_TRIALS` (floor 2) so constrained
/// machines can regenerate the tables at reduced statistical resolution.
/// (`PRIVHP_THREADS` similarly overrides the pool size — see
/// [`runner::default_threads`].)
pub fn trials_from_env() -> usize {
    trials_from_env_or(DEFAULT_TRIALS)
}

/// `PRIVHP_TRIALS` (floor 2) with a caller-chosen default — the one place
/// the env-var contract lives (smoke scale uses a default of 2).
pub fn trials_from_env_or(default: usize) -> usize {
    std::env::var("PRIVHP_TRIALS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|t| t.max(2))
        .unwrap_or(default)
}
