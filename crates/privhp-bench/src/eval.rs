//! Utility evaluation for built generators.
//!
//! In 1-D a partition tree *is* a piecewise-uniform density over its
//! leaves, so `W1(μ_X, 𝒯)` is computed exactly (no sampling). For `d ≥ 2`
//! we use the hierarchical tree-`W1` between the data and a large synthetic
//! sample — the metric the paper's own proofs bound.

use privhp_core::tree::PartitionTree;
use privhp_domain::{Hypercube, UnitInterval};
use privhp_metrics::tree_wasserstein::tree_w1_between_samples;
use privhp_metrics::wasserstein1d::{w1_sample_vs_segments, Segment};
use rand::RngCore;

/// Converts a consistent partition tree over `[0,1]` into piecewise-uniform
/// segments (one per leaf, mass = leaf count; zero-mass leaves dropped).
pub fn tree_to_segments(tree: &PartitionTree, domain: &UnitInterval) -> Vec<Segment> {
    let root = tree.root_count().unwrap_or(0.0);
    let mut segments = Vec::new();
    for leaf in tree.leaves() {
        let mass = tree.count_unchecked(&leaf).max(0.0);
        if mass > 0.0 {
            let (lo, hi) = domain.cell_bounds(&leaf);
            segments.push(Segment { lo, hi, mass });
        }
    }
    if segments.is_empty() {
        // Degenerate (all-zero) release: the sampler falls back to uniform
        // over leaf cells; represent that as the uniform density.
        segments.push(Segment { lo: 0.0, hi: 1.0, mass: 1.0 });
    }
    let _ = root;
    segments
}

/// Exact `W1` between a 1-D dataset and the distribution encoded by a
/// consistent partition tree.
pub fn w1_generator_1d(data: &[f64], tree: &PartitionTree, domain: &UnitInterval) -> f64 {
    w1_sample_vs_segments(data, &tree_to_segments(tree, domain))
}

/// Tree-`W1` between a `d`-dimensional dataset and `synthetic_n` samples
/// drawn from a generator closure, evaluated to `depth` levels.
pub fn tree_w1_generator_nd<R, F>(
    cube: &Hypercube,
    data: &[Vec<f64>],
    mut draw: F,
    synthetic_n: usize,
    depth: usize,
    rng: &mut R,
) -> f64
where
    R: RngCore,
    F: FnMut(&mut R) -> Vec<f64>,
{
    let synthetic: Vec<Vec<f64>> = (0..synthetic_n).map(|_| draw(rng)).collect();
    tree_w1_between_samples(cube, data, &synthetic, depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::Path;

    fn leaf_tree() -> PartitionTree {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 8.0);
        t.insert(r.right(), 2.0);
        t
    }

    #[test]
    fn segments_cover_leaves() {
        let t = leaf_tree();
        let segs = tree_to_segments(&t, &UnitInterval::new());
        assert_eq!(segs.len(), 2);
        assert!((segs[0].mass + segs[1].mass - 10.0).abs() < 1e-12);
    }

    #[test]
    fn w1_zero_when_data_matches_tree() {
        // Tree: 80% on [0,0.5), 20% on [0.5,1). Data drawn as the exact
        // quantiles of that density.
        let t = leaf_tree();
        let mut data = Vec::new();
        for i in 0..800 {
            data.push(0.5 * (i as f64 + 0.5) / 800.0);
        }
        for i in 0..200 {
            data.push(0.5 + 0.5 * (i as f64 + 0.5) / 200.0);
        }
        let d = w1_generator_1d(&data, &t, &UnitInterval::new());
        assert!(d < 2e-3, "matching data should score ~0, got {d}");
    }

    #[test]
    fn w1_detects_mismatch() {
        let t = leaf_tree();
        let data = vec![0.9; 100]; // all mass on the light side
        let d = w1_generator_1d(&data, &t, &UnitInterval::new());
        assert!(d > 0.3, "gross mismatch must score high, got {d}");
    }

    #[test]
    fn empty_tree_degenerates_to_uniform() {
        let mut t = PartitionTree::new();
        t.insert(Path::root(), 0.0);
        let segs = tree_to_segments(&t, &UnitInterval::new());
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].lo, segs[0].hi), (0.0, 1.0));
    }

    #[test]
    fn uniform_reference_value() {
        // W1(point mass at 0.5, uniform) = 1/4, via the same root-only tree
        // the Uniform baseline exposes to the evaluator.
        let mut t = PartitionTree::new();
        t.insert(Path::root(), 1.0);
        let d = w1_generator_1d(&[0.5], &t, &UnitInterval::new());
        assert!((d - 0.25).abs() < 1e-9);
    }
}
