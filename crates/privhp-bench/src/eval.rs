//! Utility evaluation for built generators.
//!
//! In 1-D a partition tree *is* a piecewise-uniform density over its
//! leaves, so `W1(μ_X, 𝒯)` is computed exactly (no sampling). For `d ≥ 2`
//! we use the hierarchical tree-`W1` between the data and a large synthetic
//! sample — the metric the paper's own proofs bound.

use privhp_core::tree::PartitionTree;
use privhp_core::Generator;
use privhp_domain::{HierarchicalDomain, Hypercube, UnitInterval};
use privhp_metrics::tree_wasserstein::{level_masses, tree_w1_from_masses};
use privhp_metrics::wasserstein1d::{w1_sample_vs_segments, Segment};
use rand::RngCore;

/// Converts a consistent partition tree over `[0,1]` into piecewise-uniform
/// segments (one per leaf, mass = leaf count; zero-mass leaves dropped).
pub fn tree_to_segments(tree: &PartitionTree, domain: &UnitInterval) -> Vec<Segment> {
    let root = tree.root_count().unwrap_or(0.0);
    let mut segments = Vec::new();
    for leaf in tree.leaves() {
        let mass = tree.count_unchecked(&leaf).max(0.0);
        if mass > 0.0 {
            let (lo, hi) = domain.cell_bounds(&leaf);
            segments.push(Segment { lo, hi, mass });
        }
    }
    if segments.is_empty() {
        // Degenerate (all-zero) release: the sampler falls back to uniform
        // over leaf cells; represent that as the uniform density.
        segments.push(Segment { lo: 0.0, hi: 1.0, mass: 1.0 });
    }
    let _ = root;
    segments
}

/// Exact `W1` between a 1-D dataset and the distribution encoded by a
/// consistent partition tree.
pub fn w1_generator_1d(data: &[f64], tree: &PartitionTree, domain: &UnitInterval) -> f64 {
    w1_sample_vs_segments(data, &tree_to_segments(tree, domain))
}

/// Tree-`W1` between a `d`-dimensional dataset and `synthetic_n` samples
/// drawn from a generator, evaluated to `depth` levels.
///
/// The synthetic side is drawn through [`Generator::sample_many_into`]
/// into one flat row-major lane buffer and histogrammed in place, so the
/// evaluation never materialises `synthetic_n` per-point `Vec`s.
pub fn tree_w1_generator_nd<R: RngCore>(
    cube: &Hypercube,
    data: &[Vec<f64>],
    generator: &dyn Generator<Hypercube>,
    synthetic_n: usize,
    depth: usize,
    rng: &mut R,
) -> f64 {
    let mut flat = Vec::with_capacity(synthetic_n * generator.point_lanes());
    generator.sample_many_into(synthetic_n, rng, &mut flat);
    let mu = level_masses(cube, data, depth);
    let nu = level_masses_flat(cube, &flat, depth);
    let gammas: Vec<f64> = (0..=depth).map(|l| cube.level_diameter(l)).collect();
    tree_w1_from_masses(&mu, &nu, &gammas)
}

/// Dense per-level mass vectors for a flat row-major lane buffer — the
/// counterpart of [`level_masses`] for batch-sampled synthetic data. One
/// scratch point is reused across rows; no per-point allocation.
fn level_masses_flat(cube: &Hypercube, flat: &[f64], depth: usize) -> Vec<Vec<f64>> {
    let dim = cube.dim();
    assert!(!flat.is_empty() && flat.len().is_multiple_of(dim), "flat buffer must hold whole rows");
    assert!(depth <= 24, "dense level masses limited to depth 24");
    let n = flat.len() / dim;
    let mut out: Vec<Vec<f64>> = (0..=depth).map(|l| vec![0.0; 1usize << l]).collect();
    let w = 1.0 / n as f64;
    let mut point = vec![0.0; dim];
    for row in flat.chunks_exact(dim) {
        point.copy_from_slice(row);
        let deep = cube.locate(&point, depth);
        for (l, level_row) in out.iter_mut().enumerate() {
            level_row[deep.ancestor(l).bits() as usize] += w;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::Path;

    fn leaf_tree() -> PartitionTree {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 8.0);
        t.insert(r.right(), 2.0);
        t
    }

    #[test]
    fn segments_cover_leaves() {
        let t = leaf_tree();
        let segs = tree_to_segments(&t, &UnitInterval::new());
        assert_eq!(segs.len(), 2);
        assert!((segs[0].mass + segs[1].mass - 10.0).abs() < 1e-12);
    }

    #[test]
    fn w1_zero_when_data_matches_tree() {
        // Tree: 80% on [0,0.5), 20% on [0.5,1). Data drawn as the exact
        // quantiles of that density.
        let t = leaf_tree();
        let mut data = Vec::new();
        for i in 0..800 {
            data.push(0.5 * (i as f64 + 0.5) / 800.0);
        }
        for i in 0..200 {
            data.push(0.5 + 0.5 * (i as f64 + 0.5) / 200.0);
        }
        let d = w1_generator_1d(&data, &t, &UnitInterval::new());
        assert!(d < 2e-3, "matching data should score ~0, got {d}");
    }

    #[test]
    fn w1_detects_mismatch() {
        let t = leaf_tree();
        let data = vec![0.9; 100]; // all mass on the light side
        let d = w1_generator_1d(&data, &t, &UnitInterval::new());
        assert!(d > 0.3, "gross mismatch must score high, got {d}");
    }

    #[test]
    fn empty_tree_degenerates_to_uniform() {
        let mut t = PartitionTree::new();
        t.insert(Path::root(), 0.0);
        let segs = tree_to_segments(&t, &UnitInterval::new());
        assert_eq!(segs.len(), 1);
        assert_eq!((segs[0].lo, segs[0].hi), (0.0, 1.0));
    }

    #[test]
    fn flat_level_masses_match_pointwise_histogram() {
        let cube = Hypercube::new(2);
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![((i * 37) % 64) as f64 / 64.0, ((i * 53 + 11) % 64) as f64 / 64.0])
            .collect();
        let flat: Vec<f64> = pts.iter().flat_map(|p| p.iter().copied()).collect();
        let reference = level_masses(&cube, &pts, 8);
        let batched = level_masses_flat(&cube, &flat, 8);
        assert_eq!(reference, batched);
    }

    #[test]
    fn uniform_reference_value() {
        // W1(point mass at 0.5, uniform) = 1/4, via the same root-only tree
        // the Uniform baseline exposes to the evaluator.
        let mut t = PartitionTree::new();
        t.insert(Path::root(), 1.0);
        let d = w1_generator_1d(&[0.5], &t, &UnitInterval::new());
        assert!((d - 0.25).abs() < 1e-9);
    }
}
