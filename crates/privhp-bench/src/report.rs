//! Table printing and JSON result recording.
//!
//! Every experiment binary prints an aligned text table (the "row/series
//! the paper reports") and appends machine-readable JSON to
//! `bench_results/<experiment>.json` so EXPERIMENTS.md can quote exact
//! numbers.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{c:<w$} | ", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push_str(&format!(
            "|{}\n",
            widths.iter().map(|w| "-".repeat(w + 2) + "|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where JSON results are written: `PRIVHP_RESULTS_DIR` if set,
/// else `bench_results/` anchored at the workspace root (found by walking up
/// from this crate's manifest dir to the first ancestor with a
/// `Cargo.lock`), so results land in one place no matter which directory a
/// binary runs from.
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("PRIVHP_RESULTS_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => {
            let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            while !root.join("Cargo.lock").exists() {
                if !root.pop() {
                    // Detached from the build tree (e.g. a copied binary):
                    // fall back to the invocation directory.
                    root = PathBuf::from(".");
                    break;
                }
            }
            root.join("bench_results")
        }
    };
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Serialises `rows` as pretty JSON to `bench_results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(rows).expect("serialisable rows");
            if let Err(e) = f.write_all(json.as_bytes()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

/// Writes a [`crate::sweep::SweepResult`] as `bench_results/<experiment>.json`
/// — the unified per-sweep schema (`experiment`, cell params, per-metric
/// `Summary`, wall/CPU timing), one document per sweep, so `bench_results/`
/// is machine-diffable across PRs.
pub fn write_sweep_json(result: &crate::sweep::SweepResult) {
    write_json(&result.experiment, result);
}

/// Merges per-shard sweep documents (the [`write_sweep_json`] schema) of
/// **one experiment**, produced by `exp_all --shard I/K` invocations on
/// different machines, into a single document equivalent to the unsharded
/// run: cell lists concatenate in the order given (each cell ran on
/// exactly one shard, so labels must be disjoint), `threads` reports the
/// maximum, and `wall_seconds` the maximum (shards run concurrently on
/// separate machines).
pub fn merge_sweep_json(docs: &[serde::Value]) -> Result<serde::Value, String> {
    use serde::Value;
    let first = docs.first().ok_or("merge_sweep_json needs at least one document")?;
    let experiment = first
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or("shard document has no `experiment` field")?
        .to_string();

    let mut cells: Vec<Value> = Vec::new();
    let mut labels = std::collections::HashSet::new();
    let mut threads = 0i64;
    let mut wall = 0.0f64;
    for doc in docs {
        let doc_exp = doc.get("experiment").and_then(Value::as_str).unwrap_or_default();
        if doc_exp != experiment {
            return Err(format!(
                "cannot merge shard documents of different experiments: `{experiment}` vs `{doc_exp}`"
            ));
        }
        threads = threads.max(doc.get("threads").and_then(Value::as_i64).unwrap_or(0));
        wall = wall.max(doc.get("wall_seconds").and_then(Value::as_f64).unwrap_or(0.0));
        let shard_cells = doc
            .get("cells")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("shard document of `{experiment}` has no `cells` array"))?;
        for cell in shard_cells {
            let label = cell.get("label").and_then(Value::as_str).unwrap_or_default();
            if !labels.insert(label.to_string()) {
                return Err(format!(
                    "cell `{label}` of `{experiment}` appears in more than one shard"
                ));
            }
            cells.push(cell.clone());
        }
    }
    Ok(Value::Object(vec![
        ("experiment".into(), Value::String(experiment)),
        ("threads".into(), Value::Int(threads)),
        ("wall_seconds".into(), Value::Float(wall)),
        ("cells".into(), Value::Array(cells)),
    ]))
}

/// Reduces a sweep to the flat perf-baseline schema and writes it to
/// `bench_results/BENCH_<experiment-stem>.json` (e.g. `exp_throughput` →
/// `BENCH_throughput.json`): `{"experiment", "cells": {label: {metric:
/// value}}}`. Rate metrics (`*_per_sec`) record the **best trial** — the
/// run least perturbed by scheduler/frequency noise, the standard robust
/// statistic for micro-benchmarks — while other metrics record the mean.
/// The flat shape is what [`assert_baseline`] diffs across PRs; the
/// committed reference copy lives under `bench_results/baseline/`.
pub fn write_baseline_json(result: &crate::sweep::SweepResult) {
    let stem = result.experiment.strip_prefix("exp_").unwrap_or(&result.experiment);
    write_json(&format!("BENCH_{stem}"), &RawValue(baseline_value(result)));
}

/// Serialises an already-lowered [`serde::Value`] document to
/// `bench_results/<name>.json` (e.g. a merged multi-shard sweep document).
pub fn write_value_json(name: &str, value: &serde::Value) {
    write_json(name, &RawValue(value.clone()));
}

/// Adapter: the vendored `serde::Value` does not implement `Serialize`
/// itself; this wrapper lets already-lowered documents flow through
/// [`write_json`].
struct RawValue(serde::Value);

impl Serialize for RawValue {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// The baseline document for a sweep, as a serialisable [`serde::Value`].
fn baseline_value(result: &crate::sweep::SweepResult) -> serde::Value {
    use serde::Value;
    let cells = result
        .cells
        .iter()
        .map(|c| {
            let metrics = c
                .metrics
                .iter()
                .map(|m| (m.to_string(), Value::Float(baseline_statistic(c, m))))
                .collect();
            (c.label.clone(), Value::Object(metrics))
        })
        .collect();
    Value::Object(vec![
        ("experiment".into(), Value::String(result.experiment.clone())),
        ("cells".into(), Value::Object(cells)),
    ])
}

/// The value a metric contributes to the baseline document: best trial
/// for rates, mean for everything else.
fn baseline_statistic(cell: &crate::sweep::CellResult, metric: &str) -> f64 {
    if metric.ends_with("_per_sec") {
        cell.metric_values(metric).into_iter().fold(f64::NEG_INFINITY, f64::max)
    } else {
        cell.summary(metric).mean
    }
}

/// Compares a fresh sweep against a stored baseline document (the
/// [`write_baseline_json`] schema). Rate metrics (named `*_per_sec`,
/// higher is better) *regress* when the new best trial falls below
/// `(1 - tolerance)` of the baseline value; other metrics (absolute
/// timings, memory) are recorded in the baseline but not asserted. Only
/// (cell, metric) pairs present in both documents are compared, so smoke-
/// and full-scale grids never cross-compare. Returns the list of
/// regression descriptions (empty = pass) or an error if the baseline
/// cannot be read or shares nothing with the sweep.
pub fn assert_baseline(
    result: &crate::sweep::SweepResult,
    baseline_path: &std::path::Path,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let body = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let doc: serde::Value = serde_json::parse_value_str(&body)
        .map_err(|e| format!("baseline {} is not valid JSON: {e}", baseline_path.display()))?;
    let cells = doc
        .get("cells")
        .ok_or_else(|| format!("baseline {} has no `cells` object", baseline_path.display()))?;

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for cell in &result.cells {
        let Some(base_cell) = cells.get(&cell.label) else { continue };
        for metric in &cell.metrics {
            if !metric.ends_with("_per_sec") {
                continue;
            }
            let Some(base) = base_cell.get(metric).and_then(serde::Value::as_f64) else {
                continue;
            };
            compared += 1;
            let new = baseline_statistic(cell, metric);
            if base > 0.0 && new < base * (1.0 - tolerance) {
                regressions.push(format!(
                    "{}/{metric}: {new:.0} vs baseline {base:.0} ({:+.1}%)",
                    cell.label,
                    (new / base - 1.0) * 100.0
                ));
            }
        }
    }
    if compared == 0 {
        return Err(format!(
            "baseline {} shares no (cell, metric) pairs with sweep `{}` — scales differ?",
            baseline_path.display(),
            result.experiment
        ));
    }
    Ok(regressions)
}

/// Formats a float with 5 significant decimals for table cells.
pub fn fmt(x: f64) -> String {
    format!("{x:.5}")
}

/// Formats a `mean ± se` cell.
pub fn fmt_pm(mean: f64, se: f64) -> String {
    format!("{mean:.5}±{se:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "w1"]);
        t.row(vec!["PrivHP".into(), "0.01".into()]);
        t.row(vec!["PMM".into(), "0.009".into()]);
        let r = t.render();
        assert!(r.contains("| method |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(0.123456789), "0.12346");
        assert!(fmt_pm(1.0, 0.1).contains('±'));
    }
}
