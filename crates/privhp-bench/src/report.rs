//! Table printing and JSON result recording.
//!
//! Every experiment binary prints an aligned text table (the "row/series
//! the paper reports") and appends machine-readable JSON to
//! `bench_results/<experiment>.json` so EXPERIMENTS.md can quote exact
//! numbers.

use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                s.push_str(&format!("{c:<w$} | ", w = w));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        out.push_str(&format!(
            "|{}\n",
            widths.iter().map(|w| "-".repeat(w + 2) + "|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory where JSON results are written: `PRIVHP_RESULTS_DIR` if set,
/// else `bench_results/` anchored at the workspace root (found by walking up
/// from this crate's manifest dir to the first ancestor with a
/// `Cargo.lock`), so results land in one place no matter which directory a
/// binary runs from.
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("PRIVHP_RESULTS_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => {
            let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            while !root.join("Cargo.lock").exists() {
                if !root.pop() {
                    // Detached from the build tree (e.g. a copied binary):
                    // fall back to the invocation directory.
                    root = PathBuf::from(".");
                    break;
                }
            }
            root.join("bench_results")
        }
    };
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Serialises `rows` as pretty JSON to `bench_results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(rows).expect("serialisable rows");
            if let Err(e) = f.write_all(json.as_bytes()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not create {}: {e}", path.display()),
    }
}

/// Writes a [`crate::sweep::SweepResult`] as `bench_results/<experiment>.json`
/// — the unified per-sweep schema (`experiment`, cell params, per-metric
/// `Summary`, wall/CPU timing), one document per sweep, so `bench_results/`
/// is machine-diffable across PRs.
pub fn write_sweep_json(result: &crate::sweep::SweepResult) {
    write_json(&result.experiment, result);
}

/// Formats a float with 5 significant decimals for table cells.
pub fn fmt(x: f64) -> String {
    format!("{x:.5}")
}

/// Formats a `mean ± se` cell.
pub fn fmt_pm(mean: f64, se: f64) -> String {
    format!("{mean:.5}±{se:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["method", "w1"]);
        t.row(vec!["PrivHP".into(), "0.01".into()]);
        t.row(vec!["PMM".into(), "0.009".into()]);
        let r = t.render();
        assert!(r.contains("| method |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(0.123456789), "0.12346");
        assert!(fmt_pm(1.0, 0.1).contains('±'));
    }
}
