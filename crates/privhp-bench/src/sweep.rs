//! The sweep engine: declarative (method × workload × parameter) grids
//! scheduled across one process-wide thread pool.
//!
//! Every `E[W1]` number the paper reports is an average over many trials of
//! many grid cells. [`crate::runner::run_trials`] parallelises the trials of
//! *one* cell; this module lifts the whole grid — and, via [`run_sweeps`],
//! the grids of *several experiments at once* — into a single work queue:
//!
//! * a [`Sweep`] is one experiment's grid: a named list of [`Cell`]s, each
//!   carrying a parameter map (for the JSON report), a trial count, metric
//!   names, and the task closure;
//! * seeds are assigned by a splitmix64-style mixer ([`trial_seed`]) over a
//!   per-sweep stream and the flat (cell, trial) index — bijective in the
//!   index, so seeds are collision-free within a sweep and independent of
//!   scheduling (results are identical for any thread count);
//! * [`run_sweeps`] flattens all (cell × trial) tasks into one queue drained
//!   by a shared pool of scoped threads. Each task writes its result into a
//!   distinct pre-allocated slot, so the result path is lock-free. Cells
//!   from different sweeps interleave freely: total wall-clock approaches
//!   the longest single chain instead of the sum of the sweeps;
//! * results come back as [`SweepResult`]s — per-cell metric [`Summary`]s
//!   plus wall/CPU timings — with one JSON document per sweep (see
//!   [`crate::report::write_sweep_json`]), so `bench_results/` is
//!   machine-diffable across PRs.

use privhp_dp::rng::mix64;
use privhp_metrics::stats::Summary;
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

// ---- seeding --------------------------------------------------------------

/// Derives a named seed stream from a label and parameter words.
///
/// Experiments use streams for *paired* randomness: two cells that must see
/// the same data draw per trial (e.g. every method at one grid point) derive
/// the workload seed from the same stream via [`trial_seed`] instead of the
/// engine-assigned per-cell seed.
pub fn seed_stream(label: &str, parts: &[u64]) -> u64 {
    // FNV-1a over the label, then splitmix64-fold the parameter words.
    let mut s: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        s ^= b as u64;
        s = s.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &p in parts {
        s = mix64(s ^ p);
    }
    mix64(s)
}

/// The `index`-th seed of a stream: splitmix64 finalisation of
/// `stream + index·γ` (γ the splitmix64 golden constant).
///
/// Every step is a bijection on `u64`, so for a fixed stream distinct
/// indices always yield distinct seeds — this is what replaces the ad-hoc
/// `BASE + trial*131 + (eps*1000)` seeding the experiment binaries used to
/// hand-roll (which could and did collide across grid cells).
pub fn trial_seed(stream: u64, index: u64) -> u64 {
    mix64(stream.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

// ---- declarative description ----------------------------------------------

/// What a task closure receives: its trial index and the engine-assigned
/// collision-free seed.
#[derive(Debug)]
pub struct TrialCtx {
    /// Trial index within the cell, `0..trials`.
    pub trial: usize,
    /// Total trials of the cell.
    pub trials: usize,
    /// Engine-assigned seed, unique across every (cell, trial) of the sweep
    /// and independent of scheduling.
    pub seed: u64,
    /// Microseconds this task spent blocked (not working) — subtracted from
    /// the cell's `cpu_seconds` billing. Fed by [`TrialCtx::shared_setup`].
    excluded_us: AtomicU64,
}

impl TrialCtx {
    fn new(trial: usize, trials: usize, seed: u64) -> Self {
        Self { trial, trials, seed, excluded_us: AtomicU64::new(0) }
    }

    /// Resolves a cell's shared lazy setup. Tasks racing the same
    /// `OnceLock` serialise on it; the task that actually runs `init` is
    /// billed for the work, while tasks that merely block waiting have the
    /// wait excluded from their cell's `cpu_seconds` (it is not CPU time).
    /// Wall-clock spans still include the wait.
    pub fn shared_setup<'a, T>(&self, slot: &'a OnceLock<T>, init: impl FnOnce() -> T) -> &'a T {
        if let Some(v) = slot.get() {
            return v;
        }
        let t0 = Instant::now();
        let mut built_here = false;
        let v = slot.get_or_init(|| {
            built_here = true;
            init()
        });
        if !built_here {
            self.excluded_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        }
        v
    }
}

/// A scalar cell parameter, recorded in the JSON report.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A floating-point parameter (ε, a Zipf exponent, …).
    Float(f64),
    /// An integral parameter (n, k, a depth, …).
    Int(i64),
    /// A categorical parameter (method or workload name, …).
    Str(String),
    /// A boolean parameter (an ablation toggle, …).
    Bool(bool),
}

impl ParamValue {
    /// Numeric view (integers widen losslessly for typical magnitudes).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            ParamValue::Float(f) => Some(f),
            ParamValue::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// Integral view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            ParamValue::Int(i) => Some(i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl Serialize for ParamValue {
    fn to_value(&self) -> Value {
        match self {
            ParamValue::Float(f) => Value::Float(*f),
            ParamValue::Int(i) => Value::Int(*i),
            ParamValue::Str(s) => Value::String(s.clone()),
            ParamValue::Bool(b) => Value::Bool(*b),
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Str(s) => write!(f, "{s}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// The task run once per trial of a cell; returns one value per declared
/// metric. Must be deterministic in the [`TrialCtx`].
pub type TaskFn = Box<dyn Fn(&TrialCtx) -> Vec<f64> + Send + Sync>;

/// One grid point of a sweep: identity (label + parameter map), trial
/// count, metric names, and the task closure.
pub struct Cell {
    label: String,
    params: Vec<(&'static str, ParamValue)>,
    trials: usize,
    metrics: Vec<&'static str>,
    exclusive: bool,
    run: TaskFn,
}

impl Cell {
    /// Creates a cell. `metrics` names the slots of the task's return
    /// vector; the task must return exactly one value per metric.
    pub fn new(
        label: impl Into<String>,
        trials: usize,
        metrics: &[&'static str],
        run: impl Fn(&TrialCtx) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        assert!(trials > 0, "cell needs at least one trial");
        assert!(!metrics.is_empty(), "cell needs at least one metric");
        Self {
            label: label.into(),
            params: Vec::new(),
            trials,
            metrics: metrics.to_vec(),
            exclusive: false,
            run: Box::new(run),
        }
    }

    /// Attaches a parameter for the JSON report (builder style).
    pub fn with_param(mut self, key: &'static str, value: impl Into<ParamValue>) -> Self {
        self.params.push((key, value.into()));
        self
    }

    /// Marks the cell's tasks as *exclusive*: each runs with no other task
    /// of the pool in flight. For cells whose metrics are wall-clock
    /// timings — concurrent cells would contend for cache/memory bandwidth
    /// and inflate the measurement.
    pub fn exclusive(mut self) -> Self {
        self.exclusive = true;
        self
    }

    /// The cell's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.trials
    }
}

/// One experiment's grid: an ordered list of cells under one name and one
/// seed stream.
pub struct Sweep {
    experiment: String,
    stream: u64,
    cells: Vec<Cell>,
}

impl Sweep {
    /// Creates an empty sweep; the seed stream derives from the name.
    pub fn new(experiment: impl Into<String>) -> Self {
        let experiment = experiment.into();
        let stream = seed_stream(&experiment, &[]);
        Self { experiment, stream, cells: Vec::new() }
    }

    /// Appends a cell. Labels must be unique within the sweep.
    pub fn cell(&mut self, cell: Cell) {
        assert!(
            self.cells.iter().all(|c| c.label != cell.label),
            "duplicate cell label `{}` in sweep `{}`",
            cell.label,
            self.experiment
        );
        self.cells.push(cell);
    }

    /// The experiment name (also the JSON file stem).
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The sweep's seed stream.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// The cells, in declaration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Every engine-assigned (cell, trial) seed, in flat declaration order
    /// — what each task will observe as [`TrialCtx::seed`].
    pub fn assigned_seeds(&self) -> Vec<u64> {
        let total: usize = self.cells.iter().map(|c| c.trials).sum();
        (0..total as u64).map(|i| trial_seed(self.stream, i)).collect()
    }
}

// ---- results ---------------------------------------------------------------

/// Per-cell outcome: raw per-trial metric values plus timing.
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// The cell's parameter map.
    pub params: Vec<(&'static str, ParamValue)>,
    /// Number of trials run.
    pub trials: usize,
    /// Metric names, in task-return order.
    pub metrics: Vec<&'static str>,
    /// Raw values, trial-major: `values[trial][metric]`.
    pub values: Vec<Vec<f64>>,
    /// Wall-clock span from the first trial start to the last trial end
    /// (cells interleave in the pool, so this can exceed `cpu_seconds /
    /// threads`).
    pub wall_seconds: f64,
    /// Summed per-trial execution time.
    pub cpu_seconds: f64,
}

impl CellResult {
    /// The raw values of one metric, in trial order.
    ///
    /// # Panics
    /// Panics if `metric` was not declared on the cell.
    pub fn metric_values(&self, metric: &str) -> Vec<f64> {
        let idx =
            self.metrics.iter().position(|m| *m == metric).unwrap_or_else(|| {
                panic!("metric `{metric}` not declared on cell `{}`", self.label)
            });
        self.values.iter().map(|v| v[idx]).collect()
    }

    /// Summary (mean ± SE) of one metric over the trials.
    pub fn summary(&self, metric: &str) -> Summary {
        Summary::of(&self.metric_values(metric))
    }

    /// Looks up a parameter by key.
    pub fn param(&self, key: &str) -> Option<&ParamValue> {
        self.params.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The parameter rendered for table cells (empty string if absent).
    pub fn param_display(&self, key: &str) -> String {
        self.param(key).map(|p| p.to_string()).unwrap_or_default()
    }
}

impl Serialize for CellResult {
    fn to_value(&self) -> Value {
        let params =
            Value::Object(self.params.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect());
        let metrics = Value::Object(
            self.metrics.iter().map(|m| (m.to_string(), self.summary(m).to_value())).collect(),
        );
        Value::Object(vec![
            ("label".into(), Value::String(self.label.clone())),
            ("params".into(), params),
            ("trials".into(), Value::Int(self.trials as i64)),
            ("wall_seconds".into(), Value::Float(self.wall_seconds)),
            ("cpu_seconds".into(), Value::Float(self.cpu_seconds)),
            ("metrics".into(), metrics),
        ])
    }
}

/// One sweep's outcome: per-cell results plus suite-level timing.
pub struct SweepResult {
    /// The experiment name.
    pub experiment: String,
    /// Per-cell results, in declaration order.
    pub cells: Vec<CellResult>,
    /// Wall-clock of the whole `run_sweeps` call that produced this sweep
    /// (shared across co-scheduled sweeps).
    pub wall_seconds: f64,
    /// Pool size used.
    pub threads: usize,
}

impl SweepResult {
    /// Looks up a cell by label.
    ///
    /// # Panics
    /// Panics if no cell has that label.
    pub fn cell(&self, label: &str) -> &CellResult {
        self.cells
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("no cell `{label}` in sweep `{}`", self.experiment))
    }
}

impl Serialize for SweepResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("experiment".into(), Value::String(self.experiment.clone())),
            ("threads".into(), Value::Int(self.threads as i64)),
            ("wall_seconds".into(), Value::Float(self.wall_seconds)),
            ("cells".into(), Value::Array(self.cells.iter().map(Serialize::to_value).collect())),
        ])
    }
}

// ---- multi-machine sharding -------------------------------------------------

/// A multi-machine shard assignment `I/K`: this invocation owns the cells
/// whose flat index (counting every cell of every sweep in declaration
/// order) is `≡ I (mod K)`.
///
/// Sharding happens at **cell granularity** so each cell's trials — and
/// therefore its summary — stay on one machine and per-shard JSON
/// documents merge by cell-list union
/// ([`crate::report::merge_sweep_json`]). Seeds are derived from each
/// task's flat index within the *full declared* sweep, never from what
/// actually runs, so every shard observes exactly the seeds it would see
/// in an unsharded run and the shards compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This invocation's shard index, `0 ≤ index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Creates a validated shard spec.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for {count} shards"));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `I/K` (e.g. `0/4`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, k) = s.split_once('/').ok_or_else(|| format!("--shard expects I/K, got '{s}'"))?;
        let index: usize = i.trim().parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: usize = k.trim().parse().map_err(|_| format!("bad shard count '{k}'"))?;
        Self::new(index, count)
    }

    /// Whether this shard owns flat cell `flat_cell`.
    #[inline]
    pub fn owns(&self, flat_cell: usize) -> bool {
        flat_cell % self.count == self.index
    }
}

// ---- scheduler -------------------------------------------------------------

/// Per-cell progress bookkeeping shared by the worker threads.
struct CellProgress {
    start_min_us: AtomicU64,
    end_max_us: AtomicU64,
    cpu_us: AtomicU64,
    remaining: AtomicUsize,
}

impl CellProgress {
    fn new(trials: usize) -> Self {
        Self {
            start_min_us: AtomicU64::new(u64::MAX),
            end_max_us: AtomicU64::new(0),
            cpu_us: AtomicU64::new(0),
            remaining: AtomicUsize::new(trials),
        }
    }

    fn wall_seconds(&self) -> f64 {
        let start = self.start_min_us.load(Ordering::Relaxed);
        let end = self.end_max_us.load(Ordering::Relaxed);
        if start == u64::MAX {
            0.0
        } else {
            (end.saturating_sub(start)) as f64 * 1e-6
        }
    }
}

/// Runs one sweep on its own pool — convenience wrapper over [`run_sweeps`].
pub fn run_sweep(sweep: Sweep, threads: usize) -> SweepResult {
    run_sweeps(vec![sweep], threads).pop().expect("one sweep in, one result out")
}

/// Flattens every (cell × trial) task of `sweeps` into a single work queue
/// and drains it with a shared pool of `threads` scoped threads.
///
/// Tasks from different sweeps interleave freely, so the total wall-clock of
/// a heterogeneous suite approaches the longest single task chain instead of
/// the sum of per-sweep times. Results are written lock-free into
/// pre-assigned slots and are bit-identical for any thread count: seeds are
/// fixed by declaration order, never by scheduling.
pub fn run_sweeps(sweeps: Vec<Sweep>, threads: usize) -> Vec<SweepResult> {
    run_sweeps_sharded(sweeps, threads, None)
}

/// [`run_sweeps`] restricted to one [`ShardSpec`] of a multi-machine run:
/// only the owned cells execute, and each [`SweepResult`] contains only
/// those cells. Seeds are computed over the **full declaration** (never
/// over what actually runs), so the per-shard results are bit-identical to
/// the corresponding cells of an unsharded run and the shards' JSON
/// documents compose by cell union
/// ([`crate::report::merge_sweep_json`]).
pub fn run_sweeps_sharded(
    sweeps: Vec<Sweep>,
    threads: usize,
    shard: Option<ShardSpec>,
) -> Vec<SweepResult> {
    let t0 = Instant::now();

    // Shard ownership per (sweep, cell), by flat cell index across the
    // whole suite in declaration order.
    let mut flat_cell = 0usize;
    let owned: Vec<Vec<bool>> = sweeps
        .iter()
        .map(|s| {
            s.cells
                .iter()
                .map(|_| {
                    let mine = shard.map(|sp| sp.owns(flat_cell)).unwrap_or(true);
                    flat_cell += 1;
                    mine
                })
                .collect()
        })
        .collect();

    // Flat task list: (sweep, cell, trial, seed). Seeds use the sweep's
    // stream and the flat index *within that sweep's full declaration*, so
    // neither co-scheduling nor sharding ever changes any seed.
    let mut tasks: Vec<(usize, usize, usize, u64)> = Vec::new();
    for (s, sweep) in sweeps.iter().enumerate() {
        let mut flat = 0u64;
        for (c, cell) in sweep.cells.iter().enumerate() {
            for t in 0..cell.trials {
                if owned[s][c] {
                    tasks.push((s, c, t, trial_seed(sweep.stream, flat)));
                }
                flat += 1;
            }
        }
    }

    // One pre-allocated slot per task: the result path needs no lock.
    let slots: Vec<Vec<Vec<OnceLock<Vec<f64>>>>> = sweeps
        .iter()
        .map(|s| s.cells.iter().map(|c| (0..c.trials).map(|_| OnceLock::new()).collect()).collect())
        .collect();
    let progress: Vec<Vec<CellProgress>> = sweeps
        .iter()
        .map(|s| s.cells.iter().map(|c| CellProgress::new(c.trials)).collect())
        .collect();

    let total_cells: usize = owned.iter().map(|s| s.iter().filter(|&&m| m).count()).sum::<usize>();
    let cells_done = AtomicUsize::new(0);
    let next = AtomicUsize::new(0);
    let threads = threads.clamp(1, tasks.len().max(1));
    // Exclusivity gate: ordinary tasks hold a read lock while running, an
    // exclusive task takes the write lock — so it runs with the pool
    // otherwise idle. `RwLock`'s reader/writer priority is platform-
    // dependent, so waiting exclusive tasks are counted explicitly and
    // ordinary tasks back off while any are pending — exclusive tasks
    // cannot be starved by a continuous reader stream.
    let gate = std::sync::RwLock::new(());
    let exclusive_pending = AtomicUsize::new(0);

    if !tasks.is_empty() {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    let (s, c, t, seed) = tasks[i];
                    let cell = &sweeps[s].cells[c];
                    let ctx = TrialCtx::new(t, cell.trials, seed);
                    let (_shared, _excl);
                    if cell.exclusive {
                        exclusive_pending.fetch_add(1, Ordering::AcqRel);
                        _excl = gate.write().expect("gate never poisoned");
                        exclusive_pending.fetch_sub(1, Ordering::AcqRel);
                    } else {
                        _shared = loop {
                            if exclusive_pending.load(Ordering::Acquire) > 0 {
                                std::thread::yield_now();
                                continue;
                            }
                            let guard = gate.read().expect("gate never poisoned");
                            // Re-check: a writer may have registered between
                            // the load and the acquisition; let it through.
                            if exclusive_pending.load(Ordering::Acquire) == 0 {
                                break guard;
                            }
                            drop(guard);
                        };
                    }
                    let start_us = t0.elapsed().as_micros() as u64;
                    let out = (cell.run)(&ctx);
                    let end_us = t0.elapsed().as_micros() as u64;
                    assert_eq!(
                        out.len(),
                        cell.metrics.len(),
                        "cell `{}` returned {} values for {} metrics",
                        cell.label,
                        out.len(),
                        cell.metrics.len()
                    );
                    if slots[s][c][t].set(out).is_err() {
                        panic!("slot ({s}, {c}, {t}) filled twice");
                    }
                    let p = &progress[s][c];
                    p.start_min_us.fetch_min(start_us, Ordering::Relaxed);
                    p.end_max_us.fetch_max(end_us, Ordering::Relaxed);
                    let blocked_us = ctx.excluded_us.load(Ordering::Relaxed);
                    p.cpu_us.fetch_add(
                        end_us.saturating_sub(start_us).saturating_sub(blocked_us),
                        Ordering::Relaxed,
                    );
                    if p.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let done = cells_done.fetch_add(1, Ordering::Relaxed) + 1;
                        eprintln!(
                            "[{done}/{total_cells}] {}/{} ({} trials, {:.1}s)",
                            sweeps[s].experiment,
                            cell.label,
                            cell.trials,
                            p.wall_seconds()
                        );
                    }
                });
            }
        });
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    sweeps
        .into_iter()
        .zip(slots)
        .zip(progress)
        .zip(owned)
        .map(|(((sweep, cell_slots), cell_progress), cell_owned)| SweepResult {
            experiment: sweep.experiment,
            threads,
            wall_seconds,
            cells: sweep
                .cells
                .into_iter()
                .zip(cell_slots)
                .zip(cell_progress)
                .zip(cell_owned)
                .filter(|(_, mine)| *mine)
                .map(|(((cell, trial_slots), p), _)| CellResult {
                    label: cell.label,
                    params: cell.params,
                    trials: cell.trials,
                    metrics: cell.metrics,
                    values: trial_slots
                        .into_iter()
                        .map(|s| s.into_inner().expect("every trial slot filled"))
                        .collect(),
                    wall_seconds: p.wall_seconds(),
                    cpu_seconds: p.cpu_us.load(Ordering::Relaxed) as f64 * 1e-6,
                })
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sweep(cells: usize, trials: usize) -> Sweep {
        let mut sweep = Sweep::new("toy");
        for c in 0..cells {
            sweep.cell(
                Cell::new(format!("cell{c}"), trials, &["value", "seed_lo"], move |ctx| {
                    vec![(c * 1000 + ctx.trial) as f64, (ctx.seed & 0xFFFF) as f64]
                })
                .with_param("c", c),
            );
        }
        sweep
    }

    #[test]
    fn results_in_declaration_order() {
        let r = run_sweep(toy_sweep(3, 4), 2);
        assert_eq!(r.cells.len(), 3);
        for (c, cell) in r.cells.iter().enumerate() {
            assert_eq!(cell.label, format!("cell{c}"));
            let vals = cell.metric_values("value");
            assert_eq!(vals, (0..4).map(|t| (c * 1000 + t) as f64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let a = run_sweep(toy_sweep(5, 6), 1);
        let b = run_sweep(toy_sweep(5, 6), 8);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.values, cb.values);
        }
    }

    #[test]
    fn seeds_are_collision_free_and_match_assignment() {
        let sweep = toy_sweep(7, 9);
        let assigned = sweep.assigned_seeds();
        let mut unique = assigned.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), assigned.len(), "assigned seeds must not collide");

        let r = run_sweep(sweep, 4);
        let observed: Vec<u64> =
            r.cells.iter().flat_map(|c| c.metric_values("seed_lo")).map(|x| x as u64).collect();
        let expected: Vec<u64> = assigned.iter().map(|s| s & 0xFFFF).collect();
        assert_eq!(observed, expected, "tasks observe the declared seeds");
    }

    #[test]
    fn sweeps_share_one_pool_without_seed_interference() {
        let solo = run_sweep(toy_sweep(2, 3), 2);
        let mut other = Sweep::new("other");
        other.cell(Cell::new("x", 5, &["v"], |ctx| vec![ctx.seed as f64]));
        let both = run_sweeps(vec![toy_sweep(2, 3), other], 3);
        assert_eq!(both.len(), 2);
        for (a, b) in solo.cells.iter().zip(&both[0].cells) {
            assert_eq!(a.values, b.values, "co-scheduling must not change seeds");
        }
    }

    #[test]
    fn summaries_and_params_round_trip() {
        let r = run_sweep(toy_sweep(1, 4), 2);
        let cell = r.cell("cell0");
        let s = cell.summary("value");
        assert_eq!(s.trials, 4);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(cell.param("c").and_then(ParamValue::as_i64), Some(0));
    }

    #[test]
    #[should_panic(expected = "duplicate cell label")]
    fn duplicate_labels_rejected() {
        let mut sweep = Sweep::new("dup");
        sweep.cell(Cell::new("a", 1, &["v"], |_| vec![0.0]));
        sweep.cell(Cell::new("a", 1, &["v"], |_| vec![0.0]));
    }

    #[test]
    #[should_panic(expected = "metric `missing`")]
    fn unknown_metric_panics() {
        let r = run_sweep(toy_sweep(1, 1), 1);
        let _ = r.cells[0].summary("missing");
    }

    #[test]
    fn exclusive_cells_run_alone() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let active = Arc::new(AtomicUsize::new(0));
        let overlap_seen = Arc::new(AtomicUsize::new(0));
        let mut sweep = Sweep::new("exclusive");
        for c in 0..4 {
            let active = Arc::clone(&active);
            sweep.cell(Cell::new(format!("busy{c}"), 8, &["v"], move |ctx| {
                active.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                active.fetch_sub(1, Ordering::SeqCst);
                vec![ctx.trial as f64]
            }));
        }
        let overlap = Arc::clone(&overlap_seen);
        let active_probe = Arc::clone(&active);
        sweep.cell(
            Cell::new("timed", 4, &["v"], move |ctx| {
                overlap.fetch_add(active_probe.load(Ordering::SeqCst), Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                overlap.fetch_add(active_probe.load(Ordering::SeqCst), Ordering::SeqCst);
                vec![ctx.trial as f64]
            })
            .exclusive(),
        );
        run_sweep(sweep, 6);
        assert_eq!(
            overlap_seen.load(Ordering::SeqCst),
            0,
            "an exclusive task observed a concurrent ordinary task"
        );
    }

    #[test]
    fn shared_setup_bills_only_the_initialising_task() {
        use std::sync::Arc;
        let slot: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let mut sweep = Sweep::new("setup-billing");
        sweep.cell(Cell::new("waiters", 4, &["v"], move |ctx| {
            let v = ctx.shared_setup(&slot, || {
                std::thread::sleep(std::time::Duration::from_millis(80));
                7
            });
            vec![*v as f64]
        }));
        let r = run_sweep(sweep, 4);
        let cell = &r.cells[0];
        assert_eq!(cell.metric_values("v"), vec![7.0; 4]);
        // One task pays the 80ms setup; the three that blocked on it are
        // not billed for the wait. Unfixed accounting would be ~4 × 80ms.
        assert!(
            cell.cpu_seconds < 0.240,
            "waiting on shared setup must not be billed as CPU (got {}s)",
            cell.cpu_seconds
        );
        assert!(cell.wall_seconds >= 0.075, "the setup span stays in wall-clock");
    }

    #[test]
    fn sharded_runs_compose_to_the_unsharded_run() {
        // Every cell lands in exactly one shard, with values bit-identical
        // to the unsharded run — the multi-machine composition invariant.
        let full = run_sweep(toy_sweep(7, 3), 2);
        let mut seen: std::collections::HashMap<String, Vec<Vec<f64>>> =
            std::collections::HashMap::new();
        for index in 0..3 {
            let shard = ShardSpec::new(index, 3).unwrap();
            let results = run_sweeps_sharded(vec![toy_sweep(7, 3)], 2, Some(shard));
            for cell in &results[0].cells {
                assert!(
                    seen.insert(cell.label.clone(), cell.values.clone()).is_none(),
                    "cell `{}` owned by two shards",
                    cell.label
                );
            }
        }
        assert_eq!(seen.len(), full.cells.len(), "shards must cover every cell");
        for cell in &full.cells {
            assert_eq!(&cell.values, &seen[&cell.label], "`{}` differs from unsharded", cell.label);
        }
    }

    #[test]
    fn sharding_counts_cells_across_sweeps() {
        // The flat cell index spans the whole suite, so a two-sweep run
        // splits between shards even when one sweep has a single cell.
        let mut single = Sweep::new("single");
        single.cell(Cell::new("only", 2, &["v"], |ctx| vec![ctx.seed as f64]));
        let shard0 = run_sweeps_sharded(
            vec![toy_sweep(3, 2), {
                let mut s = Sweep::new("single");
                s.cell(Cell::new("only", 2, &["v"], |ctx| vec![ctx.seed as f64]));
                s
            }],
            2,
            Some(ShardSpec::new(0, 2).unwrap()),
        );
        let shard1 = run_sweeps_sharded(
            vec![toy_sweep(3, 2), single],
            2,
            Some(ShardSpec::new(1, 2).unwrap()),
        );
        let cells = |r: &[SweepResult]| r.iter().map(|s| s.cells.len()).sum::<usize>();
        assert_eq!(cells(&shard0) + cells(&shard1), 4, "3 toy cells + 1 single cell");
        // Cell 3 (the second sweep's only cell) belongs to shard 1.
        assert_eq!(shard1[1].cells.len(), 1);
        assert_eq!(shard0[1].cells.len(), 0);
    }

    #[test]
    fn shard_spec_parses_and_validates() {
        assert_eq!(ShardSpec::parse("0/4").unwrap(), ShardSpec { index: 0, count: 4 });
        assert_eq!(ShardSpec::parse("3/4").unwrap(), ShardSpec { index: 3, count: 4 });
        assert!(ShardSpec::parse("4/4").unwrap_err().contains("out of range"));
        assert!(ShardSpec::parse("1").unwrap_err().contains("I/K"));
        assert!(ShardSpec::parse("a/b").unwrap_err().contains("bad shard"));
        assert!(ShardSpec::new(0, 0).unwrap_err().contains("at least 1"));
    }

    #[test]
    fn trial_seed_is_bijective_in_index() {
        let stream = seed_stream("bijective", &[]);
        let seeds: std::collections::HashSet<u64> =
            (0..10_000).map(|i| trial_seed(stream, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn streams_decorrelate_by_label_and_parts() {
        assert_ne!(seed_stream("a", &[]), seed_stream("b", &[]));
        assert_ne!(seed_stream("a", &[1]), seed_stream("a", &[2]));
        assert_eq!(seed_stream("a", &[1, 2]), seed_stream("a", &[1, 2]));
    }

    #[test]
    fn json_shape_has_schema_fields() {
        let r = run_sweep(toy_sweep(2, 2), 1);
        let v = r.to_value();
        assert_eq!(v.get("experiment").and_then(Value::as_str), Some("toy"));
        let cells = v.get("cells").and_then(Value::as_array).expect("cells array");
        assert_eq!(cells.len(), 2);
        let cell = &cells[0];
        for key in ["label", "params", "trials", "wall_seconds", "cpu_seconds", "metrics"] {
            assert!(cell.get(key).is_some(), "cell JSON must carry `{key}`");
        }
        let mean = cell
            .get("metrics")
            .and_then(|m| m.get("value"))
            .and_then(|s| s.get("mean"))
            .and_then(Value::as_f64);
        assert_eq!(mean, Some(0.5));
    }
}
