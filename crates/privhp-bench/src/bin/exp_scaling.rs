//! **E6 — Corollary 1 performance claims**: update time, build time and
//! memory as the stream grows.
//!
//! Paper claims: update time `O(log(εn)·log n)` per item (a root-to-leaf
//! walk touching one counter or sketch per level, each sketch update
//! costing `O(log n)` rows), release time `O(M log n)`, and memory
//! `M = O(k·log²n)` — i.e. near-flat in `n` while PMM's memory grows
//! linearly.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_scaling`

use privhp_bench::report::{fmt, write_json, Table};
use privhp_core::{PrivHpBuilder, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    update_ns_per_item: f64,
    finalize_ms: f64,
    privhp_memory_words: usize,
    pmm_memory_words: usize,
    k_log2n_sq: f64,
}

fn main() {
    let epsilon = 1.0;
    let k = 16usize;
    println!("== E6 (Cor. 1): throughput and memory scaling (eps={epsilon}, k={k}) ==\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "n",
        "update ns/item",
        "finalize ms",
        "PrivHP words",
        "PMM words (2^(L+1))",
        "k*log2(n)^2",
    ]);
    for exp in [10usize, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        let mut wl = DeterministicRng::seed_from_u64(0xE6_0000 + exp as u64);
        let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
        let config = PrivHpConfig::for_domain(epsilon, n, k).with_seed(exp as u64);
        let depth = config.depth;
        let mut rng = DeterministicRng::seed_from_u64(0xE6_1000 + exp as u64);
        let mut builder =
            PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).expect("valid config");

        let t0 = std::time::Instant::now();
        for x in &data {
            builder.ingest(x);
        }
        let ingest = t0.elapsed();
        let memory = builder.memory_words();

        let t1 = std::time::Instant::now();
        let g = builder.finalize();
        let finalize = t1.elapsed();

        let pmm_words = 2 * ((1usize << (depth + 1)) - 1);
        let theory = k as f64 * (n as f64).log2().powi(2);
        table.row(vec![
            format!("2^{exp}"),
            fmt(ingest.as_nanos() as f64 / n as f64),
            fmt(finalize.as_secs_f64() * 1e3),
            memory.to_string(),
            pmm_words.to_string(),
            format!("{theory:.0}"),
        ]);
        rows.push(Row {
            n,
            update_ns_per_item: ingest.as_nanos() as f64 / n as f64,
            finalize_ms: finalize.as_secs_f64() * 1e3,
            privhp_memory_words: memory,
            pmm_memory_words: pmm_words,
            k_log2n_sq: theory,
        });
        let _ = g;
    }
    table.print();
    write_json("exp_scaling", &rows);

    println!("\nExpected shape (Cor. 1): update cost grows ~log^2(n) (polylog, not linear);");
    println!("PrivHP memory tracks k*log^2(n) while the PMM column grows ~linearly in n.");
}
