//! Release-artifact cold-load latency (JSON vs `.phpr` binary) and its
//! perf-baseline gate.
//!
//! Usage:
//!   `cargo run -p privhp-bench --release --bin exp_release_load
//!    [-- --smoke] [--assert-baseline <file>]`
//!
//! Every run writes the flat baseline document
//! `bench_results/BENCH_release_load.json`; with `--assert-baseline
//! <file>` the run additionally compares itself against the stored
//! baseline and exits non-zero if any `loads_per_sec` metric regressed by
//! more than 40%. The tolerance matches `exp_serve`: cold loads cross the
//! filesystem, whose caching behaviour is noisier than the CPU-bound
//! kernels behind `exp_throughput`'s 25% gate. The committed reference
//! lives under `bench_results/baseline/`.

use privhp_bench::experiments::{release_load, scale_from_args};
use privhp_bench::report::{assert_baseline, write_sweep_json};
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::run_sweeps;

/// Regression tolerance of the CI gate: >40% below baseline fails.
const TOLERANCE: f64 = 0.40;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args.iter().position(|a| a == "--assert-baseline").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--assert-baseline requires a file argument");
                std::process::exit(2);
            })
            .clone()
    });

    let scale = scale_from_args();
    let results = run_sweeps(vec![release_load::sweep(scale)], default_threads());
    let result = &results[0];
    release_load::report(result);
    write_sweep_json(result);

    if let Some(path) = baseline {
        let path = std::path::Path::new(&path);
        match assert_baseline(result, path, TOLERANCE) {
            Ok(regressions) if regressions.is_empty() => {
                println!("\nbaseline check: PASS (vs {})", path.display());
            }
            Ok(regressions) => {
                eprintln!("\nbaseline check: FAIL (vs {})", path.display());
                for r in &regressions {
                    eprintln!("  regression >{:.0}%: {r}", TOLERANCE * 100.0);
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("\nbaseline check: ERROR: {e}");
                std::process::exit(2);
            }
        }
    }
}
