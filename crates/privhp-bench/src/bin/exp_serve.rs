//! Served throughput/latency under concurrent load and its perf-baseline
//! gate.
//!
//! Usage:
//!   `cargo run -p privhp-bench --release --bin exp_serve [-- --smoke]
//!    [--assert-baseline <file>]`
//!
//! Every run writes the flat baseline document
//! `bench_results/BENCH_serve.json`; with `--assert-baseline <file>` the
//! run additionally compares itself against the stored baseline and exits
//! non-zero if any rate metric regressed by more than 40%. The tolerance
//! is wider than `exp_throughput`'s 25% because these cells cross real
//! sockets under thread oversubscription — scheduling noise the pure
//! CPU-bound kernels do not see. The committed reference lives under
//! `bench_results/baseline/`.

use privhp_bench::experiments::{scale_from_args, serve};
use privhp_bench::report::{assert_baseline, write_sweep_json};
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::run_sweeps;

/// Regression tolerance of the CI gate: >40% below baseline fails.
const TOLERANCE: f64 = 0.40;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args.iter().position(|a| a == "--assert-baseline").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--assert-baseline requires a file argument");
                std::process::exit(2);
            })
            .clone()
    });

    let scale = scale_from_args();
    let results = run_sweeps(vec![serve::sweep(scale)], default_threads());
    let result = &results[0];
    serve::report(result);
    write_sweep_json(result);

    if let Some(path) = baseline {
        let path = std::path::Path::new(&path);
        match assert_baseline(result, path, TOLERANCE) {
            Ok(regressions) if regressions.is_empty() => {
                println!("\nbaseline check: PASS (vs {})", path.display());
            }
            Ok(regressions) => {
                eprintln!("\nbaseline check: FAIL (vs {})", path.display());
                for r in &regressions {
                    eprintln!("  regression >{:.0}%: {r}", TOLERANCE * 100.0);
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("\nbaseline check: ERROR: {e}");
                std::process::exit(2);
            }
        }
    }
}
