//! **exp_all — the whole experiment suite as one scheduled sweep set.**
//!
//! Every registered experiment declares its (method × workload × parameter)
//! grid through the sweep engine; this driver feeds all of them into a
//! single process-wide pool, so cells from different experiments interleave
//! and total wall-clock approaches the longest cell chain instead of the
//! sum of the sweeps. Reports print in suite order once everything is done,
//! and one JSON document per sweep lands in `bench_results/`.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_all [-- --smoke]
//! [--shard I/K | --merge-shards dirA,dirB,…]`
//!
//! `--smoke` shrinks streams and trials (`PRIVHP_TRIALS`, default 2 in
//! smoke mode) so the full suite completes in seconds — the CI smoke step.
//!
//! **Multi-machine sharding**: `--shard I/K` runs only the cells whose
//! flat suite index is `≡ I (mod K)` — seeds derive from the full
//! declaration, so K shard invocations (on K machines, each pointed at its
//! own `PRIVHP_RESULTS_DIR`) together compute exactly the unsharded suite.
//! Shard runs emit JSON only — a shard holds a subset of each sweep's
//! cells, and the printed tables need raw trial values, so sharded runs
//! trade the paper-facing reports and the `BENCH_*` baseline reduction
//! for distribution; run unsharded when you need those. `--merge-shards
//! dirA,dirB,…` reads each shard's per-sweep documents and writes the
//! merged documents — cell-list union per experiment — into the usual
//! results directory.

use privhp_bench::experiments::{all, scale_from_args, Scale};
use privhp_bench::report::{
    fmt, merge_sweep_json, results_dir, write_sweep_json, write_value_json, Table,
};
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::{run_sweeps_sharded, ShardSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{name} requires an argument");
                    std::process::exit(2);
                })
                .clone()
        })
    };

    if let Some(dirs) = flag_value("--merge-shards") {
        merge_shards(&dirs);
        return;
    }

    let shard = flag_value("--shard").map(|s| {
        ShardSpec::parse(&s).unwrap_or_else(|e| {
            eprintln!("--shard: {e}");
            std::process::exit(2);
        })
    });

    let scale = scale_from_args();
    let threads = default_threads();
    let experiments = all();
    eprintln!(
        "exp_all: scheduling {} experiments on {threads} threads ({}{})",
        experiments.len(),
        if scale == Scale::Smoke { "smoke scale" } else { "full scale" },
        shard.map(|s| format!(", shard {}/{}", s.index, s.count)).unwrap_or_default(),
    );

    let sweeps = experiments.iter().map(|e| (e.build)(scale)).collect();
    let results = run_sweeps_sharded(sweeps, threads, shard);

    if shard.is_some() {
        // A shard owns a subset of each sweep's cells, so the reports
        // (which index cells by label) cannot render; every shard
        // document still lands in bench_results/ for --merge-shards.
        for result in &results {
            write_sweep_json(result);
        }
        let cells: usize = results.iter().map(|r| r.cells.len()).sum();
        println!("shard complete: {cells} cells across {} sweeps written as JSON", results.len());
        return;
    }

    for (exp, result) in experiments.iter().zip(&results) {
        println!("\n――― {} ―――\n", exp.name);
        (exp.report)(result);
        write_sweep_json(result);
    }

    let total_cpu: f64 = results.iter().flat_map(|r| r.cells.iter()).map(|c| c.cpu_seconds).sum();
    let wall = results.first().map(|r| r.wall_seconds).unwrap_or(0.0);
    println!("\n――― suite timing ―――\n");
    let mut table = Table::new(&["experiment", "cells", "tasks", "cpu s", "span s"]);
    for result in &results {
        let tasks: usize = result.cells.iter().map(|c| c.trials).sum();
        let cpu: f64 = result.cells.iter().map(|c| c.cpu_seconds).sum();
        let span = result.cells.iter().map(|c| c.wall_seconds).fold(0.0f64, f64::max);
        table.row(vec![
            result.experiment.clone(),
            result.cells.len().to_string(),
            tasks.to_string(),
            fmt(cpu),
            fmt(span),
        ]);
    }
    table.print();
    println!(
        "\nsuite: {} cells, {total_cpu:.1} CPU-seconds packed into {wall:.1}s wall on {threads} threads",
        results.iter().map(|r| r.cells.len()).sum::<usize>(),
    );
}

/// Merges per-shard `bench_results/` documents: for every registered
/// experiment, reads `<dir>/<name>.json` from each comma-separated shard
/// directory (shards that owned none of the sweep's cells may be missing
/// the file), merges the cell lists, and writes the combined document into
/// the standard results directory.
fn merge_shards(dirs: &str) {
    let dirs: Vec<&str> = dirs.split(',').filter(|d| !d.is_empty()).collect();
    if dirs.is_empty() {
        eprintln!("--merge-shards requires a comma-separated list of shard result directories");
        std::process::exit(2);
    }
    let mut merged = 0usize;
    for exp in all() {
        let mut docs = Vec::new();
        for dir in &dirs {
            let path = std::path::Path::new(dir).join(format!("{}.json", exp.name));
            let Ok(body) = std::fs::read_to_string(&path) else { continue };
            match serde_json::parse_value_str(&body) {
                Ok(doc) => docs.push(doc),
                Err(e) => {
                    eprintln!("error: {} is not valid JSON: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if docs.is_empty() {
            eprintln!("warning: no shard produced {}.json — skipping", exp.name);
            continue;
        }
        match merge_sweep_json(&docs) {
            Ok(doc) => {
                write_value_json(exp.name, &doc);
                merged += 1;
            }
            Err(e) => {
                eprintln!("error merging {}: {e}", exp.name);
                std::process::exit(1);
            }
        }
    }
    println!(
        "merged {merged} experiments from {} shard directories into {}",
        dirs.len(),
        results_dir().display()
    );
}
