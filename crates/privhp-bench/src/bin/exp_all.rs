//! **exp_all — the whole experiment suite as one scheduled sweep set.**
//!
//! Every registered experiment declares its (method × workload × parameter)
//! grid through the sweep engine; this driver feeds all of them into a
//! single process-wide pool, so cells from different experiments interleave
//! and total wall-clock approaches the longest cell chain instead of the
//! sum of the sweeps. Reports print in suite order once everything is done,
//! and one JSON document per sweep lands in `bench_results/`.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_all [-- --smoke]`
//!
//! `--smoke` shrinks streams and trials (`PRIVHP_TRIALS`, default 2 in
//! smoke mode) so the full suite completes in seconds — the CI smoke step.

use privhp_bench::experiments::{all, scale_from_args, Scale};
use privhp_bench::report::{fmt, write_sweep_json, Table};
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::run_sweeps;

fn main() {
    let scale = scale_from_args();
    let threads = default_threads();
    let experiments = all();
    eprintln!(
        "exp_all: scheduling {} experiments on {threads} threads ({})",
        experiments.len(),
        if scale == Scale::Smoke { "smoke scale" } else { "full scale" },
    );

    let sweeps = experiments.iter().map(|e| (e.build)(scale)).collect();
    let results = run_sweeps(sweeps, threads);

    for (exp, result) in experiments.iter().zip(&results) {
        println!("\n――― {} ―――\n", exp.name);
        (exp.report)(result);
        write_sweep_json(result);
    }

    let total_cpu: f64 = results.iter().flat_map(|r| r.cells.iter()).map(|c| c.cpu_seconds).sum();
    let wall = results.first().map(|r| r.wall_seconds).unwrap_or(0.0);
    println!("\n――― suite timing ―――\n");
    let mut table = Table::new(&["experiment", "cells", "tasks", "cpu s", "span s"]);
    for result in &results {
        let tasks: usize = result.cells.iter().map(|c| c.trials).sum();
        let cpu: f64 = result.cells.iter().map(|c| c.cpu_seconds).sum();
        let span = result.cells.iter().map(|c| c.wall_seconds).fold(0.0f64, f64::max);
        table.row(vec![
            result.experiment.clone(),
            result.cells.len().to_string(),
            tasks.to_string(),
            fmt(cpu),
            fmt(span),
        ]);
    }
    table.print();
    println!(
        "\nsuite: {} cells, {total_cpu:.1} CPU-seconds packed into {wall:.1}s wall on {threads} threads",
        results.iter().map(|r| r.cells.len()).sum::<usize>(),
    );
}
