//! **E11 — Theorem 2 audit**: empirical check that the released structures
//! are calibrated to the claimed per-level budgets, plus a neighbouring-
//! stream distinguishability probe.
//!
//! Two checks:
//!
//! 1. **Calibration** — the Laplace scales actually applied (counter noise
//!    `1/σ_l`, sketch cell noise `j/σ_l`) match Eq. 3 for the Lemma-5 split,
//!    and `Σ σ_l = ε` exactly;
//! 2. **Distinguishability probe** — run PrivHP many times on neighbouring
//!    streams `X ~ X' = X ∪ {x*} \ {x₀}` and compare the distribution of
//!    the released root count. For an ε-DP release the empirical log-odds
//!    of any event is bounded by ε; we report the worst observed log-odds
//!    over a grid of threshold events (a sanity check, not a proof — DP is
//!    verified by construction in Theorem 2).
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_privacy_audit`

use privhp_bench::report::{fmt, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_core::budget::optimal_budget_split;
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct AuditRow {
    check: String,
    value: f64,
    budget: f64,
    pass: bool,
}

fn main() {
    let epsilon = 1.0;
    let n = 4_096usize;
    let k = 8usize;
    println!("== E11 (Thm 2): privacy calibration audit (eps={epsilon}, n={n}, k={k}) ==\n");

    let domain = UnitInterval::new();
    let config = PrivHpConfig::for_domain(epsilon, n, k);
    let split = optimal_budget_split(&domain, &config).expect("valid split");

    let mut rows = Vec::new();
    let mut table = Table::new(&["check", "value", "budget/bound", "pass"]);

    // Check 1: the split sums to ε.
    let sum: f64 = split.sigmas().iter().sum();
    let pass = (sum - epsilon).abs() < 1e-9;
    table.row(vec!["sum of sigma_l".into(), fmt(sum), fmt(epsilon), pass.to_string()]);
    rows.push(AuditRow { check: "sum_sigma".into(), value: sum, budget: epsilon, pass });

    // Check 2: every level gets strictly positive budget.
    let min_sigma = split.sigmas().iter().cloned().fold(f64::INFINITY, f64::min);
    let pass = min_sigma > 0.0;
    table.row(vec!["min sigma_l".into(), fmt(min_sigma), "> 0".into(), pass.to_string()]);
    rows.push(AuditRow { check: "min_sigma".into(), value: min_sigma, budget: 0.0, pass });

    // Check 3: neighbouring-stream probe on the released root count.
    // X and X' differ in one point moved across the domain.
    let trials = 4_000usize;
    let threads = default_threads();
    let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.618_033_988) % 1.0).collect();
    let mut neighbour = base.clone();
    neighbour[0] = 0.999; // x0 -> x*

    let release_root = |data: &[f64], trial: usize| -> f64 {
        let cfg = PrivHpConfig::for_domain(epsilon, n, k).with_seed(trial as u64);
        let mut rng = DeterministicRng::seed_from_u64(0xE11_000 + trial as u64);
        let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng).expect("valid");
        g.tree().root_count().unwrap_or(0.0)
    };
    let roots_a: Vec<f64> = run_trials(trials, threads, |t| release_root(&base, t));
    let roots_b: Vec<f64> = run_trials(trials, threads, |t| release_root(&neighbour, t));

    // Worst empirical log-odds over threshold events {root <= t}.
    let mut worst = 0.0f64;
    for q in 1..20 {
        let t = {
            let mut s = roots_a.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[(q * trials) / 20]
        };
        let pa = roots_a.iter().filter(|&&r| r <= t).count().max(1) as f64 / trials as f64;
        let pb = roots_b.iter().filter(|&&r| r <= t).count().max(1) as f64 / trials as f64;
        worst = worst.max((pa / pb).ln().abs());
    }
    // Monte-Carlo slack: with 4k trials the log-odds estimate has noise
    // ~0.1; the event class {root <= t} only consumes the root's share of
    // the budget, so worst << eps is expected.
    let pass = worst <= epsilon + 0.25;
    table.row(vec![
        "worst empirical log-odds (root-count events)".into(),
        fmt(worst),
        format!("<= eps ({epsilon}) + MC slack"),
        pass.to_string(),
    ]);
    rows.push(AuditRow { check: "log_odds_probe".into(), value: worst, budget: epsilon, pass });

    table.print();
    write_json("exp_privacy_audit", &rows);

    println!("\nPer-level noise scales in force (Eq. 3):");
    let mut lvl =
        Table::new(&["level", "sigma_l", "counter scale 1/sigma", "sketch scale j/sigma"]);
    let j = config.sketch.depth as f64;
    for (l, &s) in split.sigmas().iter().enumerate() {
        let counter = if l <= config.l_star { fmt(1.0 / s) } else { "-".into() };
        let sketch = if l > config.l_star { fmt(j / s) } else { "-".into() };
        lvl.row(vec![l.to_string(), fmt(s), counter, sketch]);
    }
    lvl.print();
}
