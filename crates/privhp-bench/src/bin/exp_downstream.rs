//! **E15 — §3.2 downstream-task guarantee**: the Wasserstein bound is a
//! *uniform* accuracy guarantee for Lipschitz statistics.
//!
//! Paper motivation (§3.2): "Equation 1 provides a uniform accuracy
//! guarantee for a wide range of machine learning tasks performed on
//! synthetic datasets whose empirical measure is close to μ_X in the
//! 1-Wasserstein distance." By Kantorovich–Rubinstein duality,
//! `|E_μ[f] − E_ν[f]| ≤ W1(μ, ν)` for every 1-Lipschitz `f` — so the
//! measured W1 must upper-bound the synthetic-data estimation error of
//! *every* Lipschitz statistic simultaneously. This experiment evaluates a
//! battery of 1-Lipschitz functionals on real vs synthetic data and checks
//! the duality empirically.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_downstream`

use privhp_bench::eval::w1_generator_1d;
use privhp_bench::report::{fmt, write_json, Table};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use serde::Serialize;

/// A named 1-Lipschitz functional on [0,1].
struct LipStat {
    name: &'static str,
    f: fn(f64) -> f64,
}

const STATS: &[LipStat] = &[
    LipStat { name: "mean:            f(x) = x", f: |x| x },
    LipStat { name: "dist-to-0.5:     f(x) = |x - 0.5|", f: |x| (x - 0.5).abs() },
    LipStat { name: "clamped ramp:    f(x) = min(x, 0.3)", f: |x| x.min(0.3) },
    LipStat { name: "hinge:           f(x) = max(0, x - 0.6)", f: |x| (x - 0.6).max(0.0) },
    LipStat { name: "1-Lip sigmoid:   f(x) = tanh(x - 0.4)", f: |x| (x - 0.4).tanh() },
    LipStat { name: "sawtooth(1-Lip): f(x) = |x mod 0.4 - 0.2|", f: |x| ((x % 0.4) - 0.2).abs() },
];

#[derive(Serialize)]
struct Row {
    statistic: String,
    real_value: f64,
    synthetic_value: f64,
    abs_error: f64,
    w1_bound: f64,
    within_bound: bool,
}

fn expectation(f: fn(f64) -> f64, xs: &[f64]) -> f64 {
    xs.iter().map(|&x| f(x)).sum::<f64>() / xs.len() as f64
}

fn main() {
    let n = 1 << 15;
    let epsilon = 1.0;
    let k = 32usize;
    println!("== E15 (§3.2): Lipschitz downstream statistics vs the W1 guarantee ==");
    println!("   n={n}, eps={epsilon}, k={k}\n");

    let domain = UnitInterval::new();
    let mut wl = DeterministicRng::seed_from_u64(0xE15_DA7A);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
    let cfg = PrivHpConfig::for_domain(epsilon, n, k).with_seed(0xE15);
    let mut rng = DeterministicRng::seed_from_u64(0xE15_BEEF);
    let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng).expect("valid");

    // The duality bound: W1 between the data and the generator's *exact*
    // distribution, plus the synthetic sample's own Monte-Carlo wobble.
    let w1 = w1_generator_1d(&data, g.tree(), &domain);
    let m = 1 << 17; // large synthetic sample to keep MC wobble << W1
    let synthetic = g.sample_many(m, &mut rng);
    let mc_slack = 3.0 / (m as f64).sqrt();

    let mut rows = Vec::new();
    let mut table = Table::new(&["statistic", "real", "synthetic", "|error|", "W1 bound"]);
    let mut worst = 0.0f64;
    for s in STATS {
        let real = expectation(s.f, &data);
        let synth = expectation(s.f, &synthetic);
        let err = (real - synth).abs();
        worst = worst.max(err);
        let within = err <= w1 + mc_slack;
        table.row(vec![s.name.into(), fmt(real), fmt(synth), fmt(err), fmt(w1)]);
        rows.push(Row {
            statistic: s.name.into(),
            real_value: real,
            synthetic_value: synth,
            abs_error: err,
            w1_bound: w1,
            within_bound: within,
        });
    }
    table.print();
    write_json("exp_downstream", &rows);

    println!("\nmeasured W1(data, generator) = {w1:.5} (+ MC slack {mc_slack:.5})");
    println!("worst statistic error        = {worst:.5}");
    if worst <= w1 + mc_slack {
        println!("=> Kantorovich duality holds: every 1-Lipschitz statistic is within W1.");
    } else {
        println!("=> VIOLATION — investigate (duality must hold for exact expectations).");
    }
}
