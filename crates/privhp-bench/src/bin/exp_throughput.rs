//! Hot-path throughput (ingest items/sec, sample_many points/sec) and the
//! perf-baseline gate.
//!
//! Usage:
//!   `cargo run -p privhp-bench --release --bin exp_throughput [-- --smoke]
//!    [--assert-baseline <file>]`
//!
//! Every run writes the flat baseline document
//! `bench_results/BENCH_throughput.json`; with `--assert-baseline <file>`
//! the run additionally compares itself against the stored baseline and
//! exits non-zero if any rate metric regressed by more than 25% (the CI
//! perf gate — the committed reference lives under
//! `bench_results/baseline/`).

use privhp_bench::experiments::{scale_from_args, throughput};
use privhp_bench::report::{assert_baseline, write_sweep_json};
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::run_sweeps;

/// Regression tolerance of the CI gate: >25% below baseline fails.
const TOLERANCE: f64 = 0.25;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline = args.iter().position(|a| a == "--assert-baseline").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--assert-baseline requires a file argument");
                std::process::exit(2);
            })
            .clone()
    });

    let scale = scale_from_args();
    let results = run_sweeps(vec![throughput::sweep(scale)], default_threads());
    let result = &results[0];
    throughput::report(result);
    write_sweep_json(result);

    if let Some(path) = baseline {
        let path = std::path::Path::new(&path);
        match assert_baseline(result, path, TOLERANCE) {
            Ok(regressions) if regressions.is_empty() => {
                println!("\nbaseline check: PASS (vs {})", path.display());
            }
            Ok(regressions) => {
                eprintln!("\nbaseline check: FAIL (vs {})", path.display());
                for r in &regressions {
                    eprintln!("  regression >{:.0}%: {r}", TOLERANCE * 100.0);
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("\nbaseline check: ERROR: {e}");
                std::process::exit(2);
            }
        }
    }
}
