//! **E13 — sketch-primitive ablation**: hash-based (Count-Min) vs
//! counter-based (Misra–Gries) frequency summaries for subdomain counting.
//!
//! Paper claim (§2.1): "The hashing-based private sketch employed by PrivHP
//! has a better error guarantee than the counter-based sketch used by
//! Biswas et al. Further, as the error of the hash-based sketch can be
//! expressed in terms of the tail of the dataset it composes nicely with
//! hierarchy pruning."
//!
//! Setup mirrors PrivHP's deep-level regime: many more subdomains than
//! memory words, both summaries *privatised* at the same ε. The private
//! CMS adds `Laplace(j/ε)` per cell (§3.4); the private Misra–Gries adds
//! `Laplace(2/ε)` to each retained counter (the Lebeda–Tetek counter
//! perturbation — we release the key set for free, which only *flatters*
//! MG, since a pure-ε key-set release would need extra thresholding).
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_ablation_sketch`

use privhp_bench::report::{fmt, write_json, Table};
use privhp_dp::laplace::Laplace;
use privhp_dp::rng::DeterministicRng;
use privhp_sketch::{MisraGries, PrivateCountMinSketch, SketchParams};
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    zipf_exponent: f64,
    memory_words: usize,
    cms_mean_abs_error: f64,
    mg_mean_abs_error: f64,
    cms_top_k_error: f64,
    mg_top_k_error: f64,
}

fn main() {
    let n = 1 << 16;
    let level = 14usize; // 16384 subdomains >> memory: the deep-level regime
    let k = 16usize;
    let epsilon = 1.0;
    println!("== E13: private Count-Min vs private Misra-Gries for subdomain counting ==");
    println!("   n={n}, 2^{level} subdomains, eps={epsilon}, equal memory budgets\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "zipf s",
        "memory (words)",
        "CMS mean |err|",
        "MG mean |err|",
        "CMS top-k |err|",
        "MG top-k |err|",
    ]);
    let trials = 8u64;

    for &exponent in &[0.0, 0.5, 1.0, 1.5, 2.0] {
        let mut wl = DeterministicRng::seed_from_u64(0xE13_000 + (exponent * 10.0) as u64);
        let data: Vec<f64> = ZipfCells::new(level, exponent, 1, 7).generate(n, &mut wl);
        // Exact subdomain frequencies.
        let cells = 1usize << level;
        let mut truth = vec![0.0f64; cells];
        for x in &data {
            truth[((x * cells as f64) as usize).min(cells - 1)] += 1.0;
        }
        let mut order: Vec<usize> = (0..cells).collect();
        order.sort_by(|&a, &b| truth[b].partial_cmp(&truth[a]).unwrap());

        // Equal memory: CMS j x width cells vs MG (key, count) pairs.
        let params = SketchParams::for_pruning(k, n); // width 4k=64, depth 16
        let memory = params.cells() + params.depth;
        let mg_capacity = memory / 2;

        let (mut cms_err, mut mg_err, mut cms_top, mut mg_top) = (0.0, 0.0, 0.0, 0.0);
        for trial in 0..trials {
            let mut rng =
                DeterministicRng::seed_from_u64(0xE13_A00 + trial * 31 + (exponent * 10.0) as u64);
            let mut cms = PrivateCountMinSketch::new(params, epsilon, 0xFEED + trial, &mut rng);
            let mut mg = MisraGries::new(mg_capacity);
            for x in &data {
                let cell = ((x * cells as f64) as u64).min(cells as u64 - 1);
                cms.update(cell, 1.0);
                mg.update(cell);
            }
            // Private MG: Laplace(2/eps) per retained counter (the counter
            // value's sensitivity is ≤ 2 under a one-element swap).
            let mg_noise = Laplace::new(2.0 / epsilon);
            let noisy_mg: std::collections::HashMap<u64, f64> = mg
                .heavy_hitters()
                .into_iter()
                .map(|(key, c)| (key, c + mg_noise.sample(&mut rng)))
                .collect();
            let mg_query = |c: u64| noisy_mg.get(&c).copied().unwrap_or(0.0);

            let mean_abs = |est: &dyn Fn(u64) -> f64| -> f64 {
                (0..cells as u64).map(|c| (est(c) - truth[c as usize]).abs()).sum::<f64>()
                    / cells as f64
            };
            cms_err += mean_abs(&|c| cms.query(c)) / trials as f64;
            mg_err += mean_abs(&mg_query) / trials as f64;
            let top_err = |est: &dyn Fn(u64) -> f64| -> f64 {
                order[..k].iter().map(|&c| (est(c as u64) - truth[c]).abs()).sum::<f64>() / k as f64
            };
            cms_top += top_err(&|c| cms.query(c)) / trials as f64;
            mg_top += top_err(&mg_query) / trials as f64;
        }

        table.row(vec![
            format!("{exponent}"),
            memory.to_string(),
            fmt(cms_err),
            fmt(mg_err),
            fmt(cms_top),
            fmt(mg_top),
        ]);
        rows.push(Row {
            zipf_exponent: exponent,
            memory_words: memory,
            cms_mean_abs_error: cms_err,
            mg_mean_abs_error: mg_err,
            cms_top_k_error: cms_top,
            mg_top_k_error: mg_top,
        });
    }
    table.print();
    write_json("exp_ablation_sketch", &rows);

    println!("\nExpected shape (§2.1): in the deep-level regime (subdomains >> memory),");
    println!("MG pays its n/(m+1) decrement bias on every non-retained key while the");
    println!("CMS error tracks the tail norm; CMS should win on flat-to-moderate skew");
    println!("and stay competitive on the pruning-critical top-k cells everywhere.");
}
