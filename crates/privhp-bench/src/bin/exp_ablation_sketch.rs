//! Thin driver: the grid and report live in
//! `privhp_bench::experiments::ablation_sketch`; this shim schedules the sweep on
//! the process-wide pool and prints the paper-facing tables.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_ablation_sketch [-- --smoke]`

fn main() {
    privhp_bench::experiments::run_one(privhp_bench::experiments::ablation_sketch::NAME);
}
