//! **E16 — §3.4 sketch-primitive choice inside PrivHP**: end-to-end W1 of
//! PrivHP with the private Count-Min sketch (the Theorem-3 default) vs the
//! private Count Sketch (Pagh–Thorup's unbiased estimator).
//!
//! The paper presents both as valid instantiations of Algorithm 1's
//! `sketch_l` (§3.3–3.4); Theorem 3 is proved for Count-Min because its
//! one-sided, L1-tail-bounded error composes with the top-k pruning
//! argument. This ablation measures whether that analytical preference
//! matters in practice: the Count Sketch's unbiasedness helps point
//! queries, but its two-sided error perturbs top-k *rankings* more.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_ablation_sketchkind`

use privhp_bench::eval::w1_generator_1d;
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_core::config::SketchKind;
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    zipf_exponent: f64,
    epsilon: f64,
    count_min_w1_mean: f64,
    count_min_w1_se: f64,
    count_sketch_w1_mean: f64,
    count_sketch_w1_se: f64,
}

fn main() {
    let n = 1 << 14;
    let k = 16usize;
    let trials = trials_from_env();
    let threads = default_threads();
    let domain = UnitInterval::new();

    println!("== E16 (§3.4): Count-Min vs Count Sketch inside PrivHP ==");
    println!("   n={n}, k={k}, {trials} trials\n");

    let mut rows = Vec::new();
    let mut table =
        Table::new(&["zipf s", "eps", "CMS E[W1]", "CountSketch E[W1]", "ratio CS/CMS"]);
    for &exponent in &[0.5, 1.0, 1.5] {
        for &epsilon in &[0.5, 1.0, 2.0] {
            let run_kind = |kind: SketchKind| -> Vec<f64> {
                run_trials(trials, threads, |trial| {
                    let seed = 0xE16_000 + trial as u64 * 97;
                    let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
                    let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                    let cfg = PrivHpConfig::for_domain(epsilon, n, k)
                        .with_seed(seed)
                        .with_sketch_kind(kind);
                    let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xBEEF);
                    let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng)
                        .expect("valid config");
                    w1_generator_1d(&data, g.tree(), &domain)
                })
            };
            let cms = Summary::of(&run_kind(SketchKind::CountMin));
            let cs = Summary::of(&run_kind(SketchKind::CountSketch));
            table.row(vec![
                format!("{exponent}"),
                format!("{epsilon}"),
                fmt_pm(cms.mean, cms.std_error),
                fmt_pm(cs.mean, cs.std_error),
                fmt(cs.mean / cms.mean),
            ]);
            rows.push(Row {
                zipf_exponent: exponent,
                epsilon,
                count_min_w1_mean: cms.mean,
                count_min_w1_se: cms.std_error,
                count_sketch_w1_mean: cs.mean,
                count_sketch_w1_se: cs.std_error,
            });
        }
    }
    table.print();
    write_json("exp_ablation_sketchkind", &rows);

    println!("\nExpected shape: the two primitives are within a small constant of each");
    println!("other end-to-end (consistency absorbs most point-estimate differences);");
    println!("Count-Min's one-sided error is what the Theorem-3 *analysis* needs, not a");
    println!("large practical win.");
}
