//! Thin driver: the grid and report live in
//! `privhp_bench::experiments::table1`; this shim schedules the sweep on
//! the process-wide pool and prints the paper-facing tables.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_table1 [-- --dim D] [-- --smoke]`

use privhp_bench::experiments::{scale_from_args, table1};
use privhp_bench::report::write_sweep_json;
use privhp_bench::runner::default_threads;
use privhp_bench::sweep::run_sweeps;

fn main() {
    let dim: usize = std::env::args()
        .skip_while(|a| a != "--dim")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    // Any dimension runs (the registry filters the method suite); only
    // d = 1 and d = 2 are part of the registered exp_all suite.
    let results = run_sweeps(vec![table1::sweep(dim, scale_from_args())], default_threads());
    table1::report(&results[0]);
    write_sweep_json(&results[0]);
}
