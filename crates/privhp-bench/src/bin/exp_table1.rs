//! **E1/E2 — Table 1**: accuracy (expected W1) vs memory for PrivHP and
//! every comparator, in `d = 1` and `d ≥ 2`.
//!
//! Paper claim (Table 1): PMM achieves the best accuracy with `O(εn)`
//! memory; PrivHP matches its *shape* with `M = O(k log²n)` memory at the
//! cost of an extra `‖tail_k‖/(M^{1/d}n)` term; SRRW pays an extra log
//! factor; Uniform is the data-independent floor.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_table1 [-- --dim D]`

use privhp_bench::methods::{run_method_1d, run_method_nd, Method, MethodRegistry};
use privhp_bench::report::{fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_domain::{Hypercube, UnitInterval};
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_workloads::{GaussianMixture, Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dim: usize,
    workload: String,
    n: usize,
    method: String,
    w1_mean: f64,
    w1_se: f64,
    memory_words_mean: f64,
    trials: usize,
}

fn main() {
    let dim: usize = std::env::args()
        .skip_while(|a| a != "--dim")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let epsilon = 1.0;
    let trials = trials_from_env();
    let threads = default_threads();
    let ns: Vec<usize> =
        if dim == 1 { vec![1 << 12, 1 << 14, 1 << 16] } else { vec![1 << 12, 1 << 14] };
    // The registry knows which methods run at which dimensionality; the
    // experiment only chooses the PrivHP pruning parameters to expand.
    let privhp_ks = [8usize, 32];
    let methods: Vec<Method> = if dim == 1 {
        MethodRegistry::<UnitInterval>::standard_1d().suite(1, &privhp_ks)
    } else {
        MethodRegistry::<Hypercube>::standard().suite(dim, &privhp_ks)
    };

    println!(
        "== E1/E2 (Table 1): accuracy vs memory, d={dim}, eps={epsilon}, {trials} trials ==\n"
    );
    let mut rows = Vec::new();
    let mut table = Table::new(&["workload", "n", "method", "E[W1]", "memory (words)"]);

    for workload_name in ["gaussian-mixture", "zipf(s=1.2)"] {
        for &n in &ns {
            for &method in methods.iter() {
                let outcomes = run_trials(trials, threads, |trial| {
                    let seed = 0xE1_0000 + (trial as u64) * 7919 + n as u64 + dim as u64 * 13;
                    let mut wl_rng = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
                    if dim == 1 {
                        let data: Vec<f64> = match workload_name {
                            "gaussian-mixture" => {
                                GaussianMixture::three_modes(1).generate(n, &mut wl_rng)
                            }
                            _ => ZipfCells::new(10, 1.2, 1, 99).generate(n, &mut wl_rng),
                        };
                        run_method_1d(method, epsilon, &data, seed)
                    } else {
                        let data: Vec<Vec<f64>> = match workload_name {
                            "gaussian-mixture" => {
                                GaussianMixture::three_modes(dim).generate(n, &mut wl_rng)
                            }
                            _ => ZipfCells::new(10, 1.2, dim, 99).generate(n, &mut wl_rng),
                        };
                        run_method_nd(method, epsilon, &data, dim, 9, seed)
                    }
                });
                let w1s: Vec<f64> = outcomes.iter().map(|o| o.w1).collect();
                let mems: Vec<f64> = outcomes.iter().map(|o| o.memory_words as f64).collect();
                let s = Summary::of(&w1s);
                let mem_mean = mems.iter().sum::<f64>() / mems.len() as f64;
                table.row(vec![
                    workload_name.into(),
                    n.to_string(),
                    method.name(),
                    fmt_pm(s.mean, s.std_error),
                    format!("{mem_mean:.0}"),
                ]);
                rows.push(Row {
                    dim,
                    workload: workload_name.into(),
                    n,
                    method: method.name(),
                    w1_mean: s.mean,
                    w1_se: s.std_error,
                    memory_words_mean: mem_mean,
                    trials,
                });
            }
        }
    }
    table.print();
    write_json(&format!("exp_table1_d{dim}"), &rows);

    println!("\nExpected shape (paper Table 1):");
    println!("  * NonPrivate < PMM <= PrivHP(k=32) <= PrivHP(k=8) << Uniform in W1;");
    println!("  * SRRW >= PMM (uniform budget split costs a log factor);");
    println!("  * memory: PrivHP O(k log^2 n) << PMM/SRRW O(eps*n); PrivHP memory ~flat in n.");
}
