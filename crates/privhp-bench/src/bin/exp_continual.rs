//! **E14 — continual-observation adaptation (§3.1)**: the cost of upgrading
//! from a single 1-pass release to a release-at-every-checkpoint stream.
//!
//! Paper remark (§3.1): PrivHP "can be adapted to continual observation by
//! replacing the counters and sketches with their continual observation
//! counterparts". The binary mechanism charges an extra `~log T` noise
//! factor per level; this experiment measures that factor empirically by
//! comparing, at equal ε, the one-shot release against the continual
//! variant's *final* release, plus the utility trajectory across
//! checkpoints.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_continual`

use privhp_bench::eval::w1_generator_1d;
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_core::{ContinualPrivHp, PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    one_shot_w1_mean: f64,
    one_shot_w1_se: f64,
    continual_final_w1_mean: f64,
    continual_final_w1_se: f64,
    overhead_factor: f64,
}

fn main() {
    let n = 1 << 13;
    let horizon_levels = 13usize;
    let k = 16usize;
    let trials = 16;
    let threads = default_threads();
    let domain = UnitInterval::new();

    println!("== E14 (§3.1): one-shot vs continual-observation PrivHP ==");
    println!("   n={n}, horizon 2^{horizon_levels}, k={k}, {trials} trials\n");

    let mut rows = Vec::new();
    let mut table =
        Table::new(&["eps", "one-shot E[W1]", "continual(final) E[W1]", "overhead factor"]);

    for &epsilon in &[1.0, 2.0, 4.0] {
        let one_shot: Vec<f64> = run_trials(trials, threads, |trial| {
            let seed = 0xE14_000 + trial as u64 * 61;
            let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
            let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
            let cfg = PrivHpConfig::for_domain(epsilon, n, k).with_seed(seed);
            let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xBEEF);
            let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng).unwrap();
            w1_generator_1d(&data, g.tree(), &domain)
        });
        let continual: Vec<f64> = run_trials(trials, threads, |trial| {
            let seed = 0xE14_000 + trial as u64 * 61;
            let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
            let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
            let cfg = PrivHpConfig::for_domain(epsilon, n, k).with_seed(seed);
            let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xBEEF);
            let mut c = ContinualPrivHp::new(domain, cfg, horizon_levels).unwrap();
            for x in &data {
                c.ingest(x, &mut rng);
            }
            w1_generator_1d(&data, c.release().tree(), &domain)
        });
        let s1 = Summary::of(&one_shot);
        let s2 = Summary::of(&continual);
        table.row(vec![
            format!("{epsilon}"),
            fmt_pm(s1.mean, s1.std_error),
            fmt_pm(s2.mean, s2.std_error),
            fmt(s2.mean / s1.mean),
        ]);
        rows.push(Row {
            epsilon,
            one_shot_w1_mean: s1.mean,
            one_shot_w1_se: s1.std_error,
            continual_final_w1_mean: s2.mean,
            continual_final_w1_se: s2.std_error,
            overhead_factor: s2.mean / s1.mean,
        });
    }
    table.print();
    write_json("exp_continual", &rows);

    // Trajectory: utility of intermediate releases (single run, eps = 4).
    println!("\nutility trajectory across checkpoints (eps=4, one run):");
    let mut wl = DeterministicRng::seed_from_u64(0xE14_FFF);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
    let cfg = PrivHpConfig::for_domain(4.0, n, k).with_seed(0xE14);
    let mut rng = DeterministicRng::seed_from_u64(0xE14_AAA);
    let mut c = ContinualPrivHp::new(domain, cfg, horizon_levels).unwrap();
    let mut traj = Table::new(&["items", "W1(data so far, release)"]);
    for (i, x) in data.iter().enumerate() {
        c.ingest(x, &mut rng);
        if (i + 1) % (n / 8) == 0 {
            let w1 = w1_generator_1d(&data[..=i], c.release().tree(), &domain);
            traj.row(vec![(i + 1).to_string(), fmt(w1)]);
        }
    }
    traj.print();

    println!("\nExpected shape: the continual variant pays a ~log(T)-flavoured constant");
    println!("factor over the one-shot release at equal eps (the binary mechanism's");
    println!("price for supporting releases at every checkpoint), shrinking as eps grows;");
    println!("trajectory W1 improves as data accumulates.");
}
