//! **E3 — Theorem 1 / Corollary 1 interpolation**: `E[W1]` as a function of
//! the memory allocation (sweeping the pruning parameter `k`).
//!
//! Paper claim: `k` provides "an almost smooth interpolation between space
//! usage and utility" — growing `k` moves PrivHP's utility toward PMM's
//! while memory grows only linearly in `k`; on skewed inputs the curve
//! flattens early because `‖tail_k‖₁` collapses.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_memory_sweep`

use privhp_bench::methods::{run_method_1d, Method};
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_core::corollary1_bound;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_sketch::tail::tail_norm_l1;
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    k: usize,
    w1_mean: f64,
    w1_se: f64,
    memory_words: f64,
    corollary1_prediction: f64,
    pmm_reference: f64,
}

fn main() {
    let n = 1 << 15;
    let epsilon = 1.0;
    let trials = trials_from_env();
    let threads = default_threads();
    let ks = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!("== E3 (Thm 1 / Cor 1): W1 vs memory via pruning parameter k ==");
    println!("   n={n}, eps={epsilon}, {trials} trials\n");

    let mut rows = Vec::new();
    for (workload_name, exponent) in [("zipf(s=1.5, skewed)", 1.5), ("uniform-cells(s=0)", 0.0)] {
        // PMM reference at the same budget (averaged over trials).
        let pmm_ref: Vec<f64> = run_trials(trials, threads, |trial| {
            let seed = 0xE3_0000 + trial as u64 * 101;
            let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
            let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
            run_method_1d(Method::Pmm, epsilon, &data, seed).w1
        });
        let pmm_mean = Summary::of(&pmm_ref).mean;

        // Representative tail norm for the Corollary-1 prediction column.
        let tail_for = |k: usize| {
            let mut wl = DeterministicRng::seed_from_u64(0xDA7A);
            let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
            let mut cells = vec![0.0f64; 1 << 10];
            for x in &data {
                cells[(x * 1024.0) as usize] += 1.0;
            }
            tail_norm_l1(&cells, k)
        };

        let mut table =
            Table::new(&["k", "E[W1]", "memory (words)", "Cor.1 prediction", "PMM ref"]);
        for &k in &ks {
            let outcomes = run_trials(trials, threads, |trial| {
                let seed = 0xE3_0000 + trial as u64 * 101 + k as u64;
                let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
                let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                run_method_1d(Method::PrivHp { k }, epsilon, &data, seed)
            });
            let w1s: Vec<f64> = outcomes.iter().map(|o| o.w1).collect();
            let mem = outcomes.iter().map(|o| o.memory_words as f64).sum::<f64>() / trials as f64;
            let s = Summary::of(&w1s);
            let pred = corollary1_bound(1, mem.max(2.0), epsilon, n, tail_for(k));
            table.row(vec![
                k.to_string(),
                fmt_pm(s.mean, s.std_error),
                format!("{mem:.0}"),
                fmt(pred),
                fmt(pmm_mean),
            ]);
            rows.push(Row {
                workload: workload_name.into(),
                k,
                w1_mean: s.mean,
                w1_se: s.std_error,
                memory_words: mem,
                corollary1_prediction: pred,
                pmm_reference: pmm_mean,
            });
        }
        println!("-- workload: {workload_name} --");
        table.print();
        println!();
    }
    write_json("exp_memory_sweep", &rows);

    println!("Expected shape (paper §5.2):");
    println!("  * skewed: W1 drops steeply with k then flattens once tail_k ~ 0;");
    println!("  * uniform: W1 improves slowly — the tail term dominates at every k;");
    println!("  * increasing k interpolates toward the PMM reference value.");
}
