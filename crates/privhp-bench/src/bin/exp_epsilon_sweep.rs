//! **E4 — ε-dependence of Theorem 1**: `E[W1]` as a function of the privacy
//! budget.
//!
//! Paper claim: the noise component of the bound scales as `1/(εn)` (d=1:
//! `log²(M)/(εn)`), so in the noise-dominated regime halving ε should
//! roughly double the distance, flattening once the tail/resolution terms
//! dominate.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_epsilon_sweep`

use privhp_bench::methods::{run_method_1d, Method};
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    epsilon: f64,
    method: String,
    w1_mean: f64,
    w1_se: f64,
}

fn main() {
    let n = 1 << 14;
    let trials = trials_from_env();
    let threads = default_threads();
    let epsilons = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    let methods = [Method::PrivHp { k: 16 }, Method::Pmm, Method::NonPrivate];

    println!("== E4: W1 vs privacy budget eps (n={n}, {trials} trials) ==\n");
    let mut rows = Vec::new();
    let mut table = Table::new(&["eps", "method", "E[W1]", "eps*E[W1] (should flatten)"]);
    for &epsilon in &epsilons {
        for &method in &methods {
            let outcomes = run_trials(trials, threads, |trial| {
                let seed = 0xE4_0000 + trial as u64 * 131 + (epsilon * 1000.0) as u64;
                let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
                let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                run_method_1d(method, epsilon, &data, seed)
            });
            let w1s: Vec<f64> = outcomes.iter().map(|o| o.w1).collect();
            let s = Summary::of(&w1s);
            table.row(vec![
                format!("{epsilon}"),
                method.name(),
                fmt_pm(s.mean, s.std_error),
                fmt(epsilon * s.mean),
            ]);
            rows.push(Row { epsilon, method: method.name(), w1_mean: s.mean, w1_se: s.std_error });
        }
    }
    table.print();
    write_json("exp_epsilon_sweep", &rows);

    println!("\nExpected shape (Thm 1): for the private methods, W1 ~ C/eps at small eps");
    println!("(eps*W1 roughly constant), flattening to the resolution floor as eps grows;");
    println!("NonPrivate is flat in eps (it ignores the budget).");
}
