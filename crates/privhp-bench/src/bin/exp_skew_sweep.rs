//! **E5 — tail/skew dependence (Δ_approx)**: `E[W1]` as input skew varies,
//! with the measured `‖tail_k‖₁` alongside.
//!
//! Paper claim: the pruning cost enters only through
//! `‖tail_k‖₁/(M^{1/d}n)` — skewed inputs (Zipf exponent up, tail down)
//! lose almost nothing to pruning, sparse inputs lose *nothing*
//! (`‖tail_k‖₁ = 0`), and flat inputs are the worst case. The paper even
//! notes pruning may *improve* utility on sparse inputs because fewer nodes
//! mean less noise (§5.2).
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_skew_sweep`

use privhp_bench::methods::{run_method_1d, Method};
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_sketch::tail::tail_norm_l1;
use privhp_workloads::{SparseClusters, Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    zipf_exponent: Option<f64>,
    tail_k_norm_over_n: f64,
    privhp_w1_mean: f64,
    privhp_w1_se: f64,
    pmm_w1_mean: f64,
}

fn main() {
    let n = 1 << 14;
    let epsilon = 1.0;
    let k = 16usize;
    let trials = trials_from_env();
    let threads = default_threads();

    println!("== E5: W1 vs input skew (n={n}, eps={epsilon}, k={k}, {trials} trials) ==\n");
    let mut rows = Vec::new();
    let mut table =
        Table::new(&["workload", "||tail_k||/n", "PrivHP E[W1]", "PMM E[W1]", "PrivHP/PMM"]);

    let mut run_case =
        |label: String, exponent: Option<f64>, gen: &(dyn Fn(u64) -> Vec<f64> + Sync)| {
            let hp: Vec<f64> = run_trials(trials, threads, |trial| {
                let seed = 0xE5_0000 + trial as u64 * 173;
                run_method_1d(Method::PrivHp { k }, epsilon, &gen(seed), seed).w1
            });
            let pm: Vec<f64> = run_trials(trials, threads, |trial| {
                let seed = 0xE5_0000 + trial as u64 * 173;
                run_method_1d(Method::Pmm, epsilon, &gen(seed), seed).w1
            });
            // Tail norm at the level-10 cell granularity of one representative
            // draw.
            let data = gen(0xE5_FFFF);
            let mut cells = vec![0.0f64; 1 << 10];
            for x in &data {
                cells[((x * 1024.0) as usize).min(1023)] += 1.0;
            }
            let tail = tail_norm_l1(&cells, k) / n as f64;
            let s_hp = Summary::of(&hp);
            let s_pm = Summary::of(&pm);
            table.row(vec![
                label.clone(),
                fmt(tail),
                fmt_pm(s_hp.mean, s_hp.std_error),
                fmt(s_pm.mean),
                fmt(s_hp.mean / s_pm.mean),
            ]);
            rows.push(Row {
                workload: label,
                zipf_exponent: exponent,
                tail_k_norm_over_n: tail,
                privhp_w1_mean: s_hp.mean,
                privhp_w1_se: s_hp.std_error,
                pmm_w1_mean: s_pm.mean,
            });
        };

    for s in [0.0, 0.5, 1.0, 1.5, 2.0] {
        run_case(format!("zipf(s={s})"), Some(s), &move |seed| {
            let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
            ZipfCells::new(10, s, 1, 7).generate(n, &mut rng)
        });
    }
    run_case("sparse(8 clusters)".into(), None, &|seed| {
        let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
        SparseClusters::new(8, 0.002, 3).generate(n, &mut rng)
    });

    table.print();
    write_json("exp_skew_sweep", &rows);

    println!("\nExpected shape (Thm 3 / §5.2): PrivHP/PMM ratio shrinks toward ~1 as the");
    println!("tail norm collapses; the sparse workload (tail ~ 0) pays no pruning cost.");
}
