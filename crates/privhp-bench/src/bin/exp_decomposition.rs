//! **E10 — Figure 4 / Theorem 3 proof pipeline**: measure the three W1 gaps
//! `μ_X → 𝒯_exact → 𝒯_approx → 𝒯_PrivHP` that Lemmas 7–9 bound.
//!
//! Paper structure (§7): the total error decomposes as
//!
//! * Step 1 (Lemma 7): exact pruning costs ≤ `‖tail_k^L‖₁/n · Σγ_l`;
//! * Step 2 (Lemma 8): noisy/approximate pruning decisions ("jumps");
//! * Step 3 (Lemma 9): noisy counts in the final sampling probabilities.
//!
//! We build all four trees on the same data, measure each adjacent gap in
//! exact 1-D `W1`, and print the Lemma-7 prediction next to the Step-1 gap.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_decomposition`

use privhp_bench::eval::{tree_to_segments, w1_generator_1d};
use privhp_bench::report::{fmt, fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_core::analysis::{exact_pruned_tree, level_counts, tail_norms, with_exact_counts};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::{HierarchicalDomain, UnitInterval};
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_metrics::wasserstein1d::w1_sample_vs_segments;
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    zipf_exponent: f64,
    step1_exact_pruning: f64,
    step1_lemma7_bound: f64,
    step2_approx_pruning_mean: f64,
    step3_noisy_counts_mean: f64,
    total_mean: f64,
}

fn main() {
    let n = 1 << 14;
    let epsilon = 1.0;
    let k = 16usize;
    let trials = trials_from_env();
    let threads = default_threads();
    let domain = UnitInterval::new();

    println!("== E10 (Fig. 4 / Thm 3): proof-pipeline decomposition ==");
    println!("   n={n}, eps={epsilon}, k={k}, {trials} trials\n");

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "zipf s",
        "Step1 W1(mu, T_exact)",
        "Lemma 7 bound",
        "Step2 W1(T_exact, T_approx)",
        "Step3 W1(T_approx, T_PrivHP)",
        "total W1(mu, T_PrivHP)",
    ]);

    for &exponent in &[0.5, 1.0, 1.5] {
        // Fixed data per skew level (the pipeline studies algorithm
        // randomness, not data randomness).
        let mut wl = DeterministicRng::seed_from_u64(0xE10_000 + (exponent * 10.0) as u64);
        let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
        let config = PrivHpConfig::for_domain(epsilon, n, k);
        let depth = config.depth.min(privhp_core::analysis::MAX_DENSE_DEPTH);
        let lc = level_counts(&domain, &data, depth);

        // Step 1 is deterministic: exact top-k pruning.
        let t_exact = exact_pruned_tree(&lc, config.l_star, k);
        let step1 = w1_generator_1d(&data, &t_exact, &domain);
        let tails = tail_norms(&lc, k);
        let gamma_sum: f64 = ((config.l_star + 1)..depth).map(|l| domain.level_diameter(l)).sum();
        let lemma7 = tails[depth] / n as f64 * gamma_sum;

        // Steps 2, 3 involve the algorithm's noise: average over trials.
        let outcomes: Vec<(f64, f64, f64)> = run_trials(trials, threads, |trial| {
            let seed = 0xE10_100 + trial as u64 * 211;
            let cfg = config.clone().with_seed(seed);
            let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xBEEF);
            let g =
                PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng).expect("valid config");
            // T_approx: PrivHP's structure with exact counts.
            let t_approx = with_exact_counts(g.tree(), &lc);
            let segs_exact = tree_to_segments(&t_exact, &domain);
            let segs_approx = tree_to_segments(&t_approx, &domain);
            // W1 between two piecewise-uniform trees via a dense common
            // quantile sample of one against the segments of the other.
            let probe: Vec<f64> = quantile_probe(&segs_exact, 8_192);
            let step2 = w1_sample_vs_segments(&probe, &segs_approx);
            let probe_a: Vec<f64> = quantile_probe(&segs_approx, 8_192);
            let step3 = w1_sample_vs_segments(&probe_a, &tree_to_segments(g.tree(), &domain));
            let total = w1_generator_1d(&data, g.tree(), &domain);
            (step2, step3, total)
        });
        let s2 = Summary::of(&outcomes.iter().map(|o| o.0).collect::<Vec<_>>());
        let s3 = Summary::of(&outcomes.iter().map(|o| o.1).collect::<Vec<_>>());
        let st = Summary::of(&outcomes.iter().map(|o| o.2).collect::<Vec<_>>());

        table.row(vec![
            format!("{exponent}"),
            fmt(step1),
            fmt(lemma7),
            fmt_pm(s2.mean, s2.std_error),
            fmt_pm(s3.mean, s3.std_error),
            fmt_pm(st.mean, st.std_error),
        ]);
        rows.push(Row {
            zipf_exponent: exponent,
            step1_exact_pruning: step1,
            step1_lemma7_bound: lemma7,
            step2_approx_pruning_mean: s2.mean,
            step3_noisy_counts_mean: s3.mean,
            total_mean: st.mean,
        });
    }
    table.print();
    write_json("exp_decomposition", &rows);

    println!("\nExpected shape (Lemmas 7-9): Step1 <= Lemma-7 bound and shrinks with skew;");
    println!("total <= Step1 + Step2 + Step3 + resolution (triangle inequality, within");
    println!("probe resolution); all three steps shrink as skew grows.");
}

/// Deterministic quantile sample of a piecewise-uniform density: `m` points
/// at the (i+0.5)/m quantiles, used to compare two segment densities via
/// the sample-vs-segments integral.
fn quantile_probe(segments: &[privhp_metrics::wasserstein1d::Segment], m: usize) -> Vec<f64> {
    let total: f64 = segments.iter().map(|s| s.mass.max(0.0)).sum();
    let mut sorted: Vec<_> = segments.iter().filter(|s| s.mass > 0.0).collect();
    sorted.sort_by(|a, b| a.lo.partial_cmp(&b.lo).unwrap());
    let mut out = Vec::with_capacity(m);
    let mut acc = 0.0;
    let mut idx = 0usize;
    for i in 0..m {
        let q = (i as f64 + 0.5) / m as f64 * total;
        while idx < sorted.len() && acc + sorted[idx].mass < q {
            acc += sorted[idx].mass;
            idx += 1;
        }
        let s = sorted[idx.min(sorted.len() - 1)];
        let frac = ((q - acc) / s.mass).clamp(0.0, 1.0);
        out.push(s.lo + frac * (s.hi - s.lo));
    }
    out
}
