//! **E7 — Figure 1 / Lemma 4**: measured Count-Min error against the
//! paper's expected-error bound.
//!
//! Paper claim (Lemma 4): for a CMS of width `2w`, depth `j`,
//! `E[v̂_x − v_x] ≤ ‖tail_w(v)‖₁/w + 2^{-j+1}·‖v‖₁/w` — the error is
//! governed by the *tail* of the input, which is why sketching "composes
//! nicely with pruning" (§7).
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_sketch_error`

use privhp_bench::report::{fmt, write_json, Table};
use privhp_dp::rng::DeterministicRng;
use privhp_sketch::tail::tail_norm_l1;
use privhp_sketch::{CountMinSketch, SketchParams};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    zipf_exponent: f64,
    width: usize,
    depth: usize,
    mean_error: f64,
    lemma4_bound: f64,
    ratio: f64,
}

fn zipf_vector(universe: usize, exponent: f64, total: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..universe).map(|r| 1.0 / ((r + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| (w / sum * total).round()).collect()
}

fn main() {
    println!("== E7 (Lemma 4 / Fig. 1): Count-Min error vs the tail bound ==\n");
    let universe = 4_096usize;
    let total = 100_000.0;
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "zipf s",
        "width(2w)",
        "depth j",
        "mean error",
        "Lemma 4 bound",
        "measured/bound",
    ]);

    for &exponent in &[0.0, 0.8, 1.3, 2.0] {
        for &(width, depth) in &[(32usize, 6usize), (64, 8), (128, 12), (256, 16)] {
            let v = zipf_vector(universe, exponent, total);
            let mut rng = DeterministicRng::seed_from_u64(
                0xE7_0000 + (exponent * 100.0) as u64 + width as u64,
            );
            // Average measured error over several independent hash seeds.
            let seeds = 8;
            let mut mean_err_acc = 0.0;
            for s in 0..seeds {
                let p = SketchParams::new(depth, width);
                let mut sketch = CountMinSketch::new(p, 0xFEED + s);
                for (i, &c) in v.iter().enumerate() {
                    if c > 0.0 {
                        sketch.update(i as u64, c);
                    }
                }
                let err: f64 =
                    (0..universe as u64).map(|i| sketch.query(i) - v[i as usize]).sum::<f64>()
                        / universe as f64;
                mean_err_acc += err;
            }
            let mean_err = mean_err_acc / seeds as f64;
            let w = width / 2;
            let tail = tail_norm_l1(&v, w);
            let l1: f64 = v.iter().sum();
            let bound = tail / w as f64 + 2f64.powi(-(depth as i32) + 1) * l1 / w as f64;
            table.row(vec![
                format!("{exponent}"),
                width.to_string(),
                depth.to_string(),
                fmt(mean_err),
                fmt(bound),
                if bound > 0.0 { fmt(mean_err / bound) } else { "inf".into() },
            ]);
            rows.push(Row {
                zipf_exponent: exponent,
                width,
                depth,
                mean_error: mean_err,
                lemma4_bound: bound,
                ratio: if bound > 0.0 { mean_err / bound } else { f64::INFINITY },
            });
            let _ = &mut rng;
        }
    }
    table.print();
    write_json("exp_sketch_error", &rows);

    println!("\nExpected shape (Lemma 4): measured/bound <= ~1 everywhere; error collapses");
    println!("as skew grows (the tail norm shrinks) and as width/depth grow.");
}
