//! **E12 — consistency ablation**: PrivHP with and without the consistency
//! step (Algorithm 3).
//!
//! Paper claim (§4.3): "An equivalent consistency step is common in private
//! histograms, where it is observed it can increase utility at the same
//! privacy budget." Disabling consistency is pure post-processing, so both
//! variants are equally private; only utility differs.
//!
//! Usage: `cargo run -p privhp-bench --release --bin exp_ablation_consistency`

use privhp_bench::eval::w1_generator_1d;
use privhp_bench::report::{fmt_pm, write_json, Table};
use privhp_bench::runner::{default_threads, run_trials};
use privhp_bench::trials_from_env;
use privhp_core::{GrowOptions, PrivHpBuilder, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_metrics::stats::Summary;
use privhp_workloads::{GaussianMixture, Workload, ZipfCells};
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    epsilon: f64,
    with_consistency_mean: f64,
    with_consistency_se: f64,
    without_consistency_mean: f64,
    without_consistency_se: f64,
    improvement_pct: f64,
}

fn main() {
    let n = 1 << 14;
    let k = 16usize;
    let trials = trials_from_env();
    let threads = default_threads();

    println!("== E12: consistency step ablation (n={n}, k={k}, {trials} trials) ==\n");
    let mut rows = Vec::new();
    let mut table =
        Table::new(&["workload", "eps", "W1 with consistency", "W1 without", "improvement"]);

    let domain = UnitInterval::new();
    for (wl_name, zipf_s) in [("gaussian-mixture", None), ("zipf(s=1.2)", Some(1.2))] {
        for &epsilon in &[0.5, 1.0, 2.0] {
            let run_variant = |enforce: bool| -> Vec<f64> {
                run_trials(trials, threads, |trial| {
                    let seed = 0xE12_000 + trial as u64 * 149;
                    let mut wl = DeterministicRng::seed_from_u64(seed ^ 0xDA7A);
                    let data: Vec<f64> = match zipf_s {
                        None => GaussianMixture::three_modes(1).generate(n, &mut wl),
                        Some(s) => ZipfCells::new(10, s, 1, 7).generate(n, &mut wl),
                    };
                    let cfg = PrivHpConfig::for_domain(epsilon, n, k).with_seed(seed);
                    let mut rng = DeterministicRng::seed_from_u64(seed ^ 0xBEEF);
                    let mut b = PrivHpBuilder::new(domain, cfg, &mut rng).expect("valid");
                    for x in &data {
                        b.ingest(x);
                    }
                    let g = b.finalize_with_options(GrowOptions { enforce_consistency: enforce });
                    w1_generator_1d(&data, g.tree(), &domain)
                })
            };
            let with_c = Summary::of(&run_variant(true));
            let without_c = Summary::of(&run_variant(false));
            let improvement = (without_c.mean - with_c.mean) / without_c.mean * 100.0;
            table.row(vec![
                wl_name.into(),
                format!("{epsilon}"),
                fmt_pm(with_c.mean, with_c.std_error),
                fmt_pm(without_c.mean, without_c.std_error),
                format!("{improvement:+.1}%"),
            ]);
            rows.push(Row {
                workload: wl_name.into(),
                epsilon,
                with_consistency_mean: with_c.mean,
                with_consistency_se: with_c.std_error,
                without_consistency_mean: without_c.mean,
                without_consistency_se: without_c.std_error,
                improvement_pct: improvement,
            });
        }
    }
    table.print();
    write_json("exp_ablation_consistency", &rows);

    println!("\nExpected shape (§4.3): consistency should improve (or at worst match) W1");
    println!("at every budget — the improvement is largest at small eps where noise");
    println!("violates the hierarchy constraints most.");
}
