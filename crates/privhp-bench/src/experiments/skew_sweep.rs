//! **E5 — tail/skew dependence (Δ_approx)**: `E[W1]` as input skew varies,
//! with the measured `‖tail_k‖₁` alongside.
//!
//! Paper claim: the pruning cost enters only through
//! `‖tail_k‖₁/(M^{1/d}n)` — skewed inputs (Zipf exponent up, tail down)
//! lose almost nothing to pruning, sparse inputs lose *nothing*
//! (`‖tail_k‖₁ = 0`), and flat inputs are the worst case. The paper even
//! notes pruning may *improve* utility on sparse inputs because fewer nodes
//! mean less noise (§5.2).

use super::Scale;
use crate::methods::{run_method_1d, Method};
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_dp::rng::DeterministicRng;
use privhp_sketch::tail::tail_norm_l1;
use privhp_workloads::{SparseClusters, Workload, ZipfCells};
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Sweep name.
pub const NAME: &str = "exp_skew_sweep";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const ZIPF_EXPONENTS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

type DataGen = Arc<dyn Fn(u64) -> Vec<f64> + Send + Sync>;

/// Adds the paired PrivHP/PMM cells for one workload; both see the same
/// per-trial data draw. The workload's `‖tail_k‖₁/n` (one representative
/// draw at level-10 cell granularity) rides along as a constant metric,
/// computed lazily on the pool and shared across the pair.
fn add_pair(
    sweep: &mut Sweep,
    label: &str,
    exponent: Option<f64>,
    wl_idx: u64,
    n: usize,
    trials: usize,
    gen: DataGen,
) {
    let data_stream = seed_stream(NAME, &[wl_idx]);
    let tail_shared: Arc<OnceLock<f64>> = Arc::new(OnceLock::new());

    for method in [Method::PrivHp { k: K }, Method::Pmm] {
        let gen = Arc::clone(&gen);
        let tail_shared = Arc::clone(&tail_shared);
        let mut cell = Cell::new(
            format!("{label}/{}", method.name()),
            trials,
            &["w1", "tail_over_n"],
            move |ctx| {
                let tail = *ctx.shared_setup(&tail_shared, || {
                    let data = gen(trial_seed(data_stream, u64::MAX));
                    let mut cells = vec![0.0f64; 1 << 10];
                    for x in &data {
                        cells[((x * 1024.0) as usize).min(1023)] += 1.0;
                    }
                    tail_norm_l1(&cells, K) / n as f64
                });
                let data = gen(trial_seed(data_stream, ctx.trial as u64));
                vec![run_method_1d(method, EPSILON, &data, ctx.seed).w1, tail]
            },
        )
        .with_param("workload", label)
        .with_param("method", method.name())
        .with_param("n", n);
        if let Some(s) = exponent {
            cell = cell.with_param("zipf_exponent", s);
        }
        sweep.cell(cell);
    }
}

/// Declares the skew grid: five Zipf exponents plus the sparse-cluster
/// workload, each as a paired (PrivHP, PMM) cell couple.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 14, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let mut sweep = Sweep::new(NAME);
    for (i, s) in ZIPF_EXPONENTS.into_iter().enumerate() {
        let gen: DataGen = Arc::new(move |seed| {
            let mut rng = DeterministicRng::seed_from_u64(seed);
            ZipfCells::new(10, s, 1, 7).generate(n, &mut rng)
        });
        add_pair(&mut sweep, &format!("zipf(s={s})"), Some(s), i as u64, n, trials, gen);
    }
    let gen: DataGen = Arc::new(move |seed| {
        let mut rng = DeterministicRng::seed_from_u64(seed);
        SparseClusters::new(8, 0.002, 3).generate(n, &mut rng)
    });
    add_pair(&mut sweep, "sparse(8 clusters)", None, 99, n, trials, gen);
    sweep
}

/// Prints the skew table (tail norm, PrivHP vs PMM, ratio).
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!(
        "== E5: W1 vs input skew (n={}, eps={EPSILON}, k={K}, {} trials) ==\n",
        first.param_display("n"),
        first.trials
    );
    let mut table =
        Table::new(&["workload", "||tail_k||/n", "PrivHP E[W1]", "PMM E[W1]", "PrivHP/PMM"]);
    for pair in result.cells.chunks(2) {
        let (hp, pm) = (&pair[0], &pair[1]);
        let tail = hp.summary("tail_over_n").mean;
        let s_hp = hp.summary("w1");
        let s_pm = pm.summary("w1");
        table.row(vec![
            hp.param_display("workload"),
            fmt(tail),
            fmt_pm(s_hp.mean, s_hp.std_error),
            fmt(s_pm.mean),
            fmt(s_hp.mean / s_pm.mean),
        ]);
    }
    table.print();

    println!("\nExpected shape (Thm 3 / §5.2): PrivHP/PMM ratio shrinks toward ~1 as the");
    println!("tail norm collapses; the sparse workload (tail ~ 0) pays no pruning cost.");
}
