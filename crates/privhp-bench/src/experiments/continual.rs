//! **E14 — continual-observation adaptation (§3.1)**: the cost of upgrading
//! from a single 1-pass release to a release-at-every-checkpoint stream.
//!
//! Paper remark (§3.1): PrivHP "can be adapted to continual observation by
//! replacing the counters and sketches with their continual observation
//! counterparts". The binary mechanism charges an extra `~log T` noise
//! factor per level; this experiment measures that factor empirically by
//! comparing, at equal ε, the one-shot release against the continual
//! variant's *final* release, plus the utility trajectory across
//! checkpoints.

use super::Scale;
use crate::eval::w1_generator_1d;
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use privhp_core::{ContinualPrivHp, PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_continual";

const K: usize = 16;
const EPSILONS: [f64; 3] = [1.0, 2.0, 4.0];
const CHECKPOINTS: usize = 8;
const TRAJ_METRICS: [&str; CHECKPOINTS] =
    ["w1@1/8", "w1@2/8", "w1@3/8", "w1@4/8", "w1@5/8", "w1@6/8", "w1@7/8", "w1@8/8"];

/// Declares the paired (one-shot, continual) cells per ε plus the
/// single-run trajectory cell; the arms of one ε share per-trial data and
/// build seeds, exactly as the paired comparison needs.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 13, 1 << 11);
    let horizon_levels = n.trailing_zeros() as usize;
    let trials = scale.trials(16);
    let domain = UnitInterval::new();

    let mut sweep = Sweep::new(NAME);
    for &epsilon in &EPSILONS {
        let pair_stream = seed_stream(NAME, &[epsilon.to_bits()]);
        let seeds = move |trial: usize| {
            (
                trial_seed(pair_stream, 3 * trial as u64),
                trial_seed(pair_stream, 3 * trial as u64 + 1),
                trial_seed(pair_stream, 3 * trial as u64 + 2),
            )
        };
        sweep.cell(
            Cell::new(format!("eps={epsilon}/one-shot"), trials, &["w1"], move |ctx| {
                let (data_seed, cfg_seed, rng_seed) = seeds(ctx.trial);
                let mut wl = DeterministicRng::seed_from_u64(data_seed);
                let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                let cfg = PrivHpConfig::for_domain(epsilon, n, K).with_seed(cfg_seed);
                let mut rng = DeterministicRng::seed_from_u64(rng_seed);
                let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng)
                    .expect("valid config");
                vec![w1_generator_1d(&data, g.tree(), &domain)]
            })
            .with_param("epsilon", epsilon)
            .with_param("variant", "one-shot")
            .with_param("n", n),
        );
        sweep.cell(
            Cell::new(format!("eps={epsilon}/continual"), trials, &["w1"], move |ctx| {
                let (data_seed, cfg_seed, rng_seed) = seeds(ctx.trial);
                let mut wl = DeterministicRng::seed_from_u64(data_seed);
                let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                let cfg = PrivHpConfig::for_domain(epsilon, n, K).with_seed(cfg_seed);
                let mut rng = DeterministicRng::seed_from_u64(rng_seed);
                let mut c =
                    ContinualPrivHp::new(domain, cfg, horizon_levels).expect("valid config");
                for x in &data {
                    c.ingest(x, &mut rng);
                }
                vec![w1_generator_1d(&data, c.release().tree(), &domain)]
            })
            .with_param("epsilon", epsilon)
            .with_param("variant", "continual")
            .with_param("n", n)
            .with_param("horizon_levels", horizon_levels),
        );
    }

    // Trajectory: utility of intermediate releases (single run, eps = 4).
    sweep.cell(
        Cell::new("trajectory(eps=4)", 1, &TRAJ_METRICS, move |ctx| {
            let mut wl = DeterministicRng::seed_from_u64(ctx.seed);
            let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
            let cfg = PrivHpConfig::for_domain(4.0, n, K).with_seed(ctx.seed ^ 0xAAAA);
            let mut rng = DeterministicRng::seed_from_u64(ctx.seed ^ 0x7777);
            let mut c = ContinualPrivHp::new(domain, cfg, horizon_levels).expect("valid config");
            let mut out = Vec::with_capacity(CHECKPOINTS);
            for (i, x) in data.iter().enumerate() {
                c.ingest(x, &mut rng);
                if (i + 1) % (n / CHECKPOINTS) == 0 && out.len() < CHECKPOINTS {
                    out.push(w1_generator_1d(&data[..=i], c.release().tree(), &domain));
                }
            }
            out
        })
        .with_param("epsilon", 4.0)
        .with_param("n", n),
    );
    sweep
}

/// Prints the one-shot vs continual comparison and the trajectory table.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    let n = first.param("n").and_then(|p| p.as_i64()).expect("n param");
    println!("== E14 (§3.1): one-shot vs continual-observation PrivHP ==");
    println!(
        "   n={n}, horizon 2^{}, k={K}, {} trials\n",
        (n as f64).log2().round() as usize,
        first.trials
    );

    let mut table =
        Table::new(&["eps", "one-shot E[W1]", "continual(final) E[W1]", "overhead factor"]);
    for &epsilon in &EPSILONS {
        let s1 = result.cell(&format!("eps={epsilon}/one-shot")).summary("w1");
        let s2 = result.cell(&format!("eps={epsilon}/continual")).summary("w1");
        table.row(vec![
            format!("{epsilon}"),
            fmt_pm(s1.mean, s1.std_error),
            fmt_pm(s2.mean, s2.std_error),
            fmt(s2.mean / s1.mean),
        ]);
    }
    table.print();

    println!("\nutility trajectory across checkpoints (eps=4, one run):");
    let traj = result.cell("trajectory(eps=4)");
    let mut t = Table::new(&["items", "W1(data so far, release)"]);
    for (i, metric) in TRAJ_METRICS.iter().enumerate() {
        let items = (n as usize / CHECKPOINTS) * (i + 1);
        t.row(vec![items.to_string(), fmt(traj.summary(metric).mean)]);
    }
    t.print();

    println!("\nExpected shape: the continual variant pays a ~log(T)-flavoured constant");
    println!("factor over the one-shot release at equal eps (the binary mechanism's");
    println!("price for supporting releases at every checkpoint), shrinking as eps grows;");
    println!("trajectory W1 improves as data accumulates.");
}
