//! The declarative experiment suite.
//!
//! Each experiment is a pair of functions — `sweep(scale)` *declares* its
//! (method × workload × parameter) grid as a [`Sweep`], and
//! `report(&SweepResult)` prints the paper-facing table plus the expected-
//! shape commentary from the finished results. The `exp_*` binaries are
//! thin shims over [`run_one`]; `exp_all` feeds every sweep of [`all`] into
//! one [`crate::sweep::run_sweeps`] pool so cross-experiment cells
//! interleave and suite wall-clock approaches the longest cell chain
//! instead of the sum of the sweeps.
//!
//! [`Scale::Smoke`] shrinks stream sizes and trial counts so the whole
//! suite (`exp_all --smoke`, also the CI step and the integration test)
//! completes in seconds while still exercising every grid.

pub mod ablation_consistency;
pub mod ablation_sketch;
pub mod ablation_sketchkind;
pub mod continual;
pub mod decomposition;
pub mod downstream;
pub mod epsilon_sweep;
pub mod memory_sweep;
pub mod privacy_audit;
pub mod release_load;
pub mod scaling;
pub mod serve;
pub mod sketch_error;
pub mod skew_sweep;
pub mod table1;
pub mod throughput;

use crate::report::write_sweep_json;
use crate::runner::default_threads;
use crate::sweep::{run_sweeps, Sweep, SweepResult};

/// How big to build a sweep: the paper-scale grid or a seconds-long smoke
/// version of the same grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale streams and trial counts.
    Full,
    /// Shrunk streams; trials come from `PRIVHP_TRIALS` (default 2).
    Smoke,
}

impl Scale {
    /// Picks a size by scale.
    pub fn pick(self, full: usize, smoke: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => smoke,
        }
    }

    /// Picks a trial count: `full` at full scale; at smoke scale
    /// `PRIVHP_TRIALS` (floor 2, default 2).
    pub fn trials(self, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Smoke => crate::trials_from_env_or(2),
        }
    }
}

/// One registered experiment: its JSON/file name, grid builder, and report
/// printer.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Sweep name (also the `bench_results/<name>.json` stem).
    pub name: &'static str,
    /// Declares the grid at the given scale.
    pub build: fn(Scale) -> Sweep,
    /// Prints the paper-facing table and expected-shape commentary.
    pub report: fn(&SweepResult),
}

/// Every registered experiment, in the paper's E-numbering order. This is
/// the suite `exp_all` runs and the smoke test exercises.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "exp_table1_d1",
            build: |s| table1::sweep(1, s),
            report: table1::report,
        },
        Experiment {
            name: "exp_table1_d2",
            build: |s| table1::sweep(2, s),
            report: table1::report,
        },
        Experiment {
            name: memory_sweep::NAME,
            build: memory_sweep::sweep,
            report: memory_sweep::report,
        },
        Experiment {
            name: epsilon_sweep::NAME,
            build: epsilon_sweep::sweep,
            report: epsilon_sweep::report,
        },
        Experiment { name: skew_sweep::NAME, build: skew_sweep::sweep, report: skew_sweep::report },
        Experiment { name: scaling::NAME, build: scaling::sweep, report: scaling::report },
        Experiment {
            name: sketch_error::NAME,
            build: sketch_error::sweep,
            report: sketch_error::report,
        },
        Experiment {
            name: decomposition::NAME,
            build: decomposition::sweep,
            report: decomposition::report,
        },
        Experiment {
            name: privacy_audit::NAME,
            build: privacy_audit::sweep,
            report: privacy_audit::report,
        },
        Experiment {
            name: ablation_consistency::NAME,
            build: ablation_consistency::sweep,
            report: ablation_consistency::report,
        },
        Experiment {
            name: ablation_sketch::NAME,
            build: ablation_sketch::sweep,
            report: ablation_sketch::report,
        },
        Experiment { name: continual::NAME, build: continual::sweep, report: continual::report },
        Experiment { name: downstream::NAME, build: downstream::sweep, report: downstream::report },
        Experiment {
            name: ablation_sketchkind::NAME,
            build: ablation_sketchkind::sweep,
            report: ablation_sketchkind::report,
        },
        Experiment { name: throughput::NAME, build: throughput::sweep, report: throughput::report },
        Experiment { name: serve::NAME, build: serve::sweep, report: serve::report },
        Experiment {
            name: release_load::NAME,
            build: release_load::sweep,
            report: release_load::report,
        },
    ]
}

/// Builds every registered sweep at the given scale (declaration only — no
/// tasks run until the sweeps are handed to the scheduler).
pub fn build_all(scale: Scale) -> Vec<Sweep> {
    all().iter().map(|e| (e.build)(scale)).collect()
}

/// `--smoke` on any experiment binary selects the smoke scale.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    }
}

/// Runs one experiment end-to-end: build the grid, schedule it on the
/// default pool, print the report, write the sweep JSON.
pub fn run_experiment(exp: &Experiment, scale: Scale) {
    let results = run_sweeps(vec![(exp.build)(scale)], default_threads());
    let result = &results[0];
    (exp.report)(result);
    write_sweep_json(result);
}

/// Entry point for the thin `exp_*` binaries: look up a registered
/// experiment by name and run it at the scale given by the CLI args.
pub fn run_one(name: &str) {
    let exp = all()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("experiment `{name}` is not registered"));
    run_experiment(&exp, scale_from_args());
}
