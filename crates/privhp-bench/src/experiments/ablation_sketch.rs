//! **E13 — sketch-primitive ablation**: hash-based (Count-Min) vs
//! counter-based (Misra–Gries) frequency summaries for subdomain counting.
//!
//! Paper claim (§2.1): "The hashing-based private sketch employed by PrivHP
//! has a better error guarantee than the counter-based sketch used by
//! Biswas et al. Further, as the error of the hash-based sketch can be
//! expressed in terms of the tail of the dataset it composes nicely with
//! hierarchy pruning."
//!
//! Setup mirrors PrivHP's deep-level regime: many more subdomains than
//! memory words, both summaries *privatised* at the same ε. The private
//! CMS adds `Laplace(j/ε)` per cell (§3.4); the private Misra–Gries adds
//! `Laplace(2/ε)` to each retained counter (the Lebeda–Tetek counter
//! perturbation — we release the key set for free, which only *flatters*
//! MG, since a pure-ε key-set release would need extra thresholding).

use super::Scale;
use crate::report::{fmt, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use privhp_dp::laplace::Laplace;
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_sketch::{MisraGries, PrivateCountMinSketch, SketchParams};
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Sweep name.
pub const NAME: &str = "exp_ablation_sketch";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const ZIPF_EXPONENTS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

/// Declares one cell per skew level; trials range over sketch/noise seeds
/// against a fixed per-level dataset (computed lazily on the pool, shared
/// across the cell's trials).
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 16, 1 << 12);
    // Deep-level regime: far more subdomains than memory words.
    let level = scale.pick(14, 8);
    let trials = scale.trials(8);
    let cells_count = 1usize << level;

    let mut sweep = Sweep::new(NAME);
    for &exponent in &ZIPF_EXPONENTS {
        let data_stream = seed_stream(NAME, &[exponent.to_bits()]);
        // Equal memory: CMS j x width cells vs MG (key, count) pairs.
        let params = SketchParams::for_pruning(K, n);
        let memory = params.cells() + params.depth;
        let mg_capacity = memory / 2;
        // Fixed per-level dataset + exact frequencies + skew order,
        // computed lazily on the pool by the first trial.
        type SketchData = (Vec<f64>, Vec<f64>, Vec<usize>);
        let shared: Arc<OnceLock<SketchData>> = Arc::new(OnceLock::new());

        sweep.cell(
            Cell::new(
                format!("zipf(s={exponent})"),
                trials,
                &[
                    "cms_mean_abs_error",
                    "mg_mean_abs_error",
                    "cms_top_k_error",
                    "mg_top_k_error",
                    "memory_words",
                ],
                move |ctx| {
                    let (data, truth, order) = ctx.shared_setup(&shared, || {
                        let mut wl = DeterministicRng::seed_from_u64(trial_seed(data_stream, 0));
                        let data: Vec<f64> =
                            ZipfCells::new(level, exponent, 1, 7).generate(n, &mut wl);
                        let mut truth = vec![0.0f64; cells_count];
                        for x in &data {
                            truth[((x * cells_count as f64) as usize).min(cells_count - 1)] += 1.0;
                        }
                        let mut order: Vec<usize> = (0..cells_count).collect();
                        order.sort_by(|&a, &b| truth[b].partial_cmp(&truth[a]).unwrap());
                        (data, truth, order)
                    });
                    let mut rng = DeterministicRng::seed_from_u64(mix64(ctx.seed));
                    let mut cms = PrivateCountMinSketch::new(
                        params,
                        EPSILON,
                        mix64(ctx.seed ^ 0xFEED),
                        &mut rng,
                    );
                    let mut mg = MisraGries::new(mg_capacity);
                    for x in data {
                        let cell = ((x * cells_count as f64) as u64).min(cells_count as u64 - 1);
                        cms.update(cell, 1.0);
                        mg.update(cell);
                    }
                    // Private MG: Laplace(2/eps) per retained counter (the
                    // counter value's sensitivity is ≤ 2 under a one-element
                    // swap).
                    let mg_noise = Laplace::new(2.0 / EPSILON);
                    let noisy_mg: std::collections::HashMap<u64, f64> = mg
                        .heavy_hitters()
                        .into_iter()
                        .map(|(key, c)| (key, c + mg_noise.sample(&mut rng)))
                        .collect();
                    let mg_query = |c: u64| noisy_mg.get(&c).copied().unwrap_or(0.0);

                    let mean_abs = |est: &dyn Fn(u64) -> f64| -> f64 {
                        (0..cells_count as u64)
                            .map(|c| (est(c) - truth[c as usize]).abs())
                            .sum::<f64>()
                            / cells_count as f64
                    };
                    let top_err = |est: &dyn Fn(u64) -> f64| -> f64 {
                        order[..K].iter().map(|&c| (est(c as u64) - truth[c]).abs()).sum::<f64>()
                            / K as f64
                    };
                    vec![
                        mean_abs(&|c| cms.query(c)),
                        mean_abs(&mg_query),
                        top_err(&|c| cms.query(c)),
                        top_err(&mg_query),
                        memory as f64,
                    ]
                },
            )
            .with_param("zipf_exponent", exponent)
            .with_param("n", n)
            .with_param("level", level)
            .with_param("epsilon", EPSILON),
        );
    }
    sweep
}

/// Prints the CMS-vs-MG error comparison.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!("== E13: private Count-Min vs private Misra-Gries for subdomain counting ==");
    println!(
        "   n={}, 2^{} subdomains, eps={EPSILON}, equal memory budgets\n",
        first.param_display("n"),
        first.param_display("level")
    );

    let mut table = Table::new(&[
        "zipf s",
        "memory (words)",
        "CMS mean |err|",
        "MG mean |err|",
        "CMS top-k |err|",
        "MG top-k |err|",
    ]);
    for cell in &result.cells {
        table.row(vec![
            cell.param_display("zipf_exponent"),
            format!("{:.0}", cell.summary("memory_words").mean),
            fmt(cell.summary("cms_mean_abs_error").mean),
            fmt(cell.summary("mg_mean_abs_error").mean),
            fmt(cell.summary("cms_top_k_error").mean),
            fmt(cell.summary("mg_top_k_error").mean),
        ]);
    }
    table.print();

    println!("\nExpected shape (§2.1): in the deep-level regime (subdomains >> memory),");
    println!("MG pays its n/(m+1) decrement bias on every non-retained key while the");
    println!("CMS error tracks the tail norm; CMS should win on flat-to-moderate skew");
    println!("and stay competitive on the pruning-critical top-k cells everywhere.");
}
