//! **exp_serve — served throughput and latency under concurrent load.**
//!
//! The serving layer's contract is "millions of users against one release
//! with zero further privacy cost"; this experiment measures what one
//! server actually sustains. Each cell boots a real in-process
//! [`Server`] (worker pool + bounded queue, exactly the production
//! configuration) on an ephemeral port and drives it with concurrent
//! [`Client`] threads over real sockets:
//!
//! * `bulk/json` — bulk `sample` requests answered in the line-JSON
//!   encoding (points serialised as a JSON array);
//! * `bulk/binary` — the same draws over the negotiated binary frame
//!   (header line + length-prefixed little-endian `f64` payload). Before
//!   timing, the harness asserts the binary payload is **bit-identical**
//!   to the JSON path at an equal seed — the encoding is transport, not
//!   semantics — so the two cells price the serialisation alone;
//! * `query/point` and `query/cdf` — small closed-form queries, the
//!   latency-bound rather than bandwidth-bound regime.
//!
//! Per-request latency lands in the serve crate's own log-spaced
//! [`LatencyHistogram`], whose `quantile` estimator yields the reported
//! p50/p99/p999. Rates feed the cross-PR perf gate: every run rewrites
//! `bench_results/BENCH_serve.json`, and the `exp_serve` binary's
//! `--assert-baseline` compares the `*_per_sec` metrics against the
//! committed reference under `bench_results/baseline/` (wider tolerance
//! than `exp_throughput` — socket scheduling adds noise CPU-bound
//! kernels do not have).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use super::Scale;
use crate::report::Table;
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_serve::{
    oneshot, Client, LatencyHistogram, LoadedRelease, Registry, Server, ServerConfig,
};
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use serde::Value;

/// Sweep name.
pub const NAME: &str = "exp_serve";

const EPSILON: f64 = 1.0;
const K: usize = 16;
/// Concurrent client connections; the server pool is sized to match.
const CLIENTS: usize = 4;
const BULK_METRICS: [&str; 5] =
    ["requests_per_sec", "points_per_sec", "p50_us", "p99_us", "p999_us"];
const QUERY_METRICS: [&str; 4] = ["requests_per_sec", "p50_us", "p99_us", "p999_us"];

/// The request mix a cell drives.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Bulk `sample` over the line-JSON encoding.
    BulkJson,
    /// Bulk `sample` over the negotiated binary frame.
    BulkBinary,
    /// Closed-form point queries (leaf + mass).
    Point,
    /// CDF evaluations.
    Cdf,
}

/// The release every cell serves (heavy to build, identical across cells,
/// so the first trial to run pays for it once).
type SharedRelease = Arc<OnceLock<ReleaseFile>>;

fn build_release(n: usize, seed: u64) -> ReleaseFile {
    let mut wl = DeterministicRng::seed_from_u64(mix64(seed ^ 0xDA7A));
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
    let config = PrivHpConfig::for_domain(EPSILON, n, K).with_seed(seed);
    let mut rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0xBEEF));
    let g =
        PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).expect("valid config");
    ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
}

/// Asserts one served binary draw equals the served JSON draw bit for bit
/// (untimed; runs before the measured load so a transport bug fails the
/// experiment rather than skewing it).
fn assert_bit_identity(addr: &str, n: usize, seed: u64) {
    let req = format!("{{\"op\":\"sample\",\"release\":\"r\",\"n\":{n},\"seed\":{seed}}}");
    let line = oneshot(addr, &req).expect("json sample");
    let parsed = serde_json::parse_value_str(&line).expect("parseable json sample");
    let json_points: Vec<f64> = parsed
        .get("points")
        .and_then(Value::as_array)
        .expect("points array")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let mut c = Client::connect(addr).expect("connect");
    c.set_binary().expect("negotiate binary");
    let (_, payload) = c.send_expect_payload(&req).expect("binary sample");
    let lanes = payload.expect("binary payload");
    assert_eq!(lanes.len(), json_points.len(), "binary/JSON draw lengths differ");
    for (b, j) in lanes.iter().zip(&json_points) {
        assert_eq!(b.to_bits(), j.to_bits(), "binary {b} != json {j} at seed {seed}");
    }
}

/// Boots a server over `release`, drives it with [`CLIENTS`] concurrent
/// connections issuing `reqs_per_client` requests each in the given mode,
/// and returns the cell's metric vector.
fn measure(
    release: &ReleaseFile,
    mode: Mode,
    n: usize,
    reqs_per_client: usize,
    seed: u64,
) -> Vec<f64> {
    let registry = Registry::new();
    registry.insert(LoadedRelease::from_release("r", release.clone()));
    let config = ServerConfig {
        workers: CLIENTS,
        queue_depth: 64,
        max_sample_n: n.max(1),
        ..ServerConfig::default()
    };
    let server =
        Arc::new(Server::bind_with("127.0.0.1:0", registry, config).expect("bind ephemeral port"));
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let server_thread = std::thread::spawn(move || runner.run());

    if mode == Mode::BulkBinary {
        assert_bit_identity(&addr, n.min(256), mix64(seed ^ 0x1DE7));
    }

    let hist = LatencyHistogram::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (addr, hist) = (&addr, &hist);
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                if mode == Mode::BulkBinary {
                    c.set_binary().expect("negotiate binary");
                }
                for i in 0..reqs_per_client {
                    let rseed = mix64(seed ^ ((client as u64) << 32) ^ i as u64);
                    let req = match mode {
                        Mode::BulkJson | Mode::BulkBinary => format!(
                            "{{\"op\":\"sample\",\"release\":\"r\",\"n\":{n},\"seed\":{rseed}}}"
                        ),
                        Mode::Point => {
                            let x = (rseed >> 11) as f64 / (1u64 << 53) as f64;
                            format!("{{\"op\":\"query\",\"release\":\"r\",\"point\":{x}}}")
                        }
                        Mode::Cdf => {
                            let x = (rseed >> 11) as f64 / (1u64 << 53) as f64;
                            format!("{{\"op\":\"cdf\",\"release\":\"r\",\"x\":{x}}}")
                        }
                    };
                    let t = Instant::now();
                    if mode == Mode::BulkBinary {
                        let (header, payload) =
                            c.send_expect_payload(&req).expect("binary response");
                        let lanes = payload.unwrap_or_else(|| panic!("no payload: {header}"));
                        assert_eq!(lanes.len(), n, "whole draw expected");
                    } else {
                        let line = c.send(&req).expect("response");
                        assert!(line.starts_with("{\"ok\":true"), "request failed: {line}");
                    }
                    hist.record(t.elapsed());
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}");
    server_thread.join().expect("serve loop exits");

    let requests = (CLIENTS * reqs_per_client) as f64;
    let mut metrics = vec![requests / wall];
    if matches!(mode, Mode::BulkJson | Mode::BulkBinary) {
        metrics.push(requests * n as f64 / wall);
    }
    metrics.extend([hist.quantile(0.50), hist.quantile(0.99), hist.quantile(0.999)]);
    metrics
}

/// Declares the four exclusive load cells. The full-scale bulk draw is
/// n = 2^20 points per request — past the protocol's default cap, so the
/// server is booted with a raised `max_sample_n` exactly as a production
/// deployment would pass `--max-sample-n`.
pub fn sweep(scale: Scale) -> Sweep {
    let bulk_exp = scale.pick(20, 12);
    let data_exp = scale.pick(16, 11);
    let n_bulk = 1usize << bulk_exp;
    let bulk_reqs = scale.pick(6, 4);
    let query_reqs = scale.pick(4096, 128);
    let n_data = 1usize << data_exp;
    let trials = scale.trials(3);
    let stream = seed_stream(NAME, &[]);
    let shared: SharedRelease = Arc::new(OnceLock::new());

    // Labels carry the sizes so smoke- and full-scale cells land as
    // distinct entries in the merged committed baseline (the same scheme
    // exp_throughput uses) — `assert_baseline` then only ever compares a
    // run against baseline cells of its own scale.
    let mut sweep = Sweep::new(NAME);
    for (label, mode, reqs, metrics) in [
        (format!("bulk/json/n=2^{bulk_exp}"), Mode::BulkJson, bulk_reqs, &BULK_METRICS[..]),
        (format!("bulk/binary/n=2^{bulk_exp}"), Mode::BulkBinary, bulk_reqs, &BULK_METRICS[..]),
        (format!("query/point/data=2^{data_exp}"), Mode::Point, query_reqs, &QUERY_METRICS[..]),
        (format!("query/cdf/data=2^{data_exp}"), Mode::Cdf, query_reqs, &QUERY_METRICS[..]),
    ] {
        let shared = Arc::clone(&shared);
        let mut cell = Cell::new(label, trials, metrics, move |ctx| {
            let release =
                ctx.shared_setup(&shared, || build_release(n_data, trial_seed(stream, 0)));
            measure(release, mode, n_bulk, reqs, ctx.seed)
        })
        .with_param("clients", CLIENTS)
        .with_param("requests_per_client", reqs)
        .with_param("n_data", n_data)
        .with_param("epsilon", EPSILON)
        .with_param("k", K)
        .exclusive();
        if matches!(mode, Mode::BulkJson | Mode::BulkBinary) {
            cell = cell.with_param("n", n_bulk);
        }
        sweep.cell(cell);
    }
    sweep
}

/// Prints the served-load table and refreshes
/// `bench_results/BENCH_serve.json`.
pub fn report(result: &SweepResult) {
    println!(
        "== Served load: {CLIENTS} concurrent clients against one worker-pool server \
         (eps={EPSILON}, k={K}) ==\n"
    );
    let mut table = Table::new(&["cell", "req/s", "points/s", "p50 us", "p99 us", "p999 us"]);
    for cell in &result.cells {
        let points = if cell.metrics.contains(&"points_per_sec") {
            format!("{:.0}", cell.summary("points_per_sec").mean)
        } else {
            "-".into()
        };
        table.row(vec![
            cell.label.clone(),
            format!("{:.1}", cell.summary("requests_per_sec").mean),
            points,
            format!("{:.0}", cell.summary("p50_us").mean),
            format!("{:.0}", cell.summary("p99_us").mean),
            format!("{:.0}", cell.summary("p999_us").mean),
        ]);
    }
    table.print();
    println!("\nbulk cells draw the same seeded points over both encodings (asserted");
    println!("bit-identical before timing); the binary frame skips JSON number");
    println!("formatting/parsing, so its points/s advantage is pure serialisation cost.");
    println!("query cells are latency-bound: tiny frames, closed-form answers.");
    println!("Quantiles come from the server-side log-spaced latency histogram.");
    println!("Compare across PRs via bench_results/BENCH_serve.json; the committed");
    println!("reference lives in bench_results/baseline/ (see README \"Serving\").");
    crate::report::write_baseline_json(result);
}
