//! **E10 — Figure 4 / Theorem 3 proof pipeline**: measure the three W1 gaps
//! `μ_X → 𝒯_exact → 𝒯_approx → 𝒯_PrivHP` that Lemmas 7–9 bound.
//!
//! Paper structure (§7): the total error decomposes as
//!
//! * Step 1 (Lemma 7): exact pruning costs ≤ `‖tail_k^L‖₁/n · Σγ_l`;
//! * Step 2 (Lemma 8): noisy/approximate pruning decisions ("jumps");
//! * Step 3 (Lemma 9): noisy counts in the final sampling probabilities.
//!
//! All four trees build on the same fixed data per skew level (the pipeline
//! studies algorithm randomness, not data randomness); the deterministic
//! Step-1/Lemma-7 values ride along as constant metrics. Tree-vs-tree gaps
//! are piecewise-uniform-vs-piecewise-uniform, so they are evaluated in
//! closed form ([`w1_between_segments`] — no probe resolution error). The
//! per-level setup (data, dense level counts, exact pruned tree) is heavy,
//! so it is computed lazily by the first trial that needs it — on the pool,
//! counted in the cell's timings.

use super::Scale;
use crate::eval::{tree_to_segments, w1_generator_1d};
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_core::analysis::{exact_pruned_tree, level_counts, tail_norms, with_exact_counts};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::{HierarchicalDomain, UnitInterval};
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_metrics::wasserstein1d::{w1_between_segments, Segment};
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Sweep name.
pub const NAME: &str = "exp_decomposition";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const ZIPF_EXPONENTS: [f64; 3] = [0.5, 1.0, 1.5];

/// Deterministic per-skew-level setup, shared by every trial of a cell.
struct Setup {
    data: Vec<f64>,
    lc: Vec<Vec<f64>>,
    segs_exact: Vec<Segment>,
    step1: f64,
    lemma7: f64,
}

/// Declares one cell per skew level with the three noisy gaps as trial
/// metrics and the deterministic Step-1/Lemma-7 values as constant metrics.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 14, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let domain = UnitInterval::new();

    let mut sweep = Sweep::new(NAME);
    for &exponent in &ZIPF_EXPONENTS {
        let data_stream = seed_stream(NAME, &[exponent.to_bits()]);
        let config = PrivHpConfig::for_domain(EPSILON, n, K);
        let depth = config.depth.min(privhp_core::analysis::MAX_DENSE_DEPTH);
        let l_star = config.l_star;
        let setup: Arc<OnceLock<Setup>> = Arc::new(OnceLock::new());

        sweep.cell(
            Cell::new(
                format!("zipf(s={exponent})"),
                trials,
                &["step2", "step3", "total", "step1", "lemma7"],
                move |ctx| {
                    let setup = ctx.shared_setup(&setup, || {
                        let mut wl = DeterministicRng::seed_from_u64(trial_seed(data_stream, 0));
                        let data: Vec<f64> =
                            ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                        let lc = level_counts(&domain, &data, depth);
                        // Step 1 is deterministic: exact top-k pruning.
                        let t_exact = exact_pruned_tree(&lc, l_star, K);
                        let step1 = w1_generator_1d(&data, &t_exact, &domain);
                        let tails = tail_norms(&lc, K);
                        let gamma_sum: f64 =
                            ((l_star + 1)..depth).map(|l| domain.level_diameter(l)).sum();
                        let lemma7 = tails[depth] / n as f64 * gamma_sum;
                        let segs_exact = tree_to_segments(&t_exact, &domain);
                        Setup { data, lc, segs_exact, step1, lemma7 }
                    });
                    let cfg = config.clone().with_seed(ctx.seed);
                    let mut rng = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xBEEF));
                    let g = PrivHp::build(&domain, cfg, setup.data.iter().copied(), &mut rng)
                        .expect("valid config");
                    // T_approx: PrivHP's structure with exact counts. All
                    // three trees are piecewise-uniform, so the pairwise
                    // gaps have a closed form.
                    let t_approx = with_exact_counts(g.tree(), &setup.lc);
                    let segs_approx = tree_to_segments(&t_approx, &domain);
                    let step2 = w1_between_segments(&setup.segs_exact, &segs_approx);
                    let step3 =
                        w1_between_segments(&segs_approx, &tree_to_segments(g.tree(), &domain));
                    let total = w1_generator_1d(&setup.data, g.tree(), &domain);
                    vec![step2, step3, total, setup.step1, setup.lemma7]
                },
            )
            .with_param("zipf_exponent", exponent)
            .with_param("n", n)
            .with_param("k", K),
        );
    }
    sweep
}

/// Prints the per-step gap table against the Lemma-7 prediction.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!("== E10 (Fig. 4 / Thm 3): proof-pipeline decomposition ==");
    println!("   n={}, eps={EPSILON}, k={K}, {} trials\n", first.param_display("n"), first.trials);
    let mut table = Table::new(&[
        "zipf s",
        "Step1 W1(mu, T_exact)",
        "Lemma 7 bound",
        "Step2 W1(T_exact, T_approx)",
        "Step3 W1(T_approx, T_PrivHP)",
        "total W1(mu, T_PrivHP)",
    ]);
    for cell in &result.cells {
        let s2 = cell.summary("step2");
        let s3 = cell.summary("step3");
        let st = cell.summary("total");
        table.row(vec![
            cell.param_display("zipf_exponent"),
            fmt(cell.summary("step1").mean),
            fmt(cell.summary("lemma7").mean),
            fmt_pm(s2.mean, s2.std_error),
            fmt_pm(s3.mean, s3.std_error),
            fmt_pm(st.mean, st.std_error),
        ]);
    }
    table.print();

    println!("\nExpected shape (Lemmas 7-9): Step1 <= Lemma-7 bound and shrinks with skew;");
    println!("total <= Step1 + Step2 + Step3 (triangle inequality; the tree-vs-tree gaps");
    println!("are segment-exact); all three steps shrink as skew grows.");
}
