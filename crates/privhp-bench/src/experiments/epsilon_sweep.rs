//! **E4 — ε-dependence of Theorem 1**: `E[W1]` as a function of the privacy
//! budget.
//!
//! Paper claim: the noise component of the bound scales as `1/(εn)` (d=1:
//! `log²(M)/(εn)`), so in the noise-dominated regime halving ε should
//! roughly double the distance, flattening once the tail/resolution terms
//! dominate.

use super::Scale;
use crate::methods::{run_method_1d, Method};
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_epsilon_sweep";

const EPSILONS: [f64; 7] = [0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

fn methods() -> [Method; 3] {
    [Method::PrivHp { k: 16 }, Method::Pmm, Method::NonPrivate]
}

/// Declares the ε × method grid. Every method at one ε sees the same
/// per-trial data draw (paired through a shared data stream).
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 14, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let mut sweep = Sweep::new(NAME);
    for &epsilon in &EPSILONS {
        let data_stream = seed_stream(NAME, &[epsilon.to_bits()]);
        for method in methods() {
            sweep.cell(
                Cell::new(
                    format!("eps={epsilon}/{}", method.name()),
                    trials,
                    &["w1"],
                    move |ctx| {
                        let mut wl = DeterministicRng::seed_from_u64(trial_seed(
                            data_stream,
                            ctx.trial as u64,
                        ));
                        let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                        vec![run_method_1d(method, epsilon, &data, ctx.seed).w1]
                    },
                )
                .with_param("epsilon", epsilon)
                .with_param("method", method.name())
                .with_param("n", n),
            );
        }
    }
    sweep
}

/// Prints the E4 table and expected shape.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!(
        "== E4: W1 vs privacy budget eps (n={}, {} trials) ==\n",
        first.param_display("n"),
        first.trials
    );
    let mut table = Table::new(&["eps", "method", "E[W1]", "eps*E[W1] (should flatten)"]);
    for cell in &result.cells {
        let epsilon = cell.param("epsilon").and_then(|p| p.as_f64()).expect("epsilon param");
        let s = cell.summary("w1");
        table.row(vec![
            format!("{epsilon}"),
            cell.param_display("method"),
            fmt_pm(s.mean, s.std_error),
            fmt(epsilon * s.mean),
        ]);
    }
    table.print();

    println!("\nExpected shape (Thm 1): for the private methods, W1 ~ C/eps at small eps");
    println!("(eps*W1 roughly constant), flattening to the resolution floor as eps grows;");
    println!("NonPrivate is flat in eps (it ignores the budget).");
}
