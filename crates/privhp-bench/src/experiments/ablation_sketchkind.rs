//! **E16 — §3.4 sketch-primitive choice inside PrivHP**: end-to-end W1 of
//! PrivHP with the private Count-Min sketch (the Theorem-3 default) vs the
//! private Count Sketch (Pagh–Thorup's unbiased estimator).
//!
//! The paper presents both as valid instantiations of Algorithm 1's
//! `sketch_l` (§3.3–3.4); Theorem 3 is proved for Count-Min because its
//! one-sided, L1-tail-bounded error composes with the top-k pruning
//! argument. This ablation measures whether that analytical preference
//! matters in practice: the Count Sketch's unbiasedness helps point
//! queries, but its two-sided error perturbs top-k *rankings* more.

use super::Scale;
use crate::eval::w1_generator_1d;
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_core::config::SketchKind;
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_ablation_sketchkind";

const K: usize = 16;
const ZIPF_EXPONENTS: [f64; 3] = [0.5, 1.0, 1.5];
const EPSILONS: [f64; 3] = [0.5, 1.0, 2.0];

/// Declares the exponent × ε × sketch-kind grid; the two kinds at one grid
/// point share per-trial data and build noise.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 14, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let domain = UnitInterval::new();

    let mut sweep = Sweep::new(NAME);
    for &exponent in &ZIPF_EXPONENTS {
        for &epsilon in &EPSILONS {
            let pair_stream = seed_stream(NAME, &[exponent.to_bits(), epsilon.to_bits()]);
            for (kind, kind_name) in
                [(SketchKind::CountMin, "CountMin"), (SketchKind::CountSketch, "CountSketch")]
            {
                sweep.cell(
                    Cell::new(
                        format!("s={exponent}/eps={epsilon}/{kind_name}"),
                        trials,
                        &["w1"],
                        move |ctx| {
                            let base = trial_seed(pair_stream, ctx.trial as u64);
                            let mut wl = DeterministicRng::seed_from_u64(mix64(base ^ 0xDA7A));
                            let data: Vec<f64> =
                                ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                            let cfg = PrivHpConfig::for_domain(epsilon, n, K)
                                .with_seed(mix64(base))
                                .with_sketch_kind(kind);
                            let mut rng = DeterministicRng::seed_from_u64(mix64(base ^ 0xBEEF));
                            let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng)
                                .expect("valid config");
                            vec![w1_generator_1d(&data, g.tree(), &domain)]
                        },
                    )
                    .with_param("zipf_exponent", exponent)
                    .with_param("epsilon", epsilon)
                    .with_param("sketch", kind_name)
                    .with_param("n", n),
                );
            }
        }
    }
    sweep
}

/// Prints the CMS-vs-CountSketch end-to-end comparison.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!("== E16 (§3.4): Count-Min vs Count Sketch inside PrivHP ==");
    println!("   n={}, k={K}, {} trials\n", first.param_display("n"), first.trials);

    let mut table =
        Table::new(&["zipf s", "eps", "CMS E[W1]", "CountSketch E[W1]", "ratio CS/CMS"]);
    for pair in result.cells.chunks(2) {
        let (cms, cs) = (pair[0].summary("w1"), pair[1].summary("w1"));
        table.row(vec![
            pair[0].param_display("zipf_exponent"),
            pair[0].param_display("epsilon"),
            fmt_pm(cms.mean, cms.std_error),
            fmt_pm(cs.mean, cs.std_error),
            fmt(cs.mean / cms.mean),
        ]);
    }
    table.print();

    println!("\nExpected shape: the two primitives are within a small constant of each");
    println!("other end-to-end (consistency absorbs most point-estimate differences);");
    println!("Count-Min's one-sided error is what the Theorem-3 *analysis* needs, not a");
    println!("large practical win.");
}
