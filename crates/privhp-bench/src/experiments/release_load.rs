//! **exp_release_load — cold-load latency of release artifacts, JSON vs
//! binary.**
//!
//! A serving node's restart path is dominated by artifact loading: read
//! the release file, decode it into a [`ReleaseFile`], and only then
//! start answering. The JSON interchange encoding pays a full text parse
//! (every count re-read from decimal); the `.phpr` binary encoding
//! (`privhp_core::release::binary`, spec in `docs/FORMAT.md`) stores the
//! dense arena as raw little-endian `f64` words, so decoding is a
//! bounds-checked copy. This experiment prices exactly that gap.
//!
//! Each cell cold-loads one on-disk release — complete tree with `2^E`
//! leaf cells, both encodings written once per size by the first trial —
//! and reports the mean load latency plus loads/sec. The timed region is
//! `fs::read` + [`ReleaseFile::from_bytes`] (the format-dependent cost);
//! the leaf-CDF warm a registry load adds on top is identical for both
//! encodings and measured by `exp_serve`, not here. Before timing, the
//! harness asserts both encodings decode to the same node set, so the
//! cells price encoding alone.
//!
//! Rates feed the cross-PR perf gate like `exp_throughput`: every run
//! rewrites `bench_results/BENCH_release_load.json`, and the
//! `exp_release_load` binary's `--assert-baseline` compares the
//! `loads_per_sec` metrics against the committed reference under
//! `bench_results/baseline/`.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use super::Scale;
use crate::report::Table;
use crate::sweep::{Cell, Sweep, SweepResult};
use privhp_core::release::{DomainSpec, ReleaseFile, ReleaseFormat};
use privhp_core::{PartitionTree, PrivHpConfig};

/// Sweep name.
pub const NAME: &str = "exp_release_load";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const METRICS: [&str; 3] = ["cold_load_ms", "loads_per_sec", "file_mb"];

/// One release size written to disk in both encodings, shared between the
/// cell pair so the (potentially large) build and write happen once.
struct Fixture {
    dir: std::path::PathBuf,
    json_path: String,
    binary_path: String,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

type SharedFixture = Arc<OnceLock<Fixture>>;

/// Builds a complete-tree release with `2^leaf_exp` leaf cells (uniform
/// mass, so it is a valid sampleable artifact), writes both encodings,
/// and asserts they decode to the same node set.
fn build_fixture(leaf_exp: usize) -> Fixture {
    let n = 1usize << leaf_exp;
    let tree = PartitionTree::complete(leaf_exp, |p| n as f64 / (1u64 << p.level()) as f64);
    let config = PrivHpConfig::for_domain(EPSILON, n, K).with_seed(11);
    let release = ReleaseFile::new(DomainSpec::Interval, config, tree);

    let dir = std::env::temp_dir()
        .join(format!("privhp-release-load-{}-2e{leaf_exp}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let json_path = dir.join("release.json").to_string_lossy().into_owned();
    let binary_path = dir.join("release.phpr").to_string_lossy().into_owned();
    std::fs::write(&json_path, release.to_json()).expect("write json fixture");
    std::fs::write(&binary_path, release.to_binary()).expect("write binary fixture");

    // Untimed twin check: both files must decode to the same release, so
    // the timed cells compare encodings of one artifact, not two.
    let a = ReleaseFile::from_bytes(&std::fs::read(&json_path).unwrap()).expect("json decodes");
    let b = ReleaseFile::from_bytes(&std::fs::read(&binary_path).unwrap()).expect("binary decodes");
    assert_eq!(a.tree.len(), b.tree.len(), "encodings must hold the same node set");
    assert_eq!(a.to_json(), b.to_json(), "binary twin must be lossless");

    Fixture { dir, json_path, binary_path }
}

/// Cold-loads `path` `reps` times (read + decode, nothing cached between
/// repetitions beyond the OS page cache both encodings share) and returns
/// the cell's metric vector.
fn measure(path: &str, reps: usize) -> Vec<f64> {
    let file_mb = std::fs::metadata(path).expect("fixture exists").len() as f64 / (1 << 20) as f64;
    let mut nodes = 0usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        let bytes = std::fs::read(path).expect("read fixture");
        let release = ReleaseFile::from_bytes(&bytes).expect("decode fixture");
        nodes = nodes.max(std::hint::black_box(&release).tree.len());
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(nodes > 0, "decoded releases must be non-trivial");
    vec![wall * 1e3 / reps as f64, reps as f64 / wall, file_mb]
}

/// Declares the cell grid: `{json, binary} x` release sizes (full scale
/// adds the `2^20`-leaf artifact the acceptance gate watches).
pub fn sweep(scale: Scale) -> Sweep {
    let leaf_exps: &[usize] = match scale {
        Scale::Full => &[14, 20],
        Scale::Smoke => &[14],
    };
    let trials = scale.trials(3);

    let mut sweep = Sweep::new(NAME);
    for &leaf_exp in leaf_exps {
        let shared: SharedFixture = Arc::new(OnceLock::new());
        // Large artifacts (tens of MB of JSON) take whole seconds per
        // parse; keep wall time bounded without starving the small cells
        // of repetitions.
        let reps = if leaf_exp >= 20 { scale.pick(3, 2) } else { scale.pick(24, 8) };
        for format in [ReleaseFormat::Json, ReleaseFormat::Binary] {
            let shared = Arc::clone(&shared);
            let label = format!("{}/n=2^{leaf_exp}", format.describe());
            let cell = Cell::new(label, trials, &METRICS, move |ctx| {
                let fixture = ctx.shared_setup(&shared, || build_fixture(leaf_exp));
                let path = match format {
                    ReleaseFormat::Json => &fixture.json_path,
                    ReleaseFormat::Binary => &fixture.binary_path,
                };
                measure(path, reps)
            })
            .with_param("leaves", 1usize << leaf_exp)
            .with_param("reps", reps)
            .with_param("epsilon", EPSILON)
            .with_param("k", K)
            .exclusive();
            sweep.cell(cell);
        }
    }
    sweep
}

/// Prints the cold-load table (with the binary-vs-JSON speedup per size)
/// and refreshes `bench_results/BENCH_release_load.json`.
pub fn report(result: &SweepResult) {
    println!("== Release cold load: fs::read + ReleaseFile::from_bytes, JSON vs binary ==\n");
    let mut table = Table::new(&["cell", "file MB", "cold load ms", "loads/s"]);
    for cell in &result.cells {
        table.row(vec![
            cell.label.clone(),
            format!("{:.1}", cell.summary("file_mb").mean),
            format!("{:.2}", cell.summary("cold_load_ms").mean),
            format!("{:.1}", cell.summary("loads_per_sec").mean),
        ]);
    }
    table.print();
    println!();
    for cell in &result.cells {
        let Some(size) = cell.label.strip_prefix("json/") else { continue };
        let twin = format!("binary/{size}");
        let Some(binary) = result.cells.iter().find(|c| c.label == twin) else { continue };
        let json_ms = cell.summary("cold_load_ms").mean;
        let binary_ms = binary.summary("cold_load_ms").mean.max(1e-9);
        println!("binary speedup at {size}: {:.1}x (json {json_ms:.2} ms)", json_ms / binary_ms);
    }
    println!("\nthe timed region is the format-dependent decode only; the leaf-CDF");
    println!("warm a registry load performs afterwards is encoding-independent.");
    println!("Compare across PRs via bench_results/BENCH_release_load.json; the");
    println!("committed reference lives in bench_results/baseline/.");
    crate::report::write_baseline_json(result);
}
