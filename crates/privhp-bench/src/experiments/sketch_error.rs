//! **E7 — Figure 1 / Lemma 4**: measured Count-Min error against the
//! paper's expected-error bound.
//!
//! Paper claim (Lemma 4): for a CMS of width `2w`, depth `j`,
//! `E[v̂_x − v_x] ≤ ‖tail_w(v)‖₁/w + 2^{-j+1}·‖v‖₁/w` — the error is
//! governed by the *tail* of the input, which is why sketching "composes
//! nicely with pruning" (§7).

use super::Scale;
use crate::report::{fmt, Table};
use crate::sweep::{Cell, Sweep, SweepResult};
use privhp_sketch::tail::tail_norm_l1;
use privhp_sketch::{CountMinSketch, SketchParams};
use std::sync::Arc;

/// Sweep name.
pub const NAME: &str = "exp_sketch_error";

const ZIPF_EXPONENTS: [f64; 4] = [0.0, 0.8, 1.3, 2.0];

fn zipf_vector(universe: usize, exponent: f64, total: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..universe).map(|r| 1.0 / ((r + 1) as f64).powf(exponent)).collect();
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| (w / sum * total).round()).collect()
}

/// Declares the exponent × (width, depth) grid. Trials range over
/// independent hash seeds; the Lemma-4 bound is deterministic, reported as
/// a constant metric alongside the measured error.
pub fn sweep(scale: Scale) -> Sweep {
    let universe = scale.pick(4_096, 1_024);
    let total = scale.pick(100_000, 10_000) as f64;
    let trials = scale.trials(8);
    let configs: &[(usize, usize)] = match scale {
        Scale::Full => &[(32, 6), (64, 8), (128, 12), (256, 16)],
        Scale::Smoke => &[(32, 6), (64, 8)],
    };

    let mut sweep = Sweep::new(NAME);
    for &exponent in &ZIPF_EXPONENTS {
        let v = Arc::new(zipf_vector(universe, exponent, total));
        let l1: f64 = v.iter().sum();
        for &(width, depth) in configs {
            let w = width / 2;
            let bound =
                tail_norm_l1(&v, w) / w as f64 + 2f64.powi(-(depth as i32) + 1) * l1 / w as f64;
            let v = Arc::clone(&v);
            sweep.cell(
                Cell::new(
                    format!("s={exponent}/w{width}d{depth}"),
                    trials,
                    &["mean_error", "lemma4_bound"],
                    move |ctx| {
                        let p = SketchParams::new(depth, width);
                        let mut sketch = CountMinSketch::new(p, ctx.seed);
                        for (i, &c) in v.iter().enumerate() {
                            if c > 0.0 {
                                sketch.update(i as u64, c);
                            }
                        }
                        let universe = v.len();
                        let err: f64 = (0..universe as u64)
                            .map(|i| sketch.query(i) - v[i as usize])
                            .sum::<f64>()
                            / universe as f64;
                        vec![err, bound]
                    },
                )
                .with_param("zipf_exponent", exponent)
                .with_param("width", width)
                .with_param("depth", depth)
                .with_param("universe", universe),
            );
        }
    }
    sweep
}

/// Prints measured error vs the Lemma-4 bound.
pub fn report(result: &SweepResult) {
    println!("== E7 (Lemma 4 / Fig. 1): Count-Min error vs the tail bound ==\n");
    let mut table = Table::new(&[
        "zipf s",
        "width(2w)",
        "depth j",
        "mean error",
        "Lemma 4 bound",
        "measured/bound",
    ]);
    for cell in &result.cells {
        let mean_err = cell.summary("mean_error").mean;
        let bound = cell.summary("lemma4_bound").mean;
        table.row(vec![
            cell.param_display("zipf_exponent"),
            cell.param_display("width"),
            cell.param_display("depth"),
            fmt(mean_err),
            fmt(bound),
            if bound > 0.0 { fmt(mean_err / bound) } else { "inf".into() },
        ]);
    }
    table.print();

    println!("\nExpected shape (Lemma 4): measured/bound <= ~1 everywhere; error collapses");
    println!("as skew grows (the tail norm shrinks) and as width/depth grow.");
}
