//! **E1/E2 — Table 1**: accuracy (expected W1) vs memory for PrivHP and
//! every comparator, in `d = 1` and `d ≥ 2`.
//!
//! Paper claim (Table 1): PMM achieves the best accuracy with `O(εn)`
//! memory; PrivHP matches its *shape* with `M = O(k log²n)` memory at the
//! cost of an extra `‖tail_k‖/(M^{1/d}n)` term; SRRW pays an extra log
//! factor; Uniform is the data-independent floor.

use super::Scale;
use crate::methods::{run_method_1d, run_method_nd, Method, MethodRegistry};
use crate::report::{fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_domain::{Hypercube, UnitInterval};
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload, ZipfCells};
use rand::SeedableRng;

const WORKLOADS: [&str; 2] = ["gaussian-mixture", "zipf(s=1.2)"];
const EVAL_DEPTH_ND: usize = 9;

/// Sweep name for a given dimensionality.
pub fn name(dim: usize) -> String {
    format!("exp_table1_d{dim}")
}

/// Declares the workload × n × method grid for dimension `dim`. The
/// registry decides which methods run at this dimensionality; the sweep
/// only chooses the PrivHP pruning parameters to expand. All methods at one
/// (workload, n) grid point see the same per-trial data draw.
pub fn sweep(dim: usize, scale: Scale) -> Sweep {
    let epsilon = 1.0;
    let trials = scale.trials(trials_from_env());
    let ns: Vec<usize> = match (dim, scale) {
        (1, Scale::Full) => vec![1 << 12, 1 << 14, 1 << 16],
        (_, Scale::Full) => vec![1 << 12, 1 << 14],
        _ => vec![1 << 10],
    };
    let privhp_ks = [8usize, 32];
    let methods: Vec<Method> = if dim == 1 {
        MethodRegistry::<UnitInterval>::standard_1d().suite(1, &privhp_ks)
    } else {
        MethodRegistry::<Hypercube>::standard().suite(dim, &privhp_ks)
    };

    let sweep_name = name(dim);
    let mut sweep = Sweep::new(sweep_name.clone());
    for (w, workload_name) in WORKLOADS.into_iter().enumerate() {
        for &n in &ns {
            let data_stream = seed_stream(&sweep_name, &[w as u64, n as u64]);
            for &method in &methods {
                sweep.cell(
                    Cell::new(
                        format!("{workload_name}/n={n}/{}", method.name()),
                        trials,
                        &["w1", "memory_words", "build_seconds"],
                        move |ctx| {
                            let mut wl_rng = DeterministicRng::seed_from_u64(trial_seed(
                                data_stream,
                                ctx.trial as u64,
                            ));
                            let out = if dim == 1 {
                                let data: Vec<f64> = match w {
                                    0 => GaussianMixture::three_modes(1).generate(n, &mut wl_rng),
                                    _ => ZipfCells::new(10, 1.2, 1, 99).generate(n, &mut wl_rng),
                                };
                                run_method_1d(method, epsilon, &data, ctx.seed)
                            } else {
                                let data: Vec<Vec<f64>> = match w {
                                    0 => GaussianMixture::three_modes(dim).generate(n, &mut wl_rng),
                                    _ => ZipfCells::new(10, 1.2, dim, 99).generate(n, &mut wl_rng),
                                };
                                run_method_nd(method, epsilon, &data, dim, EVAL_DEPTH_ND, ctx.seed)
                            };
                            vec![out.w1, out.memory_words as f64, out.build_seconds]
                        },
                    )
                    .with_param("dim", dim)
                    .with_param("workload", workload_name)
                    .with_param("n", n)
                    .with_param("method", method.name())
                    .with_param("epsilon", epsilon),
                );
            }
        }
    }
    sweep
}

/// Prints the Table-1 comparison and expected shape.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!(
        "== E1/E2 (Table 1): accuracy vs memory, d={}, eps={}, {} trials ==\n",
        first.param_display("dim"),
        first.param_display("epsilon"),
        first.trials
    );
    let mut table = Table::new(&["workload", "n", "method", "E[W1]", "memory (words)"]);
    for cell in &result.cells {
        let s = cell.summary("w1");
        let mem = cell.summary("memory_words").mean;
        table.row(vec![
            cell.param_display("workload"),
            cell.param_display("n"),
            cell.param_display("method"),
            fmt_pm(s.mean, s.std_error),
            format!("{mem:.0}"),
        ]);
    }
    table.print();

    println!("\nExpected shape (paper Table 1):");
    println!("  * NonPrivate < PMM <= PrivHP(k=32) <= PrivHP(k=8) << Uniform in W1;");
    println!("  * SRRW >= PMM (uniform budget split costs a log factor);");
    println!("  * memory: PrivHP O(k log^2 n) << PMM/SRRW O(eps*n); PrivHP memory ~flat in n.");
}
