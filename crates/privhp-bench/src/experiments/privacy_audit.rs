//! **E11 — Theorem 2 audit**: empirical check that the released structures
//! are calibrated to the claimed per-level budgets, plus a neighbouring-
//! stream distinguishability probe.
//!
//! Two checks:
//!
//! 1. **Calibration** — the Laplace scales actually applied (counter noise
//!    `1/σ_l`, sketch cell noise `j/σ_l`) match Eq. 3 for the Lemma-5 split,
//!    and `Σ σ_l = ε` exactly;
//! 2. **Distinguishability probe** — run PrivHP many times on neighbouring
//!    streams `X ~ X' = X ∪ {x*} \ {x₀}` and compare the distribution of
//!    the released root count. For an ε-DP release the empirical log-odds
//!    of any event is bounded by ε; we report the worst observed log-odds
//!    over a grid of threshold events (a sanity check, not a proof — DP is
//!    verified by construction in Theorem 2).

use super::Scale;
use crate::report::{fmt, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use privhp_core::budget::optimal_budget_split;
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_privacy_audit";

const EPSILON: f64 = 1.0;
const K: usize = 8;

fn base_stream(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.618_033_988) % 1.0).collect()
}

/// Declares the calibration cell plus the two neighbouring-stream release
/// arms; the arms share per-trial build seeds so their noise is paired.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(4_096, 1_024);
    let trials = scale.trials(4_000);
    let domain = UnitInterval::new();

    let mut sweep = Sweep::new(NAME);
    sweep.cell(
        Cell::new("calibration", 1, &["sum_sigma", "min_sigma"], move |_ctx| {
            let config = PrivHpConfig::for_domain(EPSILON, n, K);
            let split = optimal_budget_split(&domain, &config).expect("valid split");
            let sum: f64 = split.sigmas().iter().sum();
            let min = split.sigmas().iter().cloned().fold(f64::INFINITY, f64::min);
            vec![sum, min]
        })
        .with_param("n", n)
        .with_param("k", K)
        .with_param("epsilon", EPSILON),
    );

    // X and X' differ in one point moved across the domain.
    let pair_stream = seed_stream(NAME, &[1]);
    for (arm, label) in [(0usize, "root-release/base"), (1, "root-release/neighbour")] {
        let mut data = base_stream(n);
        if arm == 1 {
            data[0] = 0.999; // x0 -> x*
        }
        sweep.cell(
            Cell::new(label, trials, &["root_count"], move |ctx| {
                // Both arms derive the same seeds per trial (paired noise).
                let cfg_seed = trial_seed(pair_stream, 2 * ctx.trial as u64);
                let rng_seed = trial_seed(pair_stream, 2 * ctx.trial as u64 + 1);
                let cfg = PrivHpConfig::for_domain(EPSILON, n, K).with_seed(cfg_seed);
                let mut rng = DeterministicRng::seed_from_u64(rng_seed);
                let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng)
                    .expect("valid config");
                vec![g.tree().root_count().unwrap_or(0.0)]
            })
            .with_param("arm", label)
            .with_param("n", n),
        );
    }
    sweep
}

/// Prints the audit table (budget checks + log-odds probe) and the
/// per-level noise-scale table.
pub fn report(result: &SweepResult) {
    let calib = result.cell("calibration");
    let n = calib.param("n").and_then(|p| p.as_i64()).expect("n param") as usize;
    println!("== E11 (Thm 2): privacy calibration audit (eps={EPSILON}, n={n}, k={K}) ==\n");

    let mut table = Table::new(&["check", "value", "budget/bound", "pass"]);

    // Check 1: the split sums to ε.
    let sum = calib.summary("sum_sigma").mean;
    let pass = (sum - EPSILON).abs() < 1e-9;
    table.row(vec!["sum of sigma_l".into(), fmt(sum), fmt(EPSILON), pass.to_string()]);

    // Check 2: every level gets strictly positive budget.
    let min_sigma = calib.summary("min_sigma").mean;
    let pass = min_sigma > 0.0;
    table.row(vec!["min sigma_l".into(), fmt(min_sigma), "> 0".into(), pass.to_string()]);

    // Check 3: neighbouring-stream probe on the released root count.
    let roots_a = result.cell("root-release/base").metric_values("root_count");
    let roots_b = result.cell("root-release/neighbour").metric_values("root_count");
    let trials = roots_a.len();

    // Worst empirical log-odds over threshold events {root <= t}.
    let mut sorted_a = roots_a.clone();
    sorted_a.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut worst = 0.0f64;
    for q in 1..20 {
        let t = sorted_a[((q * trials) / 20).min(trials - 1)];
        let pa = roots_a.iter().filter(|&&r| r <= t).count().max(1) as f64 / trials as f64;
        let pb = roots_b.iter().filter(|&&r| r <= t).count().max(1) as f64 / trials as f64;
        worst = worst.max((pa / pb).ln().abs());
    }
    // Monte-Carlo slack: with 4k trials the log-odds estimate has noise
    // ~0.1; the event class {root <= t} only consumes the root's share of
    // the budget, so worst << eps is expected.
    let pass = worst <= EPSILON + 0.25;
    table.row(vec![
        "worst empirical log-odds (root-count events)".into(),
        fmt(worst),
        format!("<= eps ({EPSILON}) + MC slack"),
        pass.to_string(),
    ]);
    table.print();

    println!("\nPer-level noise scales in force (Eq. 3):");
    let config = PrivHpConfig::for_domain(EPSILON, n, K);
    let split = optimal_budget_split(&UnitInterval::new(), &config).expect("valid split");
    let mut lvl =
        Table::new(&["level", "sigma_l", "counter scale 1/sigma", "sketch scale j/sigma"]);
    let j = config.sketch.depth as f64;
    for (l, &s) in split.sigmas().iter().enumerate() {
        let counter = if l <= config.l_star { fmt(1.0 / s) } else { "-".into() };
        let sketch = if l > config.l_star { fmt(j / s) } else { "-".into() };
        lvl.row(vec![l.to_string(), fmt(s), counter, sketch]);
    }
    lvl.print();
}
