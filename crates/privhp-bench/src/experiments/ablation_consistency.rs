//! **E12 — consistency ablation**: PrivHP with and without the consistency
//! step (Algorithm 3).
//!
//! Paper claim (§4.3): "An equivalent consistency step is common in private
//! histograms, where it is observed it can increase utility at the same
//! privacy budget." Disabling consistency is pure post-processing, so both
//! variants are equally private; only utility differs.

use super::Scale;
use crate::eval::w1_generator_1d;
use crate::report::{fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_core::{GrowOptions, PrivHpBuilder, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_workloads::{GaussianMixture, Workload, ZipfCells};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_ablation_consistency";

const K: usize = 16;
const EPSILONS: [f64; 3] = [0.5, 1.0, 2.0];
const WORKLOADS: [(&str, Option<f64>); 2] =
    [("gaussian-mixture", None), ("zipf(s=1.2)", Some(1.2))];

/// Declares the workload × ε × {with, without} grid; the two variants of a
/// grid point share per-trial data and build noise (pure post-processing
/// comparison).
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 14, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let domain = UnitInterval::new();

    let mut sweep = Sweep::new(NAME);
    for (w, (wl_name, zipf_s)) in WORKLOADS.into_iter().enumerate() {
        for &epsilon in &EPSILONS {
            let pair_stream = seed_stream(NAME, &[w as u64, epsilon.to_bits()]);
            for enforce in [true, false] {
                let variant = if enforce { "with-consistency" } else { "without-consistency" };
                sweep.cell(
                    Cell::new(
                        format!("{wl_name}/eps={epsilon}/{variant}"),
                        trials,
                        &["w1"],
                        move |ctx| {
                            let base = trial_seed(pair_stream, ctx.trial as u64);
                            let mut wl = DeterministicRng::seed_from_u64(mix64(base ^ 0xDA7A));
                            let data: Vec<f64> = match zipf_s {
                                None => GaussianMixture::three_modes(1).generate(n, &mut wl),
                                Some(s) => ZipfCells::new(10, s, 1, 7).generate(n, &mut wl),
                            };
                            let cfg =
                                PrivHpConfig::for_domain(epsilon, n, K).with_seed(mix64(base));
                            let mut rng = DeterministicRng::seed_from_u64(mix64(base ^ 0xBEEF));
                            let mut b =
                                PrivHpBuilder::new(domain, cfg, &mut rng).expect("valid config");
                            for x in &data {
                                b.ingest(x);
                            }
                            let g = b.finalize_with_options(GrowOptions {
                                enforce_consistency: enforce,
                            });
                            vec![w1_generator_1d(&data, g.tree(), &domain)]
                        },
                    )
                    .with_param("workload", wl_name)
                    .with_param("epsilon", epsilon)
                    .with_param("consistency", enforce)
                    .with_param("n", n),
                );
            }
        }
    }
    sweep
}

/// Prints the with/without comparison and the improvement column.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!(
        "== E12: consistency step ablation (n={}, k={K}, {} trials) ==\n",
        first.param_display("n"),
        first.trials
    );
    let mut table =
        Table::new(&["workload", "eps", "W1 with consistency", "W1 without", "improvement"]);
    for pair in result.cells.chunks(2) {
        let (with_c, without_c) = (pair[0].summary("w1"), pair[1].summary("w1"));
        let improvement = (without_c.mean - with_c.mean) / without_c.mean * 100.0;
        table.row(vec![
            pair[0].param_display("workload"),
            pair[0].param_display("epsilon"),
            fmt_pm(with_c.mean, with_c.std_error),
            fmt_pm(without_c.mean, without_c.std_error),
            format!("{improvement:+.1}%"),
        ]);
    }
    table.print();

    println!("\nExpected shape (§4.3): consistency should improve (or at worst match) W1");
    println!("at every budget — the improvement is largest at small eps where noise");
    println!("violates the hierarchy constraints most.");
}
