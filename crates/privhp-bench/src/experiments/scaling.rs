//! **E6 — Corollary 1 performance claims**: update time, build time and
//! memory as the stream grows.
//!
//! Paper claims: update time `O(log(εn)·log n)` per item (a root-to-leaf
//! walk touching one counter or sketch per level, each sketch update
//! costing `O(log n)` rows), release time `O(M log n)`, and memory
//! `M = O(k·log²n)` — i.e. near-flat in `n` while PMM's memory grows
//! linearly.

use super::Scale;
use crate::report::{fmt, Table};
use crate::sweep::{Cell, Sweep, SweepResult};
use privhp_core::{PrivHpBuilder, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_scaling";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const METRICS: [&str; 5] =
    ["update_ns_per_item", "finalize_ms", "privhp_memory_words", "pmm_memory_words", "k_log2n_sq"];

/// Declares one single-trial cell per stream size `n = 2^exp`. The metrics
/// are wall-clock timings, so every cell is `exclusive()`: the pool runs it
/// alone, exactly like the old sequential binary, even under `exp_all`.
pub fn sweep(scale: Scale) -> Sweep {
    let exps: &[usize] = match scale {
        Scale::Full => &[10, 12, 14, 16, 18, 20],
        Scale::Smoke => &[10, 12],
    };
    let mut sweep = Sweep::new(NAME);
    for &exp in exps {
        let n = 1usize << exp;
        sweep.cell(
            Cell::new(format!("n=2^{exp}"), 1, &METRICS, move |ctx| {
                let mut wl = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xDA7A));
                let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                let config = PrivHpConfig::for_domain(EPSILON, n, K).with_seed(ctx.seed);
                let depth = config.depth;
                let mut rng = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xBEEF));
                let mut builder = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng)
                    .expect("valid config");

                let t0 = std::time::Instant::now();
                for x in &data {
                    builder.ingest(x);
                }
                let ingest = t0.elapsed();
                let memory = builder.memory_words();

                let t1 = std::time::Instant::now();
                let g = builder.finalize();
                let finalize = t1.elapsed();
                let _ = g;

                let pmm_words = 2 * ((1usize << (depth + 1)) - 1);
                let theory = K as f64 * (n as f64).log2().powi(2);
                vec![
                    ingest.as_nanos() as f64 / n as f64,
                    finalize.as_secs_f64() * 1e3,
                    memory as f64,
                    pmm_words as f64,
                    theory,
                ]
            })
            .with_param("n", n)
            .with_param("epsilon", EPSILON)
            .with_param("k", K)
            .exclusive(),
        );
    }
    sweep
}

/// Prints the throughput/memory scaling table.
pub fn report(result: &SweepResult) {
    println!("== E6 (Cor. 1): throughput and memory scaling (eps={EPSILON}, k={K}) ==\n");
    let mut table = Table::new(&[
        "n",
        "update ns/item",
        "finalize ms",
        "PrivHP words",
        "PMM words (2^(L+1))",
        "k*log2(n)^2",
    ]);
    for cell in &result.cells {
        let n = cell.param("n").and_then(|p| p.as_i64()).expect("n param");
        table.row(vec![
            format!("2^{}", (n as f64).log2().round() as usize),
            fmt(cell.summary("update_ns_per_item").mean),
            fmt(cell.summary("finalize_ms").mean),
            format!("{:.0}", cell.summary("privhp_memory_words").mean),
            format!("{:.0}", cell.summary("pmm_memory_words").mean),
            format!("{:.0}", cell.summary("k_log2n_sq").mean),
        ]);
    }
    table.print();

    println!("\nExpected shape (Cor. 1): update cost grows ~log^2(n) (polylog, not linear);");
    println!("PrivHP memory tracks k*log^2(n) while the PMM column grows ~linearly in n.");
}
