//! **E3 — Theorem 1 / Corollary 1 interpolation**: `E[W1]` as a function of
//! the memory allocation (sweeping the pruning parameter `k`).
//!
//! Paper claim: `k` provides "an almost smooth interpolation between space
//! usage and utility" — growing `k` moves PrivHP's utility toward PMM's
//! while memory grows only linearly in `k`; on skewed inputs the curve
//! flattens early because `‖tail_k‖₁` collapses.

use super::Scale;
use crate::methods::{run_method_1d, Method};
use crate::report::{fmt, fmt_pm, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use crate::trials_from_env;
use privhp_core::corollary1_bound;
use privhp_dp::rng::DeterministicRng;
use privhp_sketch::tail::tail_norm_l1;
use privhp_workloads::{Workload, ZipfCells};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_memory_sweep";

const EPSILON: f64 = 1.0;
const KS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
const WORKLOADS: [(&str, f64); 2] = [("zipf(s=1.5, skewed)", 1.5), ("uniform-cells(s=0)", 0.0)];

/// Declares, per workload, one PMM reference cell plus a cell per pruning
/// parameter `k`; all cells of one workload share the per-trial data draw.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 15, 1 << 11);
    let trials = scale.trials(trials_from_env());
    let mut sweep = Sweep::new(NAME);
    for (w, (workload_name, exponent)) in WORKLOADS.into_iter().enumerate() {
        let data_stream = seed_stream(NAME, &[w as u64]);
        sweep.cell(
            Cell::new(format!("{workload_name}/PMM"), trials, &["w1"], move |ctx| {
                let mut wl =
                    DeterministicRng::seed_from_u64(trial_seed(data_stream, ctx.trial as u64));
                let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                vec![run_method_1d(Method::Pmm, EPSILON, &data, ctx.seed).w1]
            })
            .with_param("workload", workload_name)
            .with_param("exponent", exponent)
            .with_param("n", n)
            .with_param("method", "PMM"),
        );
        for &k in &KS {
            sweep.cell(
                Cell::new(
                    format!("{workload_name}/k={k}"),
                    trials,
                    &["w1", "memory_words"],
                    move |ctx| {
                        let mut wl = DeterministicRng::seed_from_u64(trial_seed(
                            data_stream,
                            ctx.trial as u64,
                        ));
                        let data: Vec<f64> =
                            ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
                        let out = run_method_1d(Method::PrivHp { k }, EPSILON, &data, ctx.seed);
                        vec![out.w1, out.memory_words as f64]
                    },
                )
                .with_param("workload", workload_name)
                .with_param("exponent", exponent)
                .with_param("n", n)
                .with_param("k", k),
            );
        }
    }
    sweep
}

/// Representative level-10 cell histogram of the workload (one fixed draw,
/// as the Corollary-1 prediction column needs a deterministic tail value);
/// computed once per workload, then sliced per `k` via [`tail_norm_l1`].
fn representative_cells(exponent: f64, n: usize) -> Vec<f64> {
    let mut wl = DeterministicRng::seed_from_u64(0xDA7A);
    let data: Vec<f64> = ZipfCells::new(10, exponent, 1, 7).generate(n, &mut wl);
    let mut cells = vec![0.0f64; 1 << 10];
    for x in &data {
        cells[((x * 1024.0) as usize).min(1023)] += 1.0;
    }
    cells
}

/// Prints one table per workload (k vs W1/memory/Cor.1 prediction/PMM ref).
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    let n = first.param("n").and_then(|p| p.as_i64()).expect("n param") as usize;
    println!("== E3 (Thm 1 / Cor 1): W1 vs memory via pruning parameter k ==");
    println!("   n={n}, eps={EPSILON}, {} trials\n", first.trials);

    for chunk in result.cells.chunks(1 + KS.len()) {
        let pmm_cell = &chunk[0];
        let workload_name = pmm_cell.param_display("workload");
        let exponent = pmm_cell.param("exponent").and_then(|p| p.as_f64()).expect("exponent");
        let pmm_mean = pmm_cell.summary("w1").mean;
        let cells = representative_cells(exponent, n);

        let mut table =
            Table::new(&["k", "E[W1]", "memory (words)", "Cor.1 prediction", "PMM ref"]);
        for cell in &chunk[1..] {
            let k = cell.param("k").and_then(|p| p.as_i64()).expect("k param") as usize;
            let s = cell.summary("w1");
            let mem = cell.summary("memory_words").mean;
            let pred = corollary1_bound(1, mem.max(2.0), EPSILON, n, tail_norm_l1(&cells, k));
            table.row(vec![
                k.to_string(),
                fmt_pm(s.mean, s.std_error),
                format!("{mem:.0}"),
                fmt(pred),
                fmt(pmm_mean),
            ]);
        }
        println!("-- workload: {workload_name} --");
        table.print();
        println!();
    }

    println!("Expected shape (paper §5.2):");
    println!("  * skewed: W1 drops steeply with k then flattens once tail_k ~ 0;");
    println!("  * uniform: W1 improves slowly — the tail term dominates at every k;");
    println!("  * increasing k interpolates toward the PMM reference value.");
}
