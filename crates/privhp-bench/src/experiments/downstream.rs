//! **E15 — §3.2 downstream-task guarantee**: the Wasserstein bound is a
//! *uniform* accuracy guarantee for Lipschitz statistics.
//!
//! Paper motivation (§3.2): "Equation 1 provides a uniform accuracy
//! guarantee for a wide range of machine learning tasks performed on
//! synthetic datasets whose empirical measure is close to μ_X in the
//! 1-Wasserstein distance." By Kantorovich–Rubinstein duality,
//! `|E_μ[f] − E_ν[f]| ≤ W1(μ, ν)` for every 1-Lipschitz `f` — so the
//! measured W1 must upper-bound the synthetic-data estimation error of
//! *every* Lipschitz statistic simultaneously. One generator is built and
//! sampled once — lazily, by whichever statistic cell the pool runs first
//! (deterministic: the build is seeded from the sweep's stream, not the
//! cell's); every cell then scores its statistic against the shared bound.

use super::Scale;
use crate::eval::w1_generator_1d;
use crate::report::{fmt, Table};
use crate::sweep::{seed_stream, trial_seed, Cell, Sweep, SweepResult};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::DeterministicRng;
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// Sweep name.
pub const NAME: &str = "exp_downstream";

const EPSILON: f64 = 1.0;
const K: usize = 32;

/// A named 1-Lipschitz functional on [0,1].
struct LipStat {
    name: &'static str,
    f: fn(f64) -> f64,
}

const STATS: &[LipStat] = &[
    LipStat { name: "mean:            f(x) = x", f: |x| x },
    LipStat { name: "dist-to-0.5:     f(x) = |x - 0.5|", f: |x| (x - 0.5).abs() },
    LipStat { name: "clamped ramp:    f(x) = min(x, 0.3)", f: |x| x.min(0.3) },
    LipStat { name: "hinge:           f(x) = max(0, x - 0.6)", f: |x| (x - 0.6).max(0.0) },
    LipStat { name: "1-Lip sigmoid:   f(x) = tanh(x - 0.4)", f: |x| (x - 0.4).tanh() },
    LipStat { name: "sawtooth(1-Lip): f(x) = |x mod 0.4 - 0.2|", f: |x| ((x % 0.4) - 0.2).abs() },
];

fn expectation(f: fn(f64) -> f64, xs: &[f64]) -> f64 {
    xs.iter().map(|&x| f(x)).sum::<f64>() / xs.len() as f64
}

/// The shared once-per-sweep setup: (data, synthetic sample, W1 bound).
type SharedSetup = Arc<OnceLock<(Vec<f64>, Vec<f64>, f64)>>;

/// Declares one cell per Lipschitz statistic, all scored against a single
/// deterministic build + synthetic sample. The build is heavy, so it runs
/// lazily on the pool (first cell to execute pays it) and is shared through
/// an `Arc<OnceLock>`.
pub fn sweep(scale: Scale) -> Sweep {
    let n = scale.pick(1 << 15, 1 << 11);
    let m = scale.pick(1 << 17, 1 << 13); // synthetic sample; MC wobble << W1
    let domain = UnitInterval::new();
    let stream = seed_stream(NAME, &[]);
    let shared: SharedSetup = Arc::new(OnceLock::new());

    let mut sweep = Sweep::new(NAME);
    for stat in STATS {
        let shared = Arc::clone(&shared);
        let f = stat.f;
        sweep.cell(
            Cell::new(stat.name, 1, &["real", "synthetic", "abs_error", "w1_bound"], move |ctx| {
                let (data, synthetic, w1) = ctx.shared_setup(&shared, || {
                    let mut wl = DeterministicRng::seed_from_u64(trial_seed(stream, 0));
                    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                    let cfg =
                        PrivHpConfig::for_domain(EPSILON, n, K).with_seed(trial_seed(stream, 1));
                    let mut rng = DeterministicRng::seed_from_u64(trial_seed(stream, 2));
                    let g = PrivHp::build(&domain, cfg, data.iter().copied(), &mut rng)
                        .expect("valid config");
                    // The duality bound: W1 between the data and the
                    // generator's *exact* distribution; the synthetic
                    // sample's own Monte-Carlo wobble is added at report
                    // time.
                    let w1 = w1_generator_1d(&data, g.tree(), &domain);
                    let mut sample_rng = DeterministicRng::seed_from_u64(trial_seed(stream, 3));
                    let synthetic = g.sample_many(m, &mut sample_rng);
                    (data, synthetic, w1)
                });
                let real = expectation(f, data);
                let synth = expectation(f, synthetic);
                vec![real, synth, (real - synth).abs(), *w1]
            })
            .with_param("statistic", stat.name)
            .with_param("n", n)
            .with_param("m", m)
            .with_param("epsilon", EPSILON)
            .with_param("k", K),
        );
    }
    sweep
}

/// Prints the statistic battery and the duality verdict.
pub fn report(result: &SweepResult) {
    let first = &result.cells[0];
    println!("== E15 (§3.2): Lipschitz downstream statistics vs the W1 guarantee ==");
    println!("   n={}, eps={EPSILON}, k={K}\n", first.param_display("n"));

    let m = first.param("m").and_then(|p| p.as_i64()).expect("m param") as f64;
    let mc_slack = 3.0 / m.sqrt();
    let w1 = first.summary("w1_bound").mean;

    let mut table = Table::new(&["statistic", "real", "synthetic", "|error|", "W1 bound"]);
    let mut worst = 0.0f64;
    for cell in &result.cells {
        let real = cell.summary("real").mean;
        let synth = cell.summary("synthetic").mean;
        let err = cell.summary("abs_error").mean;
        worst = worst.max(err);
        table.row(vec![cell.param_display("statistic"), fmt(real), fmt(synth), fmt(err), fmt(w1)]);
    }
    table.print();

    println!("\nmeasured W1(data, generator) = {w1:.5} (+ MC slack {mc_slack:.5})");
    println!("worst statistic error        = {worst:.5}");
    if worst <= w1 + mc_slack {
        println!("=> Kantorovich duality holds: every 1-Lipschitz statistic is within W1.");
    } else {
        println!("=> VIOLATION — investigate (duality must hold for exact expectations).");
    }
}
