//! **exp_throughput — hot-path throughput + the perf baseline store.**
//!
//! The ROADMAP names `PrivHpBuilder::ingest` (Algorithm 1's stream pass)
//! and the sampler as the paths a serving deployment hammers; this
//! experiment measures both as end-to-end rates — ingest items/sec over a
//! full build and `sample_many` points/sec over a finished release —
//! across domains and stream sizes.
//!
//! Unlike the paper-reproduction sweeps, these numbers exist to be
//! *compared across PRs*: [`crate::report::write_baseline_json`] reduces
//! the sweep to a flat `{cell: {metric: mean}}` document
//! (`bench_results/BENCH_throughput.json`), and the `exp_throughput`
//! binary's `--assert-baseline <file>` mode fails if any overlapping
//! metric regressed by more than 25% against a committed baseline
//! (`bench_results/baseline/`). Timed cells are [`Cell::exclusive`] so the
//! pool is idle around every measurement, exactly as in `exp_scaling`.

use super::Scale;
use crate::report::{fmt, Table};
use crate::sweep::{Cell, Sweep, SweepResult};
use privhp_core::{PrivHpBuilder, PrivHpConfig};
use privhp_domain::{HierarchicalDomain, Hypercube, UnitInterval};
use privhp_dp::rng::{mix64, DeterministicRng};
use privhp_workloads::{GaussianMixture, Workload};
use rand::SeedableRng;

/// Sweep name.
pub const NAME: &str = "exp_throughput";

const EPSILON: f64 = 1.0;
const K: usize = 16;
const METRICS: [&str; 3] = ["ingest_items_per_sec", "sample_points_per_sec", "finalize_ms"];
const INGEST_METRIC: [&str; 1] = ["ingest_items_per_sec"];
const SAMPLE_METRIC: [&str; 1] = ["sample_points_per_sec"];

/// How a variant cell drives the builder's ingest.
#[derive(Clone, Copy)]
enum IngestMode {
    /// Chunked level-major `ingest_batch`.
    Batch,
    /// Sharded `ingest_par` with this many worker threads.
    Par(usize),
}

impl IngestMode {
    fn label(self) -> String {
        match self {
            IngestMode::Batch => "batch".into(),
            IngestMode::Par(t) => format!("par{t}"),
        }
    }
}

/// Times one ingest pass (construction and finalize excluded) in the
/// given mode; returns items/sec.
fn measure_ingest<D>(domain: D, data: &[D::Point], seed: u64, mode: IngestMode) -> Vec<f64>
where
    D: HierarchicalDomain + Clone + Send + Sync,
    D::Point: Send + Sync,
{
    let config = PrivHpConfig::for_domain(EPSILON, data.len(), K).with_seed(seed);
    let mut rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0xBEEF));
    let mut builder = PrivHpBuilder::new(domain, config, &mut rng).expect("valid config");
    let t0 = std::time::Instant::now();
    match mode {
        IngestMode::Batch => builder.ingest_batch(data),
        IngestMode::Par(threads) => builder.ingest_par(data, threads),
    }
    let ingest = t0.elapsed().as_secs_f64();
    assert_eq!(builder.items_seen(), data.len());
    vec![data.len() as f64 / ingest.max(1e-9)]
}

/// One timed build + sample pass; shared by the 1-D and d-D cells.
fn measure<D>(domain: D, data: &[D::Point], m: usize, seed: u64) -> Vec<f64>
where
    D: HierarchicalDomain + Clone,
{
    let n = data.len();
    let config = PrivHpConfig::for_domain(EPSILON, n, K).with_seed(seed);
    let mut rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0xBEEF));
    let mut builder = PrivHpBuilder::new(domain, config, &mut rng).expect("valid config");

    let t0 = std::time::Instant::now();
    for x in data {
        builder.ingest(x);
    }
    let ingest = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let g = builder.finalize();
    let finalize = t1.elapsed().as_secs_f64();

    let mut sample_rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0x5A3));
    let t2 = std::time::Instant::now();
    let pts = g.sample_many(m, &mut sample_rng);
    let sample = t2.elapsed().as_secs_f64();
    assert_eq!(pts.len(), m);

    vec![n as f64 / ingest.max(1e-9), m as f64 / sample.max(1e-9), finalize * 1e3]
}

/// Times the allocation-free batch sampler alone: the release is built
/// untimed (chunked ingest + finalize), then `sample_many_into` fills one
/// reused flat lane buffer — the decode-free rate serve's sample handler
/// and the evaluators actually see.
fn measure_sample_into<D>(domain: D, data: &[D::Point], m: usize, seed: u64) -> Vec<f64>
where
    D: HierarchicalDomain + Clone,
{
    let config = PrivHpConfig::for_domain(EPSILON, data.len(), K).with_seed(seed);
    let mut rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0xBEEF));
    let mut builder = PrivHpBuilder::new(domain, config, &mut rng).expect("valid config");
    builder.ingest_batch(data);
    let g = builder.finalize();

    let mut sample_rng = DeterministicRng::seed_from_u64(mix64(seed ^ 0x5A3));
    let mut flat = Vec::new();
    let t = std::time::Instant::now();
    g.sample_many_into(m, &mut sample_rng, &mut flat);
    let sample = t.elapsed().as_secs_f64();
    assert!(flat.len().is_multiple_of(m.max(1)), "whole rows expected");

    vec![m as f64 / sample.max(1e-9)]
}

/// Declares exclusive timed cells per (dimension × stream size): the
/// single-item baseline cell (ingest + sample + finalize, unchanged across
/// PRs so the perf gate stays comparable) plus one cell per ingest variant
/// — chunked `ingest_batch` and sharded `ingest_par` — measuring ingest
/// only. The largest full-scale `n` matches `exp_scaling`'s largest
/// default (2^20) so the baseline captures the hot path at the scale the
/// ROADMAP cites.
pub fn sweep(scale: Scale) -> Sweep {
    let exps: &[usize] = match scale {
        Scale::Full => &[16, 20],
        Scale::Smoke => &[10, 12],
    };
    let m = scale.pick(1 << 17, 1 << 12);
    let trials = scale.trials(3);
    let mut sweep = Sweep::new(NAME);
    for &dim in &[1usize, 2] {
        for &exp in exps {
            let n = 1usize << exp;
            sweep.cell(
                Cell::new(format!("d={dim}/n=2^{exp}"), trials, &METRICS, move |ctx| {
                    let mut wl = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xDA7A));
                    if dim == 1 {
                        let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut wl);
                        measure(UnitInterval::new(), &data, m, ctx.seed)
                    } else {
                        let data: Vec<Vec<f64>> =
                            GaussianMixture::three_modes(dim).generate(n, &mut wl);
                        measure(Hypercube::new(dim), &data, m, ctx.seed)
                    }
                })
                .with_param("dim", dim)
                .with_param("n", n)
                .with_param("m", m)
                .with_param("epsilon", EPSILON)
                .with_param("k", K)
                .exclusive(),
            );
            sweep.cell(
                Cell::new(format!("d={dim}/n=2^{exp}/sample=into"), trials, &SAMPLE_METRIC, {
                    move |ctx| {
                        let mut wl = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xDA7A));
                        if dim == 1 {
                            let data: Vec<f64> =
                                GaussianMixture::three_modes(1).generate(n, &mut wl);
                            measure_sample_into(UnitInterval::new(), &data, m, ctx.seed)
                        } else {
                            let data: Vec<Vec<f64>> =
                                GaussianMixture::three_modes(dim).generate(n, &mut wl);
                            measure_sample_into(Hypercube::new(dim), &data, m, ctx.seed)
                        }
                    }
                })
                .with_param("dim", dim)
                .with_param("n", n)
                .with_param("m", m)
                .with_param("epsilon", EPSILON)
                .with_param("k", K)
                .exclusive(),
            );
            for mode in [IngestMode::Batch, IngestMode::Par(2)] {
                let threads = match mode {
                    IngestMode::Batch => 1usize,
                    IngestMode::Par(t) => t,
                };
                sweep.cell(
                    Cell::new(
                        format!("d={dim}/n=2^{exp}/ingest={}", mode.label()),
                        trials,
                        &INGEST_METRIC,
                        move |ctx| {
                            let mut wl = DeterministicRng::seed_from_u64(mix64(ctx.seed ^ 0xDA7A));
                            if dim == 1 {
                                let data: Vec<f64> =
                                    GaussianMixture::three_modes(1).generate(n, &mut wl);
                                measure_ingest(UnitInterval::new(), &data, ctx.seed, mode)
                            } else {
                                let data: Vec<Vec<f64>> =
                                    GaussianMixture::three_modes(dim).generate(n, &mut wl);
                                measure_ingest(Hypercube::new(dim), &data, ctx.seed, mode)
                            }
                        },
                    )
                    .with_param("dim", dim)
                    .with_param("n", n)
                    .with_param("mode", mode.label())
                    .with_param("threads", threads)
                    .with_param("epsilon", EPSILON)
                    .with_param("k", K)
                    .exclusive(),
                );
            }
        }
    }
    sweep
}

/// Prints the throughput table and refreshes the baseline-format document
/// (`bench_results/BENCH_throughput.json`) so every run — including
/// `exp_all` — leaves a comparable artifact behind.
pub fn report(result: &SweepResult) {
    println!(
        "== Throughput: ingest items/sec and sample_many points/sec (eps={EPSILON}, k={K}) ==\n"
    );
    let mut table =
        Table::new(&["cell", "ingest items/s", "sample points/s", "finalize ms", "trials"]);
    let opt = |cell: &crate::sweep::CellResult, metric: &str| {
        if cell.metrics.contains(&metric) {
            fmt(cell.summary(metric).mean)
        } else {
            "-".into()
        }
    };
    for cell in &result.cells {
        table.row(vec![
            cell.label.clone(),
            if cell.metrics.contains(&"ingest_items_per_sec") {
                format!("{:.0}", cell.summary("ingest_items_per_sec").mean)
            } else {
                "-".into()
            },
            if cell.metrics.contains(&"sample_points_per_sec") {
                format!("{:.0}", cell.summary("sample_points_per_sec").mean)
            } else {
                "-".into()
            },
            opt(cell, "finalize_ms"),
            cell.trials.to_string(),
        ]);
    }
    table.print();
    println!("\nRates are end-to-end (hashing + tree/sketch updates; leaf CDF + uniform draw).");
    println!("ingest=batch cells time PrivHpBuilder::ingest_batch (chunked, level-major);");
    println!("ingest=parN cells time ingest_par (N shard workers, merged — same release bytes).");
    println!("Compare across PRs via bench_results/BENCH_throughput.json; the committed");
    println!("reference lives in bench_results/baseline/ (see README \"Performance\").");
    crate::report::write_baseline_json(result);
}
