//! Criterion micro-bench for the Corollary-1 update-time claim:
//! `O(log(εn)·log n)` per stream item (one counter or sketch touch per
//! level, `O(log n)` sketch rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privhp_core::{PrivHpBuilder, PrivHpConfig};
use privhp_domain::{Hypercube, UnitInterval};
use privhp_dp::rng::rng_from_seed;

fn bench_ingest_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_1d");
    for exp in [12usize, 16, 20] {
        let n = 1usize << exp;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(format!("n=2^{exp}")), &n, |b, &n| {
            let config = PrivHpConfig::for_domain(1.0, n, 16).with_seed(1);
            let mut rng = rng_from_seed(2);
            let mut builder =
                PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).expect("valid");
            let mut x = 0.123f64;
            b.iter(|| {
                x = (x * 1.618_033_988) % 1.0;
                builder.ingest(std::hint::black_box(&x));
            });
        });
    }
    group.finish();
}

fn bench_ingest_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_by_dim");
    let n = 1usize << 16;
    for dim in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("d={dim}")), &dim, |b, &dim| {
            let config = PrivHpConfig::for_domain(1.0, n, 16).with_seed(1);
            let mut rng = rng_from_seed(3);
            let mut builder =
                PrivHpBuilder::new(Hypercube::new(dim), config, &mut rng).expect("valid");
            let mut t = 0.37f64;
            b.iter(|| {
                t = (t * 1.618_033_988) % 1.0;
                let p: Vec<f64> = (0..dim).map(|i| (t + 0.1 * i as f64) % 1.0).collect();
                builder.ingest(std::hint::black_box(&p));
            });
        });
    }
    group.finish();
}

fn bench_ingest_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_by_k");
    let n = 1usize << 16;
    for k in [4usize, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &k, |b, &k| {
            let config = PrivHpConfig::for_domain(1.0, n, k).with_seed(1);
            let mut rng = rng_from_seed(4);
            let mut builder =
                PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).expect("valid");
            let mut x = 0.71f64;
            b.iter(|| {
                x = (x * 1.618_033_988) % 1.0;
                builder.ingest(std::hint::black_box(&x));
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ingest_1d, bench_ingest_dims, bench_ingest_by_k
}
criterion_main!(benches);
