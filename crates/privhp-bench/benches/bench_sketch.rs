//! Criterion bench for the sketching substrate: Count-Min update/query,
//! private-sketch construction (noise pre-load), and Misra-Gries updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privhp_dp::rng::rng_from_seed;
use privhp_sketch::{CountMinSketch, MisraGries, PrivateCountMinSketch, SketchParams};

fn bench_cms_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("cms_update");
    for depth in [4usize, 16] {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("j={depth}")),
            &depth,
            |b, &depth| {
                let mut s = CountMinSketch::new(SketchParams::new(depth, 64), 1);
                let mut key = 0u64;
                b.iter(|| {
                    key = key.wrapping_add(0x9E37_79B9);
                    s.update(std::hint::black_box(key), 1.0);
                });
            },
        );
    }
    group.finish();
}

fn bench_cms_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("cms_query");
    for depth in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("j={depth}")),
            &depth,
            |b, &depth| {
                let mut s = CountMinSketch::new(SketchParams::new(depth, 64), 2);
                for i in 0..10_000u64 {
                    s.update(i, 1.0);
                }
                let mut key = 0u64;
                b.iter(|| {
                    key = key.wrapping_add(31);
                    std::hint::black_box(s.query(key % 10_000))
                });
            },
        );
    }
    group.finish();
}

fn bench_private_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("private_sketch_init");
    group.sample_size(20);
    for (depth, width) in [(8usize, 32usize), (16, 64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{depth}x{width}")),
            &(depth, width),
            |b, &(depth, width)| {
                b.iter(|| {
                    let mut rng = rng_from_seed(3);
                    PrivateCountMinSketch::new(SketchParams::new(depth, width), 1.0, 4, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn bench_misra_gries(c: &mut Criterion) {
    c.bench_function("misra_gries_update", |b| {
        let mut mg = MisraGries::new(64);
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(0x9E37_79B9);
            mg.update(std::hint::black_box(key % 1_000));
        });
    });
}

criterion_group!(
    benches,
    bench_cms_update,
    bench_cms_query,
    bench_private_construction,
    bench_misra_gries
);
criterion_main!(benches);
