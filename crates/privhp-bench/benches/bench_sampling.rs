//! Criterion bench for synthetic-data sampling: the root-to-leaf walk plus
//! the uniform in-cell draw (§5), across tree depths and domains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use privhp_core::{PrivHp, PrivHpConfig, PrivHpGenerator};
use privhp_domain::{Hypercube, UnitInterval};
use privhp_dp::rng::rng_from_seed;
use privhp_workloads::{GaussianMixture, Workload};

fn generator_1d(n: usize, k: usize) -> PrivHpGenerator<UnitInterval> {
    let mut rng = rng_from_seed(0x5A);
    let data: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, n, k).with_seed(0x5B);
    PrivHp::build(&UnitInterval::new(), config, data, &mut rng).expect("valid")
}

fn bench_sample_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_1d");
    for k in [8usize, 128] {
        let g = generator_1d(1 << 14, k);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &g, |b, g| {
            let mut rng = rng_from_seed(0x5C);
            b.iter(|| std::hint::black_box(g.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_sample_2d(c: &mut Criterion) {
    let mut rng = rng_from_seed(0x5D);
    let data: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(1 << 13, &mut rng);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 16).with_seed(0x5E);
    let g = PrivHp::build(&Hypercube::new(2), config, data, &mut rng).expect("valid");
    c.bench_function("sample_2d", |b| {
        let mut rng = rng_from_seed(0x5F);
        b.iter(|| std::hint::black_box(g.sample(&mut rng)));
    });
}

fn bench_sample_batch(c: &mut Criterion) {
    let g = generator_1d(1 << 14, 16);
    let mut group = c.benchmark_group("sample_batch");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("10k_points", |b| {
        let mut rng = rng_from_seed(0x60);
        b.iter(|| std::hint::black_box(g.sample_many(10_000, &mut rng)));
    });
    group.finish();
}

criterion_group!(benches, bench_sample_1d, bench_sample_2d, bench_sample_batch);
criterion_main!(benches);
