//! Criterion bench for the full build (Algorithm 1 end-to-end) and the
//! release step (Algorithm 2, the `O(M log n)` claim), for PrivHP and PMM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privhp_baselines::Pmm;
use privhp_core::{PrivHp, PrivHpBuilder, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_workloads::{GaussianMixture, Workload};

fn data(n: usize) -> Vec<f64> {
    let mut rng = rng_from_seed(0xB1);
    GaussianMixture::three_modes(1).generate(n, &mut rng)
}

fn bench_full_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_build");
    group.sample_size(10);
    for exp in [12usize, 14] {
        let n = 1usize << exp;
        let stream = data(n);
        group.bench_with_input(
            BenchmarkId::new("privhp", format!("n=2^{exp}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let config = PrivHpConfig::for_domain(1.0, stream.len(), 16).with_seed(7);
                    let mut rng = rng_from_seed(8);
                    PrivHp::build(&UnitInterval::new(), config, stream.iter().copied(), &mut rng)
                        .expect("valid")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pmm", format!("n=2^{exp}")),
            &stream,
            |b, stream| {
                b.iter(|| {
                    let mut rng = rng_from_seed(8);
                    Pmm::build(&UnitInterval::new(), 1.0, stream, &mut rng)
                });
            },
        );
    }
    group.finish();
}

fn bench_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("release_grow_partition");
    group.sample_size(10);
    for k in [8usize, 64] {
        let n = 1usize << 14;
        let stream = data(n);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k={k}")), &k, |b, &k| {
            b.iter_batched(
                || {
                    let config = PrivHpConfig::for_domain(1.0, n, k).with_seed(9);
                    let mut rng = rng_from_seed(10);
                    let mut builder =
                        PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).expect("valid");
                    for x in &stream {
                        builder.ingest(x);
                    }
                    builder
                },
                |builder| builder.finalize(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_build, bench_release);
criterion_main!(benches);
