//! Criterion bench for the utility-measurement substrate: exact 1-D `W1`,
//! the segment integral, tree-`W1` and sliced-`W1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privhp_domain::Hypercube;
use privhp_dp::rng::rng_from_seed;
use privhp_metrics::sliced::sliced_w1;
use privhp_metrics::tree_wasserstein::tree_w1_between_samples;
use privhp_metrics::wasserstein1d::{w1_exact_1d, w1_sample_vs_segments, Segment};
use privhp_workloads::{GaussianMixture, Workload};

fn bench_w1_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("w1_exact_1d");
    for n in [1_000usize, 10_000] {
        let mut rng = rng_from_seed(1);
        let a: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut rng);
        let b_: Vec<f64> = GaussianMixture::three_modes(1).generate(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_), |bch, (a, b_)| {
            bch.iter(|| std::hint::black_box(w1_exact_1d(a, b_)));
        });
    }
    group.finish();
}

fn bench_w1_segments(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let sample: Vec<f64> = GaussianMixture::three_modes(1).generate(8_192, &mut rng);
    let segments: Vec<Segment> = (0..256)
        .map(|i| Segment {
            lo: i as f64 / 256.0,
            hi: (i + 1) as f64 / 256.0,
            mass: 1.0 + (i % 7) as f64,
        })
        .collect();
    c.bench_function("w1_sample_vs_segments_8k_256seg", |b| {
        b.iter(|| std::hint::black_box(w1_sample_vs_segments(&sample, &segments)));
    });
}

fn bench_tree_w1(c: &mut Criterion) {
    let mut rng = rng_from_seed(3);
    let cube = Hypercube::new(2);
    let a: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(4_096, &mut rng);
    let b_: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(4_096, &mut rng);
    c.bench_function("tree_w1_2d_4k_depth10", |bch| {
        bch.iter(|| std::hint::black_box(tree_w1_between_samples(&cube, &a, &b_, 10)));
    });
}

fn bench_sliced_w1(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let a: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(2_048, &mut rng);
    let b_: Vec<Vec<f64>> = GaussianMixture::three_modes(2).generate(2_048, &mut rng);
    let mut group = c.benchmark_group("sliced_w1");
    group.sample_size(10);
    group.bench_function("2d_2k_32proj", |bch| {
        let mut r = rng_from_seed(5);
        bch.iter(|| std::hint::black_box(sliced_w1(&a, &b_, 32, &mut r)));
    });
    group.finish();
}

criterion_group!(benches, bench_w1_exact, bench_w1_segments, bench_tree_w1, bench_sliced_w1);
criterion_main!(benches);
