//! Criterion bench for the consistency machinery (Algorithm 3): the
//! per-parent step and the full depth-first pass, plus top-k selection —
//! the inner loops of the `O(M log n)` release bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privhp_core::consistency::{enforce_consistency, enforce_consistency_subtree};
use privhp_core::grow::top_k_paths;
use privhp_core::tree::PartitionTree;
use privhp_domain::Path;

fn noisy_tree(depth: usize) -> PartitionTree {
    PartitionTree::complete(depth, |p| {
        // Deterministic pseudo-noise, some negative.
        ((p.bits().wrapping_mul(0x9E37_79B9) % 1000) as f64 / 10.0) - 20.0
    })
}

fn bench_single_step(c: &mut Criterion) {
    c.bench_function("consistency_single_parent", |b| {
        let template = noisy_tree(1);
        b.iter_batched(
            || template.clone(),
            |mut t| {
                enforce_consistency(&mut t, &Path::root());
                t
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_subtree_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_subtree");
    for depth in [8usize, 12] {
        let template = noisy_tree(depth);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("depth={depth}")),
            &template,
            |b, template| {
                b.iter_batched(
                    || template.clone(),
                    |mut t| {
                        enforce_consistency_subtree(&mut t, &Path::root());
                        t
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_top_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("top_k_selection");
    for (candidates, k) in [(64usize, 16usize), (4096, 64)] {
        let tree = noisy_tree(12);
        let paths: Vec<Path> = tree.level_nodes(12)[..candidates].to_vec();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{candidates}choose{k}")),
            &(tree, paths, k),
            |b, (tree, paths, k)| {
                b.iter(|| std::hint::black_box(top_k_paths(tree, paths, *k)));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_step, bench_subtree_pass, bench_top_k
}
criterion_main!(benches);
