//! Hierarchical (tree) 1-Wasserstein — the bound the paper's proofs use.
//!
//! For a nested binary decomposition with level diameters `γ_l`, transporting
//! `μ` onto `ν` level by level costs at most
//!
//! `W1(μ, ν) ≤ Σ_{l=1}^{L} γ_{l-1} · ½ Σ_{θ ∈ {0,1}^l} |μ(Ω_θ) − ν(Ω_θ)|`
//!
//! (mass that disagrees at level `l` must travel within a level-`l−1` cell).
//! This is exactly the accounting used in Lemmas 7–9, and is a genuine
//! metric between measures restricted to the leaf σ-algebra, making it the
//! metric-of-record for the `d ≥ 2` experiments where exact `W1` is
//! intractable.

use privhp_domain::HierarchicalDomain;

/// Tree-`W1` from per-level cell masses. `mu[l]` and `nu[l]` are dense
/// level-`l` mass vectors (length `2^l`, summing to 1 each); `gammas[l]` is
/// the level-`l` diameter `γ_l`.
///
/// # Panics
/// Panics on shape mismatches.
pub fn tree_w1_from_masses(mu: &[Vec<f64>], nu: &[Vec<f64>], gammas: &[f64]) -> f64 {
    assert_eq!(mu.len(), nu.len(), "level count mismatch");
    assert!(gammas.len() >= mu.len(), "need a diameter per level");
    let mut total = 0.0;
    for l in 1..mu.len() {
        assert_eq!(mu[l].len(), nu[l].len(), "level {l} width mismatch");
        let tv: f64 = mu[l].iter().zip(&nu[l]).map(|(a, b)| (a - b).abs()).sum::<f64>() * 0.5;
        total += gammas[l - 1] * tv;
    }
    total
}

/// Dense per-level mass vectors for a sample, normalised to sum to 1.
pub fn level_masses<D: HierarchicalDomain>(
    domain: &D,
    sample: &[D::Point],
    depth: usize,
) -> Vec<Vec<f64>> {
    assert!(!sample.is_empty(), "sample must be non-empty");
    assert!(depth <= 24, "dense level masses limited to depth 24");
    let mut out: Vec<Vec<f64>> = (0..=depth).map(|l| vec![0.0; 1usize << l]).collect();
    let w = 1.0 / sample.len() as f64;
    for p in sample {
        let deep = domain.locate(p, depth);
        for (l, row) in out.iter_mut().enumerate() {
            row[deep.ancestor(l).bits() as usize] += w;
        }
    }
    out
}

/// Tree-`W1` between two samples over the same decomposition, evaluated to
/// `depth` levels.
pub fn tree_w1_between_samples<D: HierarchicalDomain>(
    domain: &D,
    a: &[D::Point],
    b: &[D::Point],
    depth: usize,
) -> f64 {
    let mu = level_masses(domain, a, depth);
    let nu = level_masses(domain, b, depth);
    let gammas: Vec<f64> = (0..=depth).map(|l| domain.level_diameter(l)).collect();
    tree_w1_from_masses(&mu, &nu, &gammas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, UnitInterval};

    #[test]
    fn identical_samples_zero() {
        let d = UnitInterval::new();
        let a = vec![0.1, 0.4, 0.9];
        assert!(tree_w1_between_samples(&d, &a, &a, 8) < 1e-12);
    }

    #[test]
    fn symmetric() {
        let d = UnitInterval::new();
        let a = vec![0.1, 0.4, 0.9];
        let b = vec![0.2, 0.5, 0.7];
        let ab = tree_w1_between_samples(&d, &a, &b, 8);
        let ba = tree_w1_between_samples(&d, &b, &a, 8);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality() {
        let d = UnitInterval::new();
        let a = vec![0.1, 0.4, 0.9];
        let b = vec![0.2, 0.5, 0.7];
        let c = vec![0.15, 0.55, 0.95];
        let ab = tree_w1_between_samples(&d, &a, &b, 8);
        let bc = tree_w1_between_samples(&d, &b, &c, 8);
        let ac = tree_w1_between_samples(&d, &a, &c, 8);
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn upper_bounds_exact_w1_in_1d() {
        let d = UnitInterval::new();
        let a: Vec<f64> = (0..200).map(|i| ((i * 37) % 200) as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| ((i * 53 + 11) % 200) as f64 / 200.0).collect();
        let tree = tree_w1_between_samples(&d, &a, &b, 12);
        let exact = crate::wasserstein1d::w1_exact_1d(&a, &b);
        assert!(tree >= exact - 1e-9, "tree W1 {tree} must dominate exact W1 {exact}");
        // ... and not by an absurd factor on dyadically-spread data.
        assert!(tree < exact * 50.0 + 0.1, "tree bound uselessly loose: {tree} vs {exact}");
    }

    #[test]
    fn detects_mass_shift_in_2d() {
        let cube = Hypercube::new(2);
        let a: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![0.1 + 0.001 * (i % 10) as f64, 0.1 + 0.001 * (i / 10) as f64])
            .collect();
        let b: Vec<Vec<f64>> = a.iter().map(|p| vec![p[0] + 0.8, p[1] + 0.8]).collect();
        let far = tree_w1_between_samples(&cube, &a, &b, 10);
        let near = tree_w1_between_samples(&cube, &a, &a, 10);
        assert!(far > 0.5, "diagonal shift must cost ~0.8 in l∞: got {far}");
        assert!(near < 1e-12);
    }

    #[test]
    fn masses_sum_to_one_per_level() {
        let d = UnitInterval::new();
        let m = level_masses(&d, &[0.1, 0.2, 0.9], 6);
        for (l, row) in m.iter().enumerate() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12, "level {l}");
        }
    }

    #[test]
    #[should_panic(expected = "level count mismatch")]
    fn mismatched_levels_rejected() {
        let _ = tree_w1_from_masses(&[vec![1.0]], &[vec![1.0], vec![0.5, 0.5]], &[1.0, 0.5]);
    }
}
