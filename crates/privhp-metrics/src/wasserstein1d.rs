//! Exact 1-Wasserstein distance in one dimension.
//!
//! In 1-D, `W1(μ, ν) = ∫ |F_μ(t) − F_ν(t)| dt`. Between two finite samples
//! this reduces to the sorted-coupling formula; between a sample and a
//! piecewise-uniform density (what a partition tree encodes) the integral is
//! evaluated in closed form over the merged breakpoints — no Monte-Carlo
//! noise, which matters because the quantity under study *is* an expectation
//! over algorithm randomness and we don't want estimator noise on top.

/// A piecewise-uniform density segment: mass `mass` spread uniformly over
/// `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Left endpoint.
    pub lo: f64,
    /// Right endpoint.
    pub hi: f64,
    /// Probability mass of the segment (non-negative).
    pub mass: f64,
}

/// Exact `W1` between two equal-mass empirical measures on ℝ.
///
/// With sorted samples `x_(1..n)`, `y_(1..m)`, this evaluates
/// `∫ |F_x − F_y|`. For `n == m` it is the mean of `|x_(i) − y_(i)|`; the
/// general case integrates the step functions over merged breakpoints.
///
/// ```
/// use privhp_metrics::wasserstein1d::w1_exact_1d;
///
/// let real = [0.1, 0.2, 0.3];
/// let shifted = [0.2, 0.3, 0.4];
/// assert!((w1_exact_1d(&real, &shifted) - 0.1).abs() < 1e-12);
/// ```
pub fn w1_exact_1d(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
    ys.sort_by(|p, q| p.partial_cmp(q).unwrap());

    if xs.len() == ys.len() {
        let n = xs.len() as f64;
        return xs.iter().zip(&ys).map(|(x, y)| (x - y).abs()).sum::<f64>() / n;
    }

    // General case: integrate |F_x - F_y| over the union of breakpoints.
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let mut points: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    points.sort_by(|p, q| p.partial_cmp(q).unwrap());
    points.dedup();
    let mut total = 0.0;
    let (mut ia, mut ib) = (0usize, 0usize);
    for w in points.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        while ia < xs.len() && xs[ia] <= t0 {
            ia += 1;
        }
        while ib < ys.len() && ys[ib] <= t0 {
            ib += 1;
        }
        let fa = ia as f64 / na;
        let fb = ib as f64 / nb;
        total += (fa - fb).abs() * (t1 - t0);
    }
    total
}

/// Exact `W1` between the empirical measure of `sample` and the
/// piecewise-uniform distribution described by `segments`.
///
/// Segments may overlap and need not be sorted; masses are normalised to 1.
/// Segments of zero width contribute a point mass at `lo`.
pub fn w1_sample_vs_segments(sample: &[f64], segments: &[Segment]) -> f64 {
    assert!(!sample.is_empty(), "sample must be non-empty");
    let total_mass: f64 = segments.iter().map(|s| s.mass.max(0.0)).sum();
    assert!(total_mass > 0.0, "segments must carry positive mass");

    let mut xs = sample.to_vec();
    xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
    let n = xs.len() as f64;

    // Breakpoints: sample points and segment endpoints.
    let mut points: Vec<f64> = xs.clone();
    for s in segments {
        points.push(s.lo);
        points.push(s.hi);
    }
    points.sort_by(|p, q| p.partial_cmp(q).unwrap());
    points.dedup();

    // CDF of the segments at t.
    let seg_cdf = |t: f64| -> f64 {
        let mut acc = 0.0;
        for s in segments {
            let m = s.mass.max(0.0);
            if m == 0.0 {
                continue;
            }
            if s.hi <= s.lo {
                // Point mass at lo.
                if t >= s.lo {
                    acc += m;
                }
            } else if t >= s.hi {
                acc += m;
            } else if t > s.lo {
                acc += m * (t - s.lo) / (s.hi - s.lo);
            }
        }
        acc / total_mass
    };

    let mut total = 0.0;
    let mut i = 0usize;
    for w in points.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        while i < xs.len() && xs[i] <= t0 {
            i += 1;
        }
        let f_sample = i as f64 / n;
        // The segment CDF is linear on (t0, t1) if no endpoint lies inside
        // (guaranteed by our breakpoint set), so |F_s - F_seg| is piecewise
        // linear: integrate via the trapezoid rule on the two endpoints,
        // splitting at a sign change of the difference.
        let d0 = f_sample - seg_cdf(t0);
        let d1 = f_sample - seg_cdf(t1 - (t1 - t0) * 1e-12);
        let dt = t1 - t0;
        if (d0 >= 0.0) == (d1 >= 0.0) {
            total += 0.5 * (d0.abs() + d1.abs()) * dt;
        } else {
            // Linear crossing inside: split at the root.
            let root = d0 / (d0 - d1);
            total += 0.5 * d0.abs() * root * dt + 0.5 * d1.abs() * (1.0 - root) * dt;
        }
    }
    total
}

/// Exact `W1` between two piecewise-uniform distributions given as segment
/// lists (both normalised internally). Both CDFs are piecewise linear, so
/// `∫|F_a − F_b|` is evaluated in closed form over the merged breakpoints,
/// splitting each interval at a sign change of the (linear) difference.
pub fn w1_between_segments(a: &[Segment], b: &[Segment]) -> f64 {
    let total_a: f64 = a.iter().map(|s| s.mass.max(0.0)).sum();
    let total_b: f64 = b.iter().map(|s| s.mass.max(0.0)).sum();
    assert!(total_a > 0.0 && total_b > 0.0, "segments must carry positive mass");

    let cdf = |segs: &[Segment], total: f64, t: f64| -> f64 {
        let mut acc = 0.0;
        for s in segs {
            let m = s.mass.max(0.0);
            if m == 0.0 {
                continue;
            }
            if s.hi <= s.lo {
                if t >= s.lo {
                    acc += m;
                }
            } else if t >= s.hi {
                acc += m;
            } else if t > s.lo {
                acc += m * (t - s.lo) / (s.hi - s.lo);
            }
        }
        acc / total
    };

    let mut points: Vec<f64> = a.iter().chain(b.iter()).flat_map(|s| [s.lo, s.hi]).collect();
    points.sort_by(|p, q| p.partial_cmp(q).unwrap());
    points.dedup();

    let mut totalw = 0.0;
    for w in points.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let dt = t1 - t0;
        if dt <= 0.0 {
            continue;
        }
        // Evaluate just inside the interval so point masses at t0 are
        // included and those at t1 are not.
        let eps = dt * 1e-12;
        let d0 = cdf(a, total_a, t0 + eps) - cdf(b, total_b, t0 + eps);
        let d1 = cdf(a, total_a, t1 - eps) - cdf(b, total_b, t1 - eps);
        if (d0 >= 0.0) == (d1 >= 0.0) {
            totalw += 0.5 * (d0.abs() + d1.abs()) * dt;
        } else {
            let root = d0 / (d0 - d1);
            totalw += 0.5 * d0.abs() * root * dt + 0.5 * d1.abs() * (1.0 - root) * dt;
        }
    }
    totalw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_zero() {
        let a = [0.1, 0.5, 0.9];
        assert!(w1_exact_1d(&a, &a) < 1e-12);
    }

    #[test]
    fn shifted_samples() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.2, 0.3, 0.4];
        assert!((w1_exact_1d(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [0.05, 0.42, 0.77, 0.91];
        let b = [0.1, 0.2, 0.88];
        assert!((w1_exact_1d(&a, &b) - w1_exact_1d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn unequal_sizes_match_known_value() {
        // a = {0}, b = {0, 1}: F_a jumps to 1 at 0; F_b is 1/2 on [0,1).
        // ∫|F_a - F_b| over [0,1) = 1/2.
        let a = [0.0];
        let b = [0.0, 1.0];
        assert!((w1_exact_1d(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_on_triples() {
        let a = [0.1, 0.4, 0.8];
        let b = [0.3, 0.35, 0.9];
        let c = [0.2, 0.6, 0.75];
        let ab = w1_exact_1d(&a, &b);
        let bc = w1_exact_1d(&b, &c);
        let ac = w1_exact_1d(&a, &c);
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn sample_vs_single_uniform_segment() {
        // Sample = the uniform's own quantiles → small distance; a point
        // mass far away → distance ≈ mean |x - 0.5|... use exact cases:
        // sample {0.5} vs uniform [0,1): W1 = ∫|1_{t≥0.5} - t| dt = 1/4.
        let seg = [Segment { lo: 0.0, hi: 1.0, mass: 1.0 }];
        let d = w1_sample_vs_segments(&[0.5], &seg);
        assert!((d - 0.25).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn sample_vs_matching_segments_is_small() {
        // 1000 evenly spread points vs the uniform density.
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let seg = [Segment { lo: 0.0, hi: 1.0, mass: 1.0 }];
        let d = w1_sample_vs_segments(&sample, &seg);
        assert!(d < 1e-3, "evenly spread sample should be near 0, got {d}");
    }

    #[test]
    fn sample_vs_point_mass_segment() {
        // Zero-width segment = point mass. Sample {0.0} vs point mass at 1.
        let seg = [Segment { lo: 1.0, hi: 1.0, mass: 1.0 }];
        let d = w1_sample_vs_segments(&[0.0], &seg);
        assert!((d - 1.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn segments_agree_with_sampling_estimate() {
        // Piecewise density: 0.7 mass on [0, 0.25), 0.3 on [0.5, 1.0).
        let segs =
            [Segment { lo: 0.0, hi: 0.25, mass: 0.7 }, Segment { lo: 0.5, hi: 1.0, mass: 0.3 }];
        let sample = [0.1, 0.2, 0.6, 0.9];
        let exact = w1_sample_vs_segments(&sample, &segs);
        // Monte-Carlo reference with a dense deterministic grid draw.
        let mut draws = Vec::new();
        for i in 0..7_000 {
            draws.push(0.25 * ((i as f64 + 0.5) / 7_000.0));
        }
        for i in 0..3_000 {
            draws.push(0.5 + 0.5 * ((i as f64 + 0.5) / 3_000.0));
        }
        let reference = w1_exact_1d(&sample, &draws);
        assert!((exact - reference).abs() < 2e-3, "closed form {exact} vs reference {reference}");
    }

    #[test]
    fn segments_vs_segments_basic() {
        let a = [Segment { lo: 0.0, hi: 1.0, mass: 1.0 }];
        // Shifted uniform on [0.25, 1.25): W1 = 0.25.
        let b = [Segment { lo: 0.25, hi: 1.25, mass: 1.0 }];
        let d = w1_between_segments(&a, &b);
        assert!((d - 0.25).abs() < 1e-9, "got {d}");
        assert!(w1_between_segments(&a, &a) < 1e-12);
    }

    #[test]
    fn segments_vs_segments_symmetric_and_triangle() {
        let a = [Segment { lo: 0.0, hi: 0.5, mass: 1.0 }];
        let b = [Segment { lo: 0.0, hi: 0.25, mass: 0.5 }, Segment { lo: 0.5, hi: 1.0, mass: 0.5 }];
        let c = [Segment { lo: 0.5, hi: 1.0, mass: 1.0 }];
        let ab = w1_between_segments(&a, &b);
        let ba = w1_between_segments(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        let bc = w1_between_segments(&b, &c);
        let ac = w1_between_segments(&a, &c);
        assert!(ac <= ab + bc + 1e-9);
        // Disjoint uniform halves: W1 = 0.5 (every unit of mass moves 0.5).
        assert!((ac - 0.5).abs() < 1e-9, "got {ac}");
    }

    #[test]
    fn segments_agree_with_sample_form() {
        // Dense quantile sample of density a, measured against density b,
        // must approach the closed segment-vs-segment value.
        let a = [Segment { lo: 0.0, hi: 0.2, mass: 0.7 }, Segment { lo: 0.6, hi: 1.0, mass: 0.3 }];
        let b = [Segment { lo: 0.0, hi: 1.0, mass: 1.0 }];
        let closed = w1_between_segments(&a, &b);
        let mut probe = Vec::new();
        for i in 0..7_000 {
            probe.push(0.2 * (i as f64 + 0.5) / 7_000.0);
        }
        for i in 0..3_000 {
            probe.push(0.6 + 0.4 * (i as f64 + 0.5) / 3_000.0);
        }
        let sampled = w1_sample_vs_segments(&probe, &b);
        assert!((closed - sampled).abs() < 2e-3, "closed {closed} vs sampled {sampled}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_rejected() {
        let _ = w1_exact_1d(&[], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_mass_segments_rejected() {
        let _ = w1_sample_vs_segments(&[0.5], &[Segment { lo: 0.0, hi: 1.0, mass: 0.0 }]);
    }
}
