#![warn(missing_docs)]

//! Utility measurement — the expected 1-Wasserstein distance (paper §3.2,
//! §6).
//!
//! The paper measures a generator's quality by `E[W1(μ_X, 𝒯)]`. This crate
//! provides three complementary estimators:
//!
//! * [`wasserstein1d`] — **exact** `W1` in one dimension: between two
//!   samples (sorted-coupling / quantile formula) and, with zero sampling
//!   noise, between a sample and a *piecewise-uniform density* (the exact
//!   distribution a partition tree encodes);
//! * [`tree_wasserstein`] — the hierarchical upper bound
//!   `W1 ≤ Σ_l γ_l · Σ_θ |μ(Ω_θ) − ν(Ω_θ)|` used throughout the paper's
//!   proofs; works in every dimension and is the metric-of-record for the
//!   `d ≥ 2` experiments;
//! * [`sliced`] — sliced `W1` via random 1-D projections, an independent
//!   estimator used to sanity-check the tree bound's shape.
//!
//! Plus [`histogram`] (per-level cell masses from samples) and [`stats`]
//! (means, standard errors) for the experiment harness.

pub mod histogram;
pub mod sliced;
pub mod stats;
pub mod tree_wasserstein;
pub mod wasserstein1d;

pub use histogram::{cell_masses, total_variation};
pub use sliced::sliced_w1;
pub use stats::{mean, std_error, Summary};
pub use tree_wasserstein::{tree_w1_between_samples, tree_w1_from_masses};
pub use wasserstein1d::{w1_between_segments, w1_exact_1d, w1_sample_vs_segments, Segment};
