//! Small statistics helpers for the experiment harness.

use serde::{Deserialize, Serialize};

/// Mean of a slice.
///
/// # Panics
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Standard error of the mean (`s/√n`, Bessel-corrected). Returns 0 for a
/// single observation.
pub fn std_error(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

/// A summarised batch of trial measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trials.
    pub trials: usize,
}

impl Summary {
    /// Summarises a batch of measurements.
    pub fn of(xs: &[f64]) -> Self {
        Self { mean: mean(xs), std_error: std_error(xs), trials: xs.len() }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6} ± {:.6} (n={})", self.mean, self.std_error, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_se() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        // var = 5/3, se = sqrt(5/12)
        assert!((std_error(&xs) - (5.0f64 / 12.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation_zero_se() {
        assert_eq!(std_error(&[7.0]), 0.0);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[1.0, 1.0, 1.0]);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.std_error, 0.0);
        assert_eq!(s.trials, 3);
        assert!(s.to_string().contains("n=3"));
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn empty_mean_panics() {
        let _ = mean(&[]);
    }
}
