//! Cell-mass histograms and discrete divergences.
//!
//! Helpers shared by the experiment harness: project a sample onto the
//! level-`l` cells of a decomposition and compare the resulting discrete
//! distributions.

use privhp_domain::HierarchicalDomain;

/// The normalised mass each level-`level` cell receives from `sample`
/// (dense vector of length `2^level`).
pub fn cell_masses<D: HierarchicalDomain>(
    domain: &D,
    sample: &[D::Point],
    level: usize,
) -> Vec<f64> {
    assert!(!sample.is_empty(), "sample must be non-empty");
    assert!(level <= 24, "dense histograms limited to level 24");
    let mut out = vec![0.0; 1usize << level];
    let w = 1.0 / sample.len() as f64;
    for p in sample {
        out[domain.locate(p, level).bits() as usize] += w;
    }
    out
}

/// Total-variation distance `½ Σ |p_i − q_i|` between two discrete
/// distributions.
///
/// # Panics
/// Panics on length mismatch.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;

    #[test]
    fn masses_sum_to_one() {
        let d = UnitInterval::new();
        let m = cell_masses(&d, &[0.1, 0.3, 0.6, 0.9], 3);
        assert_eq!(m.len(), 8);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masses_land_in_right_cells() {
        let d = UnitInterval::new();
        let m = cell_masses(&d, &[0.1, 0.1, 0.9], 2);
        assert!((m[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((m[3] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tv_properties() {
        let p = [0.5, 0.5, 0.0];
        let q = [0.0, 0.5, 0.5];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
        // Disjoint supports → TV = 1.
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tv_length_checked() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }
}
