//! Sliced 1-Wasserstein — an independent estimator for `d ≥ 2`.
//!
//! `SW1(μ, ν) = E_φ[W1(φ#μ, φ#ν)]` over uniformly random unit directions
//! `φ`. Each projection reduces to the exact 1-D computation. Sliced `W1` is
//! a lower bound on `W1` (projections are 1-Lipschitz) with the same
//! qualitative behaviour, so it cross-checks the tree bound from the other
//! side: tree-W1 ≥ W1 ≥ SW1.

use rand::Rng;
use rand::RngCore;

use crate::wasserstein1d::w1_exact_1d;

/// Draws a uniform direction on the unit sphere in `dim` dimensions via
/// normalised Gaussians (Box–Muller from uniforms, no external deps).
fn random_direction<R: RngCore>(dim: usize, rng: &mut R) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..dim)
            .map(|_| {
                // Box-Muller: one Gaussian per pair of uniforms; we waste
                // half for simplicity (this is not a hot path).
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-9 {
            return v.into_iter().map(|x| x / norm).collect();
        }
    }
}

/// Sliced `W1` between two point clouds in `R^dim`, averaged over
/// `projections` random directions.
///
/// # Panics
/// Panics on empty samples, dimension mismatches, or zero projections.
pub fn sliced_w1<R: RngCore>(
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    projections: usize,
    rng: &mut R,
) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    assert!(projections > 0, "need at least one projection");
    let dim = a[0].len();
    assert!(a.iter().all(|p| p.len() == dim), "dimension mismatch in a");
    assert!(b.iter().all(|p| p.len() == dim), "dimension mismatch in b");

    let mut total = 0.0;
    for _ in 0..projections {
        let dir = random_direction(dim, rng);
        let pa: Vec<f64> = a.iter().map(|p| dot(p, &dir)).collect();
        let pb: Vec<f64> = b.iter().map(|p| dot(p, &dir)).collect();
        total += w1_exact_1d(&pa, &pb);
    }
    total / projections as f64
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(13)
    }

    fn grid(offset: f64) -> Vec<Vec<f64>> {
        (0..100)
            .map(|i| vec![offset + 0.001 * (i % 10) as f64, offset + 0.001 * (i / 10) as f64])
            .collect()
    }

    #[test]
    fn zero_on_identical_clouds() {
        let a = grid(0.1);
        assert!(sliced_w1(&a, &a, 16, &mut rng()) < 1e-12);
    }

    #[test]
    fn detects_translation() {
        let a = grid(0.1);
        let b = grid(0.6);
        let d = sliced_w1(&a, &b, 64, &mut rng());
        // Translation by (0.5, 0.5): E|<t, φ>| over the circle = 2|t|/π ≈ 0.45.
        assert!((d - 0.45).abs() < 0.06, "sliced W1 {d} should be ~0.45");
    }

    #[test]
    fn directions_are_unit() {
        let mut r = rng();
        for dim in [1usize, 2, 5] {
            for _ in 0..50 {
                let v = random_direction(dim, &mut r);
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                assert!((norm - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symmetric() {
        let a = grid(0.2);
        let b = grid(0.4);
        // Same seed → same directions → exact symmetry check.
        let ab = sliced_w1(&a, &b, 32, &mut rng());
        let ba = sliced_w1(&b, &a, 32, &mut rng());
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn ragged_input_rejected() {
        let a = vec![vec![0.1, 0.2], vec![0.3]];
        let b = vec![vec![0.1, 0.2]];
        let _ = sliced_w1(&a, &b, 4, &mut rng());
    }
}
