use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PartitionTree, PrivHpConfig};
use privhp_domain::Path;

#[test]
fn hostile_tree_counters() {
    let mut tree = PartitionTree::complete(4, |p| p.sketch_key() as f64 + 0.125);
    let hot = Path::from_bits(0b0110, 4);
    tree.insert(hot.left(), 1.5);
    tree.insert(hot.right(), 0.5);
    let config = PrivHpConfig::for_domain(1.0, 4096, 8).with_seed(7);
    let release = ReleaseFile::new(DomainSpec::Interval, config, tree);
    let mut bytes = release.to_binary();

    // find TREE section (kind 2) in the table: header=24, entries of 24 bytes
    let mut tree_off = None;
    for i in 0..5 {
        let e = 24 + i * 24;
        let kind = u64::from_le_bytes(bytes[e..e + 8].try_into().unwrap());
        if kind == 2 {
            tree_off = Some(u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize);
        }
    }
    let off = tree_off.unwrap();
    let dense_levels = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let dense_nodes = (1u64 << dense_levels) - 1;
    let total: u64 = 1 << 61;
    bytes[off + 8..off + 16].copy_from_slice(&(total - dense_nodes).to_le_bytes()); // overlay_count
    bytes[off + 24..off + 32].copy_from_slice(&total.to_le_bytes()); // total_nodes

    match ReleaseFile::from_binary(&bytes) {
        Ok(_) => panic!("hostile counters decoded"),
        Err(e) => println!("clean error: {e}"),
    }
}
