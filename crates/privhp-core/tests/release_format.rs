//! Property tests for the release artifact formats and release merging
//! (`privhp_core::release::{binary, merge}`, spec in `docs/FORMAT.md`).
//!
//! The contracts under test:
//!
//! * **Lossless twin** — for any release, the `.phpr` binary encoding
//!   round-trips to the *byte-identical* JSON rendering and bit-identical
//!   per-node counts; re-encoding is idempotent.
//! * **Merge = tree merge** — when inputs share one node set,
//!   [`merge_releases`] is exactly the nodewise [`PartitionTree::merge`]
//!   sum, and the merged artifact samples bit-identically to a release
//!   built from that reference tree.
//! * **Mixture CDF** — for any frontier shapes, the merged CDF is the
//!   mass-weighted mixture of the input CDFs.
//! * **Hostile bytes** — truncations always fail cleanly, random byte
//!   flips never panic, and version bumps are rejected with the
//!   structured error, never UB.

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{
    merge_releases, BinaryFormatError, PartitionTree, PrivHpConfig, TreeQuery, SAMPLE_SEED_XOR,
};
use privhp_domain::{Path, UnitInterval};
use privhp_dp::rng::rng_from_seed;
use proptest::prelude::*;

/// A fixed-shape config; only ε and seed may vary across merge inputs.
fn config(epsilon: f64, seed: u64) -> PrivHpConfig {
    let mut c = PrivHpConfig::for_domain(1.0, 64, 4).with_seed(seed);
    c.epsilon = epsilon;
    c
}

/// Grows a random sibling-closed tree: starting from a root holding
/// `mass`, each byte of `splits` picks a frontier leaf and splits its
/// count between the two children with an exact dyadic fraction, so the
/// tree is consistent (children sum to parents) and positive — a valid,
/// sampleable artifact of arbitrary shape.
fn random_tree(mass: f64, splits: &[u8]) -> PartitionTree {
    let mut tree = PartitionTree::new();
    tree.insert(Path::root(), mass);
    let mut frontier = vec![Path::root()];
    for &b in splits {
        let idx = b as usize % frontier.len();
        let node = frontier.swap_remove(idx);
        let c = tree.count(&node).unwrap();
        // 1/256-granular fraction, exact in f64 for dyadic `c`.
        let frac = (b as f64 + 0.5) / 256.0;
        tree.insert(node.left(), c * frac);
        tree.insert(node.right(), c * (1.0 - frac));
        if node.level() + 1 < 8 {
            frontier.push(node.left());
            frontier.push(node.right());
        }
        if frontier.is_empty() {
            break;
        }
    }
    tree
}

fn release_from(splits: &[u8], mass: f64, epsilon: f64, seed: u64) -> ReleaseFile {
    ReleaseFile::new(DomainSpec::Interval, config(epsilon, seed), random_tree(mass, splits))
}

/// Draws from a tree through the same whitened-seed pipeline the CLI and
/// server use, as raw bits for exact comparison.
fn draws_bits(release: &ReleaseFile, seed: u64) -> Vec<u64> {
    let domain = UnitInterval::new();
    let sampler = release.generator(&domain);
    let mut rng = rng_from_seed(seed ^ SAMPLE_SEED_XOR);
    sampler.sample_many(64, &mut rng).into_iter().map(f64::to_bits).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Binary round-trip reproduces the exact JSON bytes and count bits
    /// for arbitrary tree shapes, and re-encoding is idempotent.
    #[test]
    fn binary_round_trip_is_bit_identical(
        splits in proptest::collection::vec(0u64..256, 0..48),
        mass_units in 1u64..1_000_000,
    ) {
        let splits: Vec<u8> = splits.iter().map(|&b| b as u8).collect();
        let release = release_from(&splits, mass_units as f64 / 8.0, 1.0, 42);
        let bytes = release.to_binary();
        let back = ReleaseFile::from_binary(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back.to_json(), release.to_json());
        for (p, c) in release.tree.iter() {
            prop_assert_eq!(back.tree.count(p).map(f64::to_bits), Some(c.to_bits()));
        }
        prop_assert_eq!(back.tree.len(), release.tree.len());
        prop_assert_eq!(back.to_binary(), bytes);
    }

    /// On identical node sets, `merge_releases` equals the tree-level
    /// nodewise merge — counts and sampled draws bit for bit.
    #[test]
    fn merge_matches_tree_merge_on_identical_shapes(
        splits in proptest::collection::vec(0u64..256, 0..32),
        mass_a in 1u64..10_000,
        mass_b in 1u64..10_000,
        seed in 0u64..1024,
    ) {
        let splits: Vec<u8> = splits.iter().map(|&b| b as u8).collect();
        let a = release_from(&splits, mass_a as f64, 1.0, 7);
        let b = release_from(&splits, mass_b as f64 / 4.0, 0.5, 9);
        let merged = merge_releases(&[a.clone(), b.clone()]).unwrap();

        let mut reference_tree = a.tree.clone();
        reference_tree.merge(&b.tree);
        for (p, c) in reference_tree.iter() {
            prop_assert_eq!(merged.tree.count(p).map(f64::to_bits), Some(c.to_bits()));
        }
        prop_assert_eq!(merged.tree.len(), reference_tree.len());

        // The merged artifact must *serve* identically to a release built
        // from the reference tree, through binary save/load included.
        let reference =
            ReleaseFile::new(DomainSpec::Interval, merged.config.clone(), reference_tree);
        prop_assert_eq!(draws_bits(&merged, seed), draws_bits(&reference, seed));
        let reloaded = ReleaseFile::from_binary(&merged.to_binary()).unwrap();
        prop_assert_eq!(draws_bits(&reloaded, seed), draws_bits(&reference, seed));
    }

    /// For arbitrary (asymmetric) frontiers, the merged CDF is the
    /// mass-weighted mixture of the input CDFs.
    #[test]
    fn merged_cdf_is_the_mass_weighted_mixture(
        splits_a in proptest::collection::vec(0u64..256, 0..24),
        splits_b in proptest::collection::vec(0u64..256, 0..24),
        x_units in 0u64..65,
    ) {
        let splits_a: Vec<u8> = splits_a.iter().map(|&b| b as u8).collect();
        let splits_b: Vec<u8> = splits_b.iter().map(|&b| b as u8).collect();
        let a = release_from(&splits_a, 96.0, 1.0, 7);
        let b = release_from(&splits_b, 32.0, 2.0, 9);
        let merged = merge_releases(&[a.clone(), b.clone()]).unwrap();

        let domain = UnitInterval::new();
        let x = x_units as f64 / 64.0;
        let cdf = |r: &ReleaseFile| TreeQuery::new(&r.tree, &domain).cdf(x);
        let (wa, wb) = (96.0, 32.0);
        let mixture = (wa * cdf(&a) + wb * cdf(&b)) / (wa + wb);
        prop_assert!(
            (cdf(&merged) - mixture).abs() < 1e-9,
            "cdf({}) = {} but mixture = {}", x, cdf(&merged), mixture
        );
    }

    /// Every truncation of a valid artifact fails cleanly; random byte
    /// flips never panic (they may decode if they only move a count).
    #[test]
    fn hostile_bytes_never_panic(
        splits in proptest::collection::vec(0u64..256, 0..24),
        cut_frac in 0u64..1024,
        flip_at in 0u64..1024,
        flip_bit in 0u64..8,
    ) {
        let splits: Vec<u8> = splits.iter().map(|&b| b as u8).collect();
        let release = release_from(&splits, 64.0, 1.0, 3);
        let bytes = release.to_binary();

        let cut = (cut_frac as usize * bytes.len() / 1024).min(bytes.len() - 1);
        prop_assert!(
            ReleaseFile::from_binary(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes must be rejected", cut, bytes.len()
        );

        let mut flipped = bytes.clone();
        let at = flip_at as usize % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        let _ = ReleaseFile::from_binary(&flipped); // must not panic
    }

    /// Unknown format/release versions are structured errors carrying the
    /// found version — future formats fail closed, not undefined.
    #[test]
    fn version_bumps_are_rejected(found in 2u64..1_000_000) {
        let release = release_from(&[3, 200], 8.0, 1.0, 3);
        let mut bytes = release.to_binary();
        bytes[8..12].copy_from_slice(&(found as u32).to_le_bytes());
        prop_assert_eq!(
            ReleaseFile::from_binary(&bytes).unwrap_err(),
            BinaryFormatError::UnsupportedFormat { found: found as u32 }
        );

        let mut bytes = release.to_binary();
        bytes[16..20].copy_from_slice(&(found as u32).to_le_bytes());
        prop_assert_eq!(
            ReleaseFile::from_binary(&bytes).unwrap_err(),
            BinaryFormatError::UnsupportedRelease { found: found as u32 }
        );
    }
}
