//! GrowPartition — paper Algorithm 2.
//!
//! After the stream pass, the complete tree holds noisy exact counts down to
//! level `L★` and each deeper level `l` is summarised by `sketch_l`. Growth
//! expands the tree one level at a time: the current *hot* set `V` (initially
//! every level-`L★` leaf) is branched into children whose counts come from
//! noisy sketch queries, consistency is enforced at each expanded parent,
//! and the top-`k` children by count become the next hot set.
//!
//! Level bookkeeping: the paper's pseudocode has an off-by-one between the
//! loop index, the sketch queried and the top-k level (see DESIGN.md §3);
//! we implement the reading fixed by the paper's Figure 2: at iteration
//! `l ∈ {L★+1, …, L}` the hot set `V` holds nodes at level `l−1`, children
//! are created at level `l` with counts from `sketch_l`, and `V` becomes the
//! top-`k` of the new level-`l` nodes. Growth is entirely deterministic
//! given its (already private) inputs, so it is post-processing (Lemma 2).

use privhp_domain::Path;
use privhp_sketch::{ContinualCountMinSketch, PrivateCountMinSketch, PrivateCountSketch};

use crate::consistency::{enforce_consistency, enforce_consistency_subtree};
use crate::tree::PartitionTree;

/// A private frequency estimator for subdomain keys — the only interface
/// GrowPartition needs from a level summary. Implemented by the one-shot
/// private Count-Min sketch (Algorithm 1) and by its continual-observation
/// counterpart (§3.1 adaptation).
pub trait FrequencyOracle {
    /// Noisy frequency estimate for `key`.
    fn estimate(&self, key: u64) -> f64;
}

impl FrequencyOracle for PrivateCountMinSketch {
    fn estimate(&self, key: u64) -> f64 {
        self.query(key)
    }
}

impl FrequencyOracle for PrivateCountSketch {
    fn estimate(&self, key: u64) -> f64 {
        self.query(key)
    }
}

impl FrequencyOracle for ContinualCountMinSketch {
    fn estimate(&self, key: u64) -> f64 {
        self.query(key)
    }
}

/// Selects the paths with the top-`k` counts (ties broken toward the
/// lexicographically smaller path for determinism).
pub fn top_k_paths(tree: &PartitionTree, candidates: &[Path], k: usize) -> Vec<Path> {
    let mut v: Vec<Path> = candidates.to_vec();
    v.sort_by(|a, b| {
        let ca = tree.count_unchecked(a);
        let cb = tree.count_unchecked(b);
        cb.partial_cmp(&ca).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(b))
    });
    v.truncate(k);
    v
}

/// Options for [`grow_partition_with_options`]; the default reproduces
/// Algorithm 2 exactly.
#[derive(Debug, Clone, Copy)]
pub struct GrowOptions {
    /// Run the consistency steps (Algorithm 2 lines 2 and 9). Disabling
    /// this is **only** for the E12 ablation — the paper (§4.4) observes
    /// consistency increases utility at the same privacy budget, and the
    /// sampler additionally relies on non-negative counts, so raw counts
    /// are clamped at 0 when consistency is skipped.
    pub enforce_consistency: bool,
}

impl Default for GrowOptions {
    fn default() -> Self {
        Self { enforce_consistency: true }
    }
}

/// Grows the partition tree (Algorithm 2).
///
/// * `tree` — the complete noisy tree of depth `l_star`;
/// * `sketches` — `sketches[i]` summarises level `l_star + 1 + i`; there
///   must be exactly `depth − l_star` of them;
/// * `k` — the pruning parameter (branches kept per level).
///
/// Returns the grown tree ready for sampling.
///
/// # Panics
/// Panics if the sketch count does not match the level span.
pub fn grow_partition<S: FrequencyOracle>(
    tree: PartitionTree,
    sketches: &[S],
    l_star: usize,
    depth: usize,
    k: usize,
) -> PartitionTree {
    grow_partition_with_options(tree, sketches, l_star, depth, k, GrowOptions::default())
}

/// [`grow_partition`] with explicit [`GrowOptions`] (ablation hook).
pub fn grow_partition_with_options<S: FrequencyOracle>(
    mut tree: PartitionTree,
    sketches: &[S],
    l_star: usize,
    depth: usize,
    k: usize,
    options: GrowOptions,
) -> PartitionTree {
    assert!(l_star < depth, "L* must be below the hierarchy depth");
    assert_eq!(sketches.len(), depth - l_star, "need one sketch per level in (L*, L]");

    // Line 2: consistency over the initial complete tree, depth-first.
    if options.enforce_consistency {
        enforce_consistency_subtree(&mut tree, &Path::root());
    } else {
        clamp_negative_counts(&mut tree);
    }

    // Line 3: the first hot set is every leaf of the complete tree.
    let mut hot: Vec<Path> = tree.level_nodes(l_star).to_vec();

    for level in (l_star + 1)..=depth {
        let sketch = &sketches[level - l_star - 1];
        let mut new_nodes = Vec::with_capacity(hot.len() * 2);
        for theta in &hot {
            // Lines 6-8: materialise both children with sketch estimates.
            for child in [theta.left(), theta.right()] {
                let est = sketch.estimate(child.sketch_key());
                let est = if options.enforce_consistency { est } else { est.max(0.0) };
                tree.insert(child, est);
                new_nodes.push(child);
            }
            // Line 9: consistency at the expanded parent.
            if options.enforce_consistency {
                enforce_consistency(&mut tree, theta);
            }
        }
        // Line 10: the next hot set is the top-k of the new level.
        if level < depth {
            hot = top_k_paths(&tree, &new_nodes, k);
        }
    }
    tree
}

/// Clamps every count to be non-negative (used only when consistency is
/// disabled, so the sampler's preconditions still hold).
fn clamp_negative_counts(tree: &mut PartitionTree) {
    let paths: Vec<Path> = tree.iter().map(|(p, _)| *p).collect();
    for p in paths {
        if tree.count_unchecked(&p) < 0.0 {
            tree.set_count(&p, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_dp::rng::rng_from_seed;
    use privhp_sketch::SketchParams;

    /// Builds a private sketch over explicit (path, weight) pairs with a
    /// large ε so noise is negligible in structural tests.
    fn sketch_of(pairs: &[(Path, f64)], epsilon: f64, seed: u64) -> PrivateCountMinSketch {
        let mut rng = rng_from_seed(seed);
        let mut s =
            PrivateCountMinSketch::new(SketchParams::new(6, 64), epsilon, seed ^ 0xABCD, &mut rng);
        for (p, w) in pairs {
            s.update(p.sketch_key(), *w);
        }
        s
    }

    fn path(bits: u64, level: usize) -> Path {
        Path::from_bits(bits, level)
    }

    #[test]
    fn grows_to_requested_depth() {
        // L* = 1, L = 3, k = 1. Mass concentrated under θ=1.
        let tree = PartitionTree::complete(1, |p| match p.level() {
            0 => 10.0,
            _ => {
                if p.bits() == 1 {
                    8.0
                } else {
                    2.0
                }
            }
        });
        let s2 =
            sketch_of(&[(path(0b10, 2), 1.0), (path(0b11, 2), 7.0), (path(0b01, 2), 2.0)], 1e6, 1);
        let s3 = sketch_of(&[(path(0b110, 3), 3.0), (path(0b111, 3), 4.0)], 1e6, 2);
        let grown = grow_partition(tree, &[s2, s3], 1, 3, 1);

        assert_eq!(grown.depth(), 3);
        // Level 2 has children of both level-1 nodes (hot set = all leaves
        // of the complete tree at L*).
        assert_eq!(grown.level_nodes(2).len(), 4);
        // Level 3 only under the single top-1 node.
        assert_eq!(grown.level_nodes(3).len(), 2);
        // The winner at level 2 should be 11 (estimate ~7 before
        // consistency), so level 3 holds its children.
        assert!(grown.contains(&path(0b110, 3)));
        assert!(grown.contains(&path(0b111, 3)));
    }

    #[test]
    fn result_is_consistent() {
        let tree = PartitionTree::complete(1, |p| match p.level() {
            0 => 100.0,
            _ => 50.0,
        });
        let s2 = sketch_of(
            &[
                (path(0b00, 2), 30.0),
                (path(0b01, 2), 20.0),
                (path(0b10, 2), 25.0),
                (path(0b11, 2), 25.0),
            ],
            1e6,
            3,
        );
        let grown = grow_partition(tree, &[s2], 1, 2, 2);
        assert!(
            crate::consistency::find_consistency_violation(&grown, &Path::root(), 1e-6).is_none(),
            "grown tree must satisfy consistency"
        );
    }

    #[test]
    fn top_k_selects_by_count_then_path() {
        let mut t = PartitionTree::new();
        let a = path(0b00, 2);
        let b = path(0b01, 2);
        let c = path(0b10, 2);
        t.insert(a, 5.0);
        t.insert(b, 5.0);
        t.insert(c, 9.0);
        let top = top_k_paths(&t, &[a, b, c], 2);
        assert_eq!(top, vec![c, a], "ties broken toward smaller path");
    }

    #[test]
    fn k_larger_than_level_keeps_everything() {
        let tree = PartitionTree::complete(1, |_| 10.0);
        let s2 = sketch_of(&[(path(0b00, 2), 5.0)], 1e6, 4);
        let s3 = sketch_of(&[(path(0b000, 3), 5.0)], 1e6, 5);
        let grown = grow_partition(tree, &[s2, s3], 1, 3, 100);
        // With k ≥ level width nothing is pruned: level 3 has 8 nodes.
        assert_eq!(grown.level_nodes(3).len(), 8);
    }

    #[test]
    #[should_panic(expected = "need one sketch per level")]
    fn sketch_count_mismatch_panics() {
        let tree = PartitionTree::complete(1, |_| 1.0);
        let s = sketch_of(&[], 1.0, 6);
        let _ = grow_partition(tree, &[s], 1, 3, 1);
    }

    #[test]
    fn figure2_walkthrough_shape() {
        // Figure 2: k=2, L*=1, L=4. We reproduce the *shape*: level 2 fully
        // expanded (both level-1 nodes are hot), levels 3 and 4 expanded
        // under top-2 picks only.
        let tree = PartitionTree::complete(1, |p| match (p.level(), p.bits()) {
            (0, _) => 20.2,
            (1, 0) => 12.2,
            _ => 8.6,
        });
        let s2 = sketch_of(
            &[
                (path(0b00, 2), 4.9),
                (path(0b01, 2), 7.6),
                (path(0b10, 2), 4.2),
                (path(0b11, 2), 4.1),
            ],
            1e6,
            7,
        );
        let s3 = sketch_of(
            &[
                (path(0b000, 3), 3.5),
                (path(0b001, 3), 3.7),
                (path(0b010, 3), 4.0),
                (path(0b011, 3), 6.7),
            ],
            1e6,
            8,
        );
        let s4 = sketch_of(&[(path(0b0110, 4), 3.0), (path(0b0111, 4), 2.0)], 1e6, 9);
        let grown = grow_partition(tree, &[s2, s3, s4], 1, 4, 2);

        assert_eq!(grown.level_nodes(2).len(), 4, "level 2 fully expanded");
        assert_eq!(grown.level_nodes(3).len(), 4, "two hot nodes expanded at level 3");
        assert_eq!(grown.level_nodes(4).len(), 4, "two hot nodes expanded at level 4");
        // Hot set at level 2 should be {00, 01} (counts ~4.9, ~7.6 beat
        // ~4.2, ~4.1 after consistency shifts them all equally).
        assert!(grown.contains(&path(0b000, 3)));
        assert!(grown.contains(&path(0b010, 3)));
    }
}
