//! The partition tree `𝒯`: the decomposition of `Ω` encoded as a binary
//! tree of noisy counts (paper §4.1).
//!
//! Nodes are addressed by their [`Path`] `θ`; counts are `f64` because
//! privacy noise makes them real-valued (and possibly negative until the
//! consistency step). The tree keeps a per-level registry so GrowPartition
//! and the analysis code can iterate level by level without a traversal.
//!
//! # Storage layout
//!
//! Algorithm 1's stream pass touches every level `l ≤ L★` once per item,
//! and the sampler walks the same shallow levels once per drawn point —
//! both are hot paths. The tree therefore stores the *complete prefix*
//! (levels `0..=L★`, materialised by [`PartitionTree::complete`]) as a
//! dense `Vec<f64>` arena indexed by the heap index `(1 << level) | bits`
//! (exactly [`Path::sketch_key`]), so count reads and writes there are
//! plain array indexing. The grown/pruned region below the prefix — at
//! most `2k` nodes per level — stays in a sparse `HashMap` overlay.
//! Trees built node-by-node from [`PartitionTree::new`] (fixtures, the
//! analysis trees) have no dense prefix and live entirely in the overlay;
//! deserialisation re-detects the maximal complete prefix and re-densifies
//! it, so a serde round-trip preserves the fast layout.

use privhp_domain::Path;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A binary partition tree with real-valued node counts: a dense arena for
/// the complete prefix plus a sparse overlay for the grown region.
#[derive(Debug, Clone, Default)]
pub struct PartitionTree {
    /// Dense counts for levels `0..dense_levels`, indexed by
    /// `(1 << level) | bits`; slot 0 is unused. Empty when no complete
    /// prefix exists.
    dense: Vec<f64>,
    /// Number of dense levels: the arena covers levels `0..dense_levels`
    /// (every node of those levels is present). 0 = no dense region.
    dense_levels: usize,
    /// Sparse counts for nodes at levels `>= dense_levels`.
    overlay: HashMap<Path, f64>,
    /// Node paths per level, in insertion order (dense levels are in
    /// `bits` order by construction).
    levels: Vec<Vec<Path>>,
}

impl PartitionTree {
    /// Creates an empty tree (no nodes, not even a root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a complete tree of the given depth with every count
    /// initialised by `init(path)` — Algorithm 1 lines 2–6 pass a noise
    /// sampler here. The complete levels are stored densely.
    pub fn complete(depth: usize, mut init: impl FnMut(&Path) -> f64) -> Self {
        let dense_levels = depth + 1;
        let mut dense = vec![0.0; 1usize << dense_levels];
        let mut levels = Vec::with_capacity(dense_levels);
        for level in 0..dense_levels {
            let mut row = Vec::with_capacity(1 << level);
            for bits in 0..(1u64 << level) {
                let p = Path::from_bits(bits, level);
                dense[p.sketch_key() as usize] = init(&p);
                row.push(p);
            }
            levels.push(row);
        }
        Self { dense, dense_levels, overlay: HashMap::new(), levels }
    }

    /// Whether `path` lies in the dense arena.
    #[inline]
    fn in_dense(&self, path: &Path) -> bool {
        path.level() < self.dense_levels
    }

    /// Inserts (or overwrites) a node.
    pub fn insert(&mut self, path: Path, count: f64) {
        if self.in_dense(&path) {
            // Dense nodes are always present: overwrite in place.
            self.dense[path.sketch_key() as usize] = count;
            return;
        }
        if self.overlay.insert(path, count).is_none() {
            while self.levels.len() <= path.level() {
                self.levels.push(Vec::new());
            }
            self.levels[path.level()].push(path);
        }
    }

    /// Whether `path` is present.
    #[inline]
    pub fn contains(&self, path: &Path) -> bool {
        self.in_dense(path) || self.overlay.contains_key(path)
    }

    /// Count at `path`, if present.
    #[inline]
    pub fn count(&self, path: &Path) -> Option<f64> {
        if self.in_dense(path) {
            Some(self.dense[path.sketch_key() as usize])
        } else {
            self.overlay.get(path).copied()
        }
    }

    /// Count at `path`.
    ///
    /// # Panics
    /// Panics if the node is absent — callers inside the algorithm know the
    /// shape they built; a miss is a logic error.
    #[inline]
    pub fn count_unchecked(&self, path: &Path) -> f64 {
        if self.in_dense(path) {
            self.dense[path.sketch_key() as usize]
        } else {
            self.overlay[path]
        }
    }

    /// Borrowed count at `path`, for iteration.
    ///
    /// # Panics
    /// Panics if the node is absent.
    #[inline]
    fn count_ref(&self, path: &Path) -> &f64 {
        if self.in_dense(path) {
            &self.dense[path.sketch_key() as usize]
        } else {
            &self.overlay[path]
        }
    }

    /// Sets the count of an existing node.
    ///
    /// # Panics
    /// Panics if the node is absent.
    #[inline]
    pub fn set_count(&mut self, path: &Path, count: f64) {
        if self.in_dense(path) {
            self.dense[path.sketch_key() as usize] = count;
        } else {
            let c = self.overlay.get_mut(path).unwrap_or_else(|| panic!("node {path} not in tree"));
            *c = count;
        }
    }

    /// Adds `delta` to an existing node's count.
    ///
    /// # Panics
    /// Panics if the node is absent.
    #[inline]
    pub fn add_count(&mut self, path: &Path, delta: f64) {
        if self.in_dense(path) {
            self.dense[path.sketch_key() as usize] += delta;
        } else {
            let c = self.overlay.get_mut(path).unwrap_or_else(|| panic!("node {path} not in tree"));
            *c += delta;
        }
    }

    /// Adds `delta` to every ancestor of `deep` from the root down to
    /// level `last` inclusive — the stream pass's per-item counter
    /// update. On a tree whose dense prefix covers `last` this is `last +
    /// 1` arena adds with no per-level dispatch.
    ///
    /// # Panics
    /// Panics if `last > deep.level()` or any touched node is absent.
    pub fn add_count_prefix(&mut self, deep: &Path, last: usize, delta: f64) {
        assert!(last <= deep.level(), "prefix level {last} below the located path");
        if last < self.dense_levels {
            let bits = deep.bits();
            let drop = deep.level() - last;
            // Ancestor `l`'s arena slot is `(1 << l) | (bits >> (level-l))`.
            for l in 0..=last {
                let key = (1u64 << l) | (bits >> (drop + (last - l)));
                self.dense[key as usize] += delta;
            }
        } else {
            for l in 0..=last {
                self.add_count(&deep.ancestor(l), delta);
            }
        }
    }

    /// Adds `delta` to every ancestor of each path in `deep_bits` (the
    /// packed bits of same-level paths at `deep_level`) from the root
    /// down to level `last` inclusive — the chunked form of
    /// [`Self::add_count_prefix`], applied **level-major**: all of level
    /// 0's adds, then all of level 1's, … so each level's contiguous
    /// arena region stays hot across the whole chunk. Taking bare bits
    /// keeps the hot passes to one 8-byte load per item.
    ///
    /// # Panics
    /// Panics if `last > deep_level` or a touched node is absent.
    pub fn add_count_prefix_batch(
        &mut self,
        deep_bits: &[u64],
        deep_level: usize,
        last: usize,
        delta: f64,
    ) {
        assert!(last <= deep_level, "prefix level {last} below the located paths");
        if last < self.dense_levels {
            // The arena size is a power of two and every level-l key is
            // `< 2^{l+1} ≤ len`, so the mask is a no-op that lets the
            // compiler drop the bounds check in the hot loop.
            let mask = self.dense.len() - 1;
            for l in 0..=last {
                let (lead, shift) = (1u64 << l, deep_level - l);
                for &bits in deep_bits {
                    self.dense[(lead | (bits >> shift)) as usize & mask] += delta;
                }
            }
        } else {
            for &bits in deep_bits {
                self.add_count_prefix(&Path::from_bits(bits, deep_level), last, delta);
            }
        }
    }

    /// Merges another tree into this one: counts of nodes present in both
    /// add; nodes only in `other` are inserted. Where the dense prefixes
    /// overlap this is one elementwise pass over the arenas (the sharded-
    /// ingest fast path — shard builders hold identically-shaped complete
    /// trees); everything deeper goes through the overlay union.
    ///
    /// Addition is exact for integer counts (shard data trees), so merging
    /// K disjoint shards is bit-identical to one sequential pass.
    pub fn merge(&mut self, other: &PartitionTree) {
        let common = self.dense_levels.min(other.dense_levels);
        if common > 0 {
            // Slot 0 is unused in both arenas; 1..2^common covers every
            // node of levels 0..common.
            for i in 1..(1usize << common) {
                self.dense[i] += other.dense[i];
            }
        }
        for level in common..other.levels.len() {
            for p in &other.levels[level] {
                let c = other.count_unchecked(p);
                if self.contains(p) {
                    self.add_count(p, c);
                } else {
                    self.insert(*p, c);
                }
            }
        }
    }

    /// Root count (`v_∅.count`), or `None` on an empty tree.
    pub fn root_count(&self) -> Option<f64> {
        self.count(&Path::root())
    }

    /// The counts of both children of `path`, or `None` unless both are
    /// present. The sampler's walk and the consistency pass call this once
    /// per visited node; on the dense prefix the children sit at adjacent
    /// arena slots `2·key` and `2·key + 1`.
    #[inline]
    pub fn children_counts(&self, path: &Path) -> Option<(f64, f64)> {
        if path.level() >= Path::MAX_LEVEL {
            return None;
        }
        if path.level() + 1 < self.dense_levels {
            let left = (path.sketch_key() as usize) << 1;
            return Some((self.dense[left], self.dense[left | 1]));
        }
        let left = self.overlay.get(&path.left())?;
        let right = self.overlay.get(&path.right())?;
        Some((*left, *right))
    }

    /// Whether the node has at least one child in the tree.
    #[inline]
    pub fn is_internal(&self, path: &Path) -> bool {
        if path.level() + 1 < self.dense_levels {
            return true;
        }
        path.level() < Path::MAX_LEVEL
            && (self.overlay.contains_key(&path.left()) || self.overlay.contains_key(&path.right()))
    }

    /// Whether the node is present and has no children in the tree. O(1)
    /// for nodes strictly inside the dense prefix (they always have
    /// children) and for dense-frontier nodes of a tree whose overlay is
    /// empty.
    #[inline]
    pub fn is_leaf(&self, path: &Path) -> bool {
        if self.in_dense(path) {
            if path.level() + 1 < self.dense_levels {
                return false;
            }
            return self.overlay.is_empty() || !self.is_internal(path);
        }
        self.overlay.contains_key(path) && !self.is_internal(path)
    }

    /// Deepest populated level.
    pub fn depth(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Paths at `level`, in insertion order (empty slice above the depth;
    /// dense levels are in `bits` order).
    pub fn level_nodes(&self, level: usize) -> &[Path] {
        self.levels.get(level).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.dense_node_count() + self.overlay.len()
    }

    /// Nodes in the dense arena (`2^dense_levels − 1`, or 0 without one).
    #[inline]
    fn dense_node_count(&self) -> usize {
        (1usize << self.dense_levels) - 1
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.dense_levels == 0 && self.overlay.is_empty()
    }

    /// All leaves (present nodes without children), level order then
    /// insertion order. When the overlay is empty the dense frontier *is*
    /// the leaf set and no hash probes happen at all.
    pub fn leaves(&self) -> Vec<Path> {
        if self.overlay.is_empty() {
            return match self.dense_levels {
                0 => Vec::new(),
                d => self.levels[d - 1].clone(),
            };
        }
        let mut out = Vec::new();
        // Levels strictly inside the dense prefix are always internal.
        for level in self.dense_levels.saturating_sub(1)..self.levels.len() {
            for p in &self.levels[level] {
                if self.is_leaf(p) {
                    out.push(*p);
                }
            }
        }
        out
    }

    /// Iterates over `(path, count)` pairs in level order then insertion
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &f64)> + '_ {
        self.levels.iter().flatten().map(move |p| (p, self.count_ref(p)))
    }

    /// Memory footprint in 8-byte words: one count plus one packed path word
    /// per node (the per-level registry indexes the same paths). The dense
    /// arena's one unused slot per power-of-two block is not billed, so the
    /// accounting matches the sparse layout node-for-node.
    pub fn memory_words(&self) -> usize {
        2 * self.len()
    }

    /// Number of dense levels (the arena covers levels `0..dense_levels`).
    /// Raw-layout accessor for the binary release codec.
    pub(crate) fn dense_levels(&self) -> usize {
        self.dense_levels
    }

    /// The dense count arena (slot 0 unused; empty without a dense
    /// prefix). Raw-layout accessor for the binary release codec.
    pub(crate) fn dense_arena(&self) -> &[f64] {
        &self.dense
    }

    /// The per-level path registry, outer index = level. Raw-layout
    /// accessor for the binary release codec.
    pub(crate) fn levels_registry(&self) -> &[Vec<Path>] {
        &self.levels
    }

    /// Reassembles a tree from an exact raw layout — the binary release
    /// codec's constructor. Unlike [`Self::from_parts`] this does **not**
    /// re-detect the dense prefix: the caller supplies `dense_levels`
    /// verbatim, so a decoded tree reproduces the encoded tree's storage
    /// layout (and therefore its serialised bytes) exactly. The caller
    /// must have validated that every level `< dense_levels` is complete
    /// and that `overlay` holds exactly the nodes at deeper levels.
    pub(crate) fn from_raw_parts(
        dense: Vec<f64>,
        dense_levels: usize,
        overlay: HashMap<Path, f64>,
        levels: Vec<Vec<Path>>,
    ) -> Self {
        debug_assert_eq!(dense.len(), if dense_levels > 0 { 1usize << dense_levels } else { 0 });
        Self { dense, dense_levels, overlay, levels }
    }

    /// Rebuilds a tree from its serialised parts, re-detecting the maximal
    /// complete prefix so deserialised trees keep the dense layout.
    pub(crate) fn from_parts(counts: HashMap<Path, f64>, levels: Vec<Vec<Path>>) -> Self {
        let mut dense_levels = 0;
        while dense_levels < levels.len() && levels[dense_levels].len() == (1usize << dense_levels)
        {
            dense_levels += 1;
        }
        let mut tree = Self {
            dense: vec![0.0; if dense_levels > 0 { 1usize << dense_levels } else { 0 }],
            dense_levels,
            overlay: HashMap::new(),
            levels,
        };
        for (path, count) in counts {
            if tree.in_dense(&path) {
                tree.dense[path.sketch_key() as usize] = count;
            } else {
                tree.overlay.insert(path, count);
            }
        }
        tree
    }
}

/// Serialises as `{counts: [(Path, f64)…] sorted, levels: [[Path…]…]}` —
/// the same document shape as the pre-arena sparse layout, so release
/// files round-trip across versions. Deserialisation routes through
/// `PartitionTree::from_parts` to re-densify the complete prefix.
impl Serialize for PartitionTree {
    fn to_value(&self) -> serde::Value {
        let mut pairs: Vec<(Path, f64)> = self.iter().map(|(p, c)| (*p, *c)).collect();
        pairs.sort_by_key(|pair| pair.0);
        serde::Value::Object(vec![
            ("counts".into(), Serialize::to_value(&pairs)),
            ("levels".into(), Serialize::to_value(&self.levels)),
        ])
    }
}

impl Deserialize for PartitionTree {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let counts_v = v
            .get("counts")
            .ok_or_else(|| serde::Error::missing_field("counts", "PartitionTree"))?;
        let levels_v = v
            .get("levels")
            .ok_or_else(|| serde::Error::missing_field("levels", "PartitionTree"))?;
        let pairs: Vec<(Path, f64)> = Deserialize::from_value(counts_v)?;
        let levels: Vec<Vec<Path>> = Deserialize::from_value(levels_v)?;
        let counts: HashMap<Path, f64> = pairs.into_iter().collect();
        if counts.len() != levels.iter().map(Vec::len).sum::<usize>() {
            return Err(serde::Error::custom(
                "PartitionTree counts and level registry disagree on the node set",
            ));
        }
        Ok(Self::from_parts(counts, levels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_shape() {
        let t = PartitionTree::complete(3, |_| 0.0);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.level_nodes(2).len(), 4);
        assert_eq!(t.leaves().len(), 8);
        assert!(t.is_leaf(&Path::from_bits(0b101, 3)));
        assert!(!t.is_leaf(&Path::from_bits(0b10, 2)));
    }

    #[test]
    fn init_receives_each_path() {
        let t = PartitionTree::complete(2, |p| p.level() as f64);
        assert_eq!(t.count(&Path::root()), Some(0.0));
        assert_eq!(t.count(&Path::from_bits(1, 1)), Some(1.0));
        assert_eq!(t.count(&Path::from_bits(0b11, 2)), Some(2.0));
    }

    #[test]
    fn insert_and_mutate() {
        let mut t = PartitionTree::new();
        let p = Path::root();
        t.insert(p, 5.0);
        t.add_count(&p, 2.5);
        assert_eq!(t.count(&p), Some(7.5));
        t.set_count(&p, 1.0);
        assert_eq!(t.root_count(), Some(1.0));
    }

    #[test]
    fn reinsert_overwrites_without_duplicating_registry() {
        let mut t = PartitionTree::new();
        let p = Path::root().left();
        t.insert(Path::root(), 0.0);
        t.insert(p, 1.0);
        t.insert(p, 2.0);
        assert_eq!(t.level_nodes(1).len(), 1);
        assert_eq!(t.count(&p), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "not in tree")]
    fn mutating_missing_node_panics() {
        let mut t = PartitionTree::new();
        t.add_count(&Path::root(), 1.0);
    }

    #[test]
    fn leaves_of_pruned_tree() {
        // Root with only a left subtree expanded.
        let mut t = PartitionTree::new();
        let root = Path::root();
        t.insert(root, 10.0);
        t.insert(root.left(), 6.0);
        t.insert(root.right(), 4.0);
        t.insert(root.left().left(), 3.0);
        t.insert(root.left().right(), 3.0);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        assert!(leaves.contains(&root.right()));
        assert!(leaves.contains(&root.left().left()));
        assert!(leaves.contains(&root.left().right()));
    }

    #[test]
    fn memory_words_tracks_nodes() {
        let t = PartitionTree::complete(4, |_| 0.0);
        assert_eq!(t.memory_words(), 2 * 31);
    }

    #[test]
    fn serde_roundtrip_preserves_tree() {
        // Released trees are serialisable for persistence / transport; the
        // release is already private, so storing it is post-processing.
        let t = PartitionTree::complete(3, |p| p.bits() as f64 + 0.5);
        let json = serde_json::to_string(&t).expect("serialise");
        let back: PartitionTree = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.len(), t.len());
        for (p, c) in t.iter() {
            assert_eq!(back.count(p), Some(*c));
        }
        assert_eq!(back.leaves().len(), t.leaves().len());
    }

    #[test]
    fn dense_prefix_extends_through_overlay_growth() {
        // A complete(2) tree grown one pruned level deeper: dense prefix
        // keeps serving levels 0..=2, overlay holds level 3.
        let mut t = PartitionTree::complete(2, |p| (p.bits() + 1) as f64);
        let hot = Path::from_bits(0b01, 2);
        t.insert(hot.left(), 1.5);
        t.insert(hot.right(), 0.5);
        assert_eq!(t.len(), 7 + 2);
        assert!(t.is_internal(&hot));
        assert!(!t.is_leaf(&hot));
        assert!(t.is_leaf(&hot.left()));
        assert!(t.is_leaf(&Path::from_bits(0b00, 2)));
        assert_eq!(t.children_counts(&hot), Some((1.5, 0.5)));
        assert_eq!(t.children_counts(&hot.left()), None);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3 + 2, "3 unexpanded frontier cells + 2 overlay leaves");
    }

    #[test]
    fn children_counts_reads_both_regions() {
        let t = PartitionTree::complete(2, |p| p.sketch_key() as f64);
        // Children of the root live in the dense arena at slots 2 and 3.
        assert_eq!(t.children_counts(&Path::root()), Some((2.0, 3.0)));
        // Frontier nodes have no children yet.
        assert_eq!(t.children_counts(&Path::from_bits(0b11, 2)), None);
    }

    #[test]
    fn serde_roundtrip_redensifies_complete_prefix() {
        let mut t = PartitionTree::complete(2, |p| p.bits() as f64);
        t.insert(Path::from_bits(0b010, 3), 9.0);
        t.insert(Path::from_bits(0b011, 3), 1.0);
        let json = serde_json::to_string(&t).expect("serialise");
        let back: PartitionTree = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.dense_levels, 3, "complete prefix re-detected");
        assert_eq!(back.overlay.len(), 2, "grown region stays sparse");
        assert_eq!(back.count(&Path::from_bits(0b010, 3)), Some(9.0));
        for (p, c) in t.iter() {
            assert_eq!(back.count(p), Some(*c), "count mismatch at {p}");
        }
    }

    #[test]
    fn sparse_built_tree_has_no_dense_region_until_roundtrip() {
        // A fixture built by hand is overlay-only; a serde round-trip
        // detects that its levels are complete and densifies them.
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 3.0);
        t.insert(r.left(), 1.0);
        t.insert(r.right(), 2.0);
        assert_eq!(t.dense_levels, 0);
        let back: PartitionTree =
            serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(back.dense_levels, 2);
        assert_eq!(back.children_counts(&r), Some((1.0, 2.0)));
    }

    #[test]
    fn batch_prefix_add_matches_per_item_form() {
        let deep_bits: Vec<u64> = (0..64u64).map(|i| i * 7 % 256).collect();
        let mut one_by_one = PartitionTree::complete(4, |_| 0.25);
        let mut batched = PartitionTree::complete(4, |_| 0.25);
        for &bits in &deep_bits {
            one_by_one.add_count_prefix(&Path::from_bits(bits, 8), 4, 1.0);
        }
        batched.add_count_prefix_batch(&deep_bits, 8, 4, 1.0);
        for (p, c) in one_by_one.iter() {
            assert_eq!(c.to_bits(), batched.count_unchecked(p).to_bits(), "mismatch at {p}");
        }
    }

    #[test]
    fn merge_adds_dense_prefixes_and_unions_overlays() {
        // a: complete(2) grown one node deeper; b: complete(2) with a
        // different deep node — merge adds the shared prefix and unions
        // the grown regions.
        let mut a = PartitionTree::complete(2, |p| p.bits() as f64);
        a.insert(Path::from_bits(0b010, 3), 2.0);
        let mut b = PartitionTree::complete(2, |p| 10.0 + p.bits() as f64);
        b.insert(Path::from_bits(0b010, 3), 5.0);
        b.insert(Path::from_bits(0b111, 3), 1.0);
        a.merge(&b);
        assert_eq!(a.count(&Path::from_bits(0b01, 2)), Some(1.0 + 11.0));
        assert_eq!(a.count(&Path::from_bits(0b010, 3)), Some(7.0), "shared overlay node adds");
        assert_eq!(a.count(&Path::from_bits(0b111, 3)), Some(1.0), "b-only node inserted");
        assert_eq!(a.len(), 7 + 2);
    }

    #[test]
    fn merge_into_empty_tree_copies_other() {
        let mut empty = PartitionTree::new();
        let full = PartitionTree::complete(3, |p| p.sketch_key() as f64);
        empty.merge(&full);
        assert_eq!(empty.len(), full.len());
        for (p, c) in full.iter() {
            assert_eq!(empty.count(p), Some(*c));
        }
    }

    #[test]
    fn k_way_merge_of_unit_counts_is_bit_identical_to_one_pass() {
        // Integer shard counts merge exactly: the sharded-ingest invariant.
        let deep_bits: Vec<u64> = (0..90u64).map(|i| i * 13 % 64).collect();
        let mut whole = PartitionTree::complete(3, |_| 0.0);
        whole.add_count_prefix_batch(&deep_bits, 6, 3, 1.0);
        let mut merged = PartitionTree::complete(3, |_| 0.0);
        for shard in deep_bits.chunks(31) {
            let mut t = PartitionTree::complete(3, |_| 0.0);
            t.add_count_prefix_batch(shard, 6, 3, 1.0);
            merged.merge(&t);
        }
        for (p, c) in whole.iter() {
            assert_eq!(c.to_bits(), merged.count_unchecked(p).to_bits());
        }
    }

    #[test]
    fn depth16_complete_tree_enumerates_leaves_densely() {
        // Regression: with an empty overlay the dense frontier is returned
        // directly — 65536 leaves with zero hash-map probes (`leaves()`
        // short-circuits on `overlay.is_empty()`).
        let t = PartitionTree::complete(16, |_| 1.0);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 1 << 16);
        assert!(leaves.iter().all(|p| p.level() == 16));
        assert_eq!(leaves, t.level_nodes(16));
        // is_leaf / is_internal are O(1) array-free checks on the prefix.
        assert!(t.is_leaf(&Path::from_bits(12345, 16)));
        assert!(!t.is_leaf(&Path::from_bits(123, 10)));
        assert!(t.is_internal(&Path::from_bits(123, 10)));
    }
}
