//! The partition tree `𝒯`: the decomposition of `Ω` encoded as a binary
//! tree of noisy counts (paper §4.1).
//!
//! Nodes are addressed by their [`Path`] `θ`; counts are `f64` because
//! privacy noise makes them real-valued (and possibly negative until the
//! consistency step). The tree keeps a per-level registry so GrowPartition
//! and the analysis code can iterate level by level without a traversal.

use privhp_domain::Path;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse binary partition tree with real-valued node counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartitionTree {
    /// Serialised as a pair list: `Path` is a struct key, which formats
    /// like JSON cannot express as a map key.
    #[serde(with = "path_map_serde")]
    counts: HashMap<Path, f64>,
    /// Node paths per level, in insertion order.
    levels: Vec<Vec<Path>>,
}

/// (De)serialises `HashMap<Path, f64>` as a `Vec<(Path, f64)>`, sorted for
/// deterministic output. Uses the vendored serde's `with`-module convention
/// (`serialize(&T) -> Value`, `deserialize(&Value) -> Result<T, Error>`).
mod path_map_serde {
    use super::*;

    pub fn serialize(map: &HashMap<Path, f64>) -> serde::Value {
        let mut pairs: Vec<(Path, f64)> = map.iter().map(|(p, c)| (*p, *c)).collect();
        pairs.sort_by_key(|pair| pair.0);
        serde::Serialize::to_value(&pairs)
    }

    pub fn deserialize(v: &serde::Value) -> Result<HashMap<Path, f64>, serde::Error> {
        let pairs: Vec<(Path, f64)> = serde::Deserialize::from_value(v)?;
        Ok(pairs.into_iter().collect())
    }
}

impl PartitionTree {
    /// Creates an empty tree (no nodes, not even a root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a complete tree of the given depth with every count
    /// initialised by `init(path)` — Algorithm 1 lines 2–6 pass a noise
    /// sampler here.
    pub fn complete(depth: usize, mut init: impl FnMut(&Path) -> f64) -> Self {
        let mut tree = Self::new();
        for level in 0..=depth {
            for bits in 0..(1u64 << level) {
                let p = Path::from_bits(bits, level);
                let c = init(&p);
                tree.insert(p, c);
            }
        }
        tree
    }

    /// Inserts (or overwrites) a node.
    pub fn insert(&mut self, path: Path, count: f64) {
        if self.counts.insert(path, count).is_none() {
            while self.levels.len() <= path.level() {
                self.levels.push(Vec::new());
            }
            self.levels[path.level()].push(path);
        }
    }

    /// Whether `path` is present.
    pub fn contains(&self, path: &Path) -> bool {
        self.counts.contains_key(path)
    }

    /// Count at `path`, if present.
    pub fn count(&self, path: &Path) -> Option<f64> {
        self.counts.get(path).copied()
    }

    /// Count at `path`.
    ///
    /// # Panics
    /// Panics if the node is absent — callers inside the algorithm know the
    /// shape they built; a miss is a logic error.
    pub fn count_unchecked(&self, path: &Path) -> f64 {
        self.counts[path]
    }

    /// Sets the count of an existing node.
    ///
    /// # Panics
    /// Panics if the node is absent.
    pub fn set_count(&mut self, path: &Path, count: f64) {
        let c = self.counts.get_mut(path).unwrap_or_else(|| panic!("node {path} not in tree"));
        *c = count;
    }

    /// Adds `delta` to an existing node's count.
    ///
    /// # Panics
    /// Panics if the node is absent.
    pub fn add_count(&mut self, path: &Path, delta: f64) {
        let c = self.counts.get_mut(path).unwrap_or_else(|| panic!("node {path} not in tree"));
        *c += delta;
    }

    /// Root count (`v_∅.count`), or `None` on an empty tree.
    pub fn root_count(&self) -> Option<f64> {
        self.count(&Path::root())
    }

    /// Whether the node has at least one child in the tree.
    pub fn is_internal(&self, path: &Path) -> bool {
        path.level() < Path::MAX_LEVEL
            && (self.contains(&path.left()) || self.contains(&path.right()))
    }

    /// Whether the node is present and has no children in the tree.
    pub fn is_leaf(&self, path: &Path) -> bool {
        self.contains(path) && !self.is_internal(path)
    }

    /// Deepest populated level.
    pub fn depth(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Paths at `level`, in insertion order (empty slice above the depth).
    pub fn level_nodes(&self, level: usize) -> &[Path] {
        self.levels.get(level).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// All leaves (present nodes without children), level order then
    /// insertion order.
    pub fn leaves(&self) -> Vec<Path> {
        let mut out = Vec::new();
        for level in &self.levels {
            for p in level {
                if self.is_leaf(p) {
                    out.push(*p);
                }
            }
        }
        out
    }

    /// Iterates over `(path, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &f64)> {
        self.counts.iter()
    }

    /// Memory footprint in 8-byte words: one count plus one packed path word
    /// per node (the per-level registry indexes the same paths).
    pub fn memory_words(&self) -> usize {
        2 * self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_shape() {
        let t = PartitionTree::complete(3, |_| 0.0);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.level_nodes(2).len(), 4);
        assert_eq!(t.leaves().len(), 8);
        assert!(t.is_leaf(&Path::from_bits(0b101, 3)));
        assert!(!t.is_leaf(&Path::from_bits(0b10, 2)));
    }

    #[test]
    fn init_receives_each_path() {
        let t = PartitionTree::complete(2, |p| p.level() as f64);
        assert_eq!(t.count(&Path::root()), Some(0.0));
        assert_eq!(t.count(&Path::from_bits(1, 1)), Some(1.0));
        assert_eq!(t.count(&Path::from_bits(0b11, 2)), Some(2.0));
    }

    #[test]
    fn insert_and_mutate() {
        let mut t = PartitionTree::new();
        let p = Path::root();
        t.insert(p, 5.0);
        t.add_count(&p, 2.5);
        assert_eq!(t.count(&p), Some(7.5));
        t.set_count(&p, 1.0);
        assert_eq!(t.root_count(), Some(1.0));
    }

    #[test]
    fn reinsert_overwrites_without_duplicating_registry() {
        let mut t = PartitionTree::new();
        let p = Path::root().left();
        t.insert(Path::root(), 0.0);
        t.insert(p, 1.0);
        t.insert(p, 2.0);
        assert_eq!(t.level_nodes(1).len(), 1);
        assert_eq!(t.count(&p), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "not in tree")]
    fn mutating_missing_node_panics() {
        let mut t = PartitionTree::new();
        t.add_count(&Path::root(), 1.0);
    }

    #[test]
    fn leaves_of_pruned_tree() {
        // Root with only a left subtree expanded.
        let mut t = PartitionTree::new();
        let root = Path::root();
        t.insert(root, 10.0);
        t.insert(root.left(), 6.0);
        t.insert(root.right(), 4.0);
        t.insert(root.left().left(), 3.0);
        t.insert(root.left().right(), 3.0);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 3);
        assert!(leaves.contains(&root.right()));
        assert!(leaves.contains(&root.left().left()));
        assert!(leaves.contains(&root.left().right()));
    }

    #[test]
    fn memory_words_tracks_nodes() {
        let t = PartitionTree::complete(4, |_| 0.0);
        assert_eq!(t.memory_words(), 2 * 31);
    }

    #[test]
    fn serde_roundtrip_preserves_tree() {
        // Released trees are serialisable for persistence / transport; the
        // release is already private, so storing it is post-processing.
        let t = PartitionTree::complete(3, |p| p.bits() as f64 + 0.5);
        let json = serde_json::to_string(&t).expect("serialise");
        let back: PartitionTree = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back.len(), t.len());
        for (p, c) in t.iter() {
            assert_eq!(back.count(p), Some(*c));
        }
        assert_eq!(back.leaves().len(), t.leaves().len());
    }
}
