//! PrivHP configuration: `(k, L★, L)` partition dimensions, `(w, j)` sketch
//! dimensions, privacy budget and its per-level split.
//!
//! The defaults follow Corollary 1:
//!
//! * hierarchy depth `L = ⌈log₂(εn)⌉`;
//! * sketch depth `j = ⌈log₂ n⌉` and width `4k` (the paper's `2w` with
//!   `w = 2k`);
//! * pruning level `L★ = ⌈log₂ M⌉` with `M = k·⌈log₂ n⌉²`, clamped to
//!   `[⌈log₂ k⌉, L−1]` (Lemma 10 requires `L★ ≥ log k`; growth needs
//!   `L★ < L`).

use privhp_dp::budget::BudgetSplit;
use privhp_sketch::SketchParams;
use serde::{Deserialize, Serialize};

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// ε must be positive and finite.
    InvalidEpsilon(f64),
    /// k must be at least 1.
    InvalidPruning(usize),
    /// The level structure must satisfy `L★ < L`.
    InvalidLevels {
        /// Pruning level L★.
        l_star: usize,
        /// Hierarchy depth L.
        depth: usize,
    },
    /// A budget split was supplied whose length differs from `L + 1`.
    SplitLengthMismatch {
        /// Levels covered by the split.
        split_levels: usize,
        /// Levels required (`L + 1`).
        required: usize,
    },
    /// The domain cannot support the requested depth.
    DepthExceedsDomain {
        /// Requested hierarchy depth.
        depth: usize,
        /// Domain's maximum level.
        max_level: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidEpsilon(e) => write!(f, "invalid epsilon {e}"),
            ConfigError::InvalidPruning(k) => write!(f, "invalid pruning parameter k={k}"),
            ConfigError::InvalidLevels { l_star, depth } => {
                write!(f, "invalid levels: L*={l_star} must be < L={depth}")
            }
            ConfigError::SplitLengthMismatch { split_levels, required } => write!(
                f,
                "budget split covers {split_levels} levels but L+1={required} are required"
            ),
            ConfigError::DepthExceedsDomain { depth, max_level } => {
                write!(f, "depth {depth} exceeds the domain's max level {max_level}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which hash-based private sketch summarises the deep levels.
///
/// The paper's §3.4 presents both: the Count-Min sketch (Lemma 4's
/// tail-bounded, one-sided estimator — the default used in Theorem 3) and
/// the Count Sketch (Pagh–Thorup's unbiased median estimator, whose error
/// tracks the L2 tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SketchKind {
    /// Private Count-Min (paper default; Theorem 3's analysis).
    #[default]
    CountMin,
    /// Private Count Sketch (unbiased; L2-tail error).
    CountSketch,
}

/// Full PrivHP parameterisation.
///
/// Equality compares every field (including the master seed) — two equal
/// configs produce builders with identically-shaped, mergeable state,
/// which is what [`crate::PrivHpBuilder::merge`] checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivHpConfig {
    /// Total privacy budget ε.
    pub epsilon: f64,
    /// Pruning parameter `k`: branches kept per level below `L★`.
    pub k: usize,
    /// Level at which pruning begins (complete tree above, sketches below).
    pub l_star: usize,
    /// Hierarchy depth `L` (leaves live at this level).
    pub depth: usize,
    /// Sketch dimensions for each deep level.
    pub sketch: SketchParams,
    /// Which private sketch primitive to use at deep levels.
    #[serde(default)]
    pub sketch_kind: SketchKind,
    /// Per-level privacy split `{σ_l}` for `l = 0..=L`, or `None` to use
    /// the Lemma-5 optimal split for the target domain.
    pub split: Option<BudgetSplit>,
    /// Master seed for all internal randomness (noise and hashing).
    pub seed: u64,
}

impl PrivHpConfig {
    /// Corollary-1 defaults for budget `epsilon`, stream length `n` and
    /// pruning parameter `k`. The Lemma-5 optimal budget split is computed
    /// lazily at build time from the target domain's diameters.
    pub fn for_domain(epsilon: f64, n: usize, k: usize) -> Self {
        let n = n.max(2);
        let en = (epsilon * n as f64).max(2.0);
        let depth = en.log2().ceil().max(1.0) as usize;
        let log_n = (n as f64).log2().ceil().max(1.0);
        // L* = O(log M) per Corollary 1. The free constant matters in
        // practice: the complete tree holds 2^{L*+1} nodes and growth at
        // level L*+1 expands *every* L* leaf (Algorithm 2 line 3), so the
        // structure holds ~2^{L*+2} nodes. Choosing L* = log2(M) - 2 keeps
        // the realised footprint at ~M words.
        let memory_target = (k as f64 * log_n * log_n).max(4.0);
        let l_star_raw = (memory_target.log2().ceil() as usize).saturating_sub(2);
        let l_star_min = (k.max(1) as f64).log2().ceil() as usize;
        let l_star = l_star_raw.max(l_star_min).min(depth.saturating_sub(1));
        Self {
            epsilon,
            k,
            l_star,
            depth,
            sketch: SketchParams::for_pruning(k, n),
            sketch_kind: SketchKind::default(),
            split: None,
            seed: DEFAULT_SEED,
        }
    }

    /// Selects the deep-level sketch primitive (builder style).
    pub fn with_sketch_kind(mut self, kind: SketchKind) -> Self {
        self.sketch_kind = kind;
        self
    }

    /// Overrides the master seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the level structure (builder style).
    pub fn with_levels(mut self, l_star: usize, depth: usize) -> Self {
        self.l_star = l_star;
        self.depth = depth;
        self
    }

    /// Overrides the sketch dimensions (builder style).
    pub fn with_sketch(mut self, sketch: SketchParams) -> Self {
        self.sketch = sketch;
        self
    }

    /// Supplies an explicit per-level budget split (builder style).
    pub fn with_split(mut self, split: BudgetSplit) -> Self {
        self.split = Some(split);
        self
    }

    /// Number of levels carrying noise (`0..=L`, i.e. `L + 1`).
    pub fn levels(&self) -> usize {
        self.depth + 1
    }

    /// Validates internal coherence (domain-independent checks).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(ConfigError::InvalidEpsilon(self.epsilon));
        }
        if self.k == 0 {
            return Err(ConfigError::InvalidPruning(self.k));
        }
        if self.l_star >= self.depth {
            return Err(ConfigError::InvalidLevels { l_star: self.l_star, depth: self.depth });
        }
        if let Some(split) = &self.split {
            if split.levels() != self.levels() {
                return Err(ConfigError::SplitLengthMismatch {
                    split_levels: split.levels(),
                    required: self.levels(),
                });
            }
        }
        Ok(())
    }

    /// The paper's memory budget `M = O(k·log²n)` evaluated for this
    /// configuration (in words): tree counters plus sketch cells.
    pub fn nominal_memory_words(&self) -> usize {
        let tree = 1usize << self.l_star.min(30);
        let sketches = (self.depth - self.l_star) * self.sketch.cells();
        tree + sketches
    }
}

/// Default master seed used when the caller does not supply one.
pub const DEFAULT_SEED: u64 = 0x5EED_0F00_0000_9A17;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_corollary1() {
        let c = PrivHpConfig::for_domain(1.0, 1 << 16, 8);
        assert_eq!(c.depth, 16, "L = log2(eps*n)");
        assert_eq!(c.sketch.depth, 16, "j = log2 n");
        assert_eq!(c.sketch.width, 32, "width = 4k");
        assert!(c.l_star >= 3, "L* >= log2 k");
        assert!(c.l_star < c.depth);
        c.validate().unwrap();
    }

    #[test]
    fn small_epsilon_shrinks_depth() {
        let c = PrivHpConfig::for_domain(0.1, 1 << 16, 4);
        assert!(c.depth < 16, "depth should track log2(eps*n), got {}", c.depth);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut c = PrivHpConfig::for_domain(1.0, 1024, 4);
        c.epsilon = -1.0;
        assert!(matches!(c.validate(), Err(ConfigError::InvalidEpsilon(_))));

        let mut c = PrivHpConfig::for_domain(1.0, 1024, 4);
        c.k = 0;
        assert!(matches!(c.validate(), Err(ConfigError::InvalidPruning(0))));

        let mut c = PrivHpConfig::for_domain(1.0, 1024, 4);
        c.l_star = c.depth;
        assert!(matches!(c.validate(), Err(ConfigError::InvalidLevels { .. })));
    }

    #[test]
    fn split_length_checked() {
        let c = PrivHpConfig::for_domain(1.0, 1024, 4);
        let bad = privhp_dp::budget::BudgetSplit::uniform(1.0, 3).unwrap();
        let c = c.with_split(bad);
        assert!(matches!(c.validate(), Err(ConfigError::SplitLengthMismatch { .. })));
    }

    #[test]
    fn builder_methods() {
        let c = PrivHpConfig::for_domain(1.0, 1024, 4)
            .with_seed(99)
            .with_levels(2, 8)
            .with_sketch(SketchParams::new(5, 16));
        assert_eq!(c.seed, 99);
        assert_eq!(c.l_star, 2);
        assert_eq!(c.depth, 8);
        assert_eq!(c.sketch.depth, 5);
        c.validate().unwrap();
    }

    #[test]
    fn nominal_memory_scales_with_k() {
        let small = PrivHpConfig::for_domain(1.0, 1 << 14, 2).nominal_memory_words();
        let large = PrivHpConfig::for_domain(1.0, 1 << 14, 64).nominal_memory_words();
        assert!(large > small, "memory must grow with k: {small} vs {large}");
    }

    #[test]
    fn tiny_streams_still_valid() {
        let c = PrivHpConfig::for_domain(1.0, 4, 1);
        c.validate().unwrap();
        assert!(c.depth >= 1);
    }
}
