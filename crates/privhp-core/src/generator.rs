//! The [`Generator`] abstraction: one interface over every synthetic-data
//! generator in the workspace — PrivHP itself and all Table-1 baselines.
//!
//! Before this trait existed, every consumer (the experiment harness, the
//! 13 `exp_*` binaries, the CLI) dispatched over methods with hand-written
//! `match` arms, re-plumbed per dimension. The trait collapses that to one
//! object-safe surface:
//!
//! * construction stays method-specific (each method builds from a stream
//!   with its own parameters — the bench crate's `MethodRegistry` owns
//!   per-method build closures);
//! * everything *after* construction — sampling, memory accounting,
//!   reporting, (tree-based) exact evaluation — goes through `dyn
//!   Generator<D>`.
//!
//! Object safety is why sampling takes `&mut dyn RngCore` rather than a
//! generic `R: RngCore`: boxed generators must be storable side by side in
//! registries and sweeps. `&mut dyn RngCore` itself implements `RngCore`,
//! so implementations forward to their inherent generic methods at zero
//! conceptual cost (one vtable hop per draw; batch sampling amortises it).

use crate::tree::PartitionTree;
use privhp_domain::HierarchicalDomain;
use rand::RngCore;

/// Which input dimensionalities a generation method supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimSupport {
    /// Any hierarchical domain, any dimension.
    Any,
    /// One-dimensional (totally ordered) domains only.
    OneDimOnly,
}

impl DimSupport {
    /// Whether a `dim`-dimensional domain is supported.
    pub fn supports(&self, dim: usize) -> bool {
        match self {
            DimSupport::Any => true,
            DimSupport::OneDimOnly => dim == 1,
        }
    }
}

/// A built synthetic-data generator over domain `D`.
///
/// Implementors are *releases*: all privacy spending happened at build
/// time, so every method here is post-processing (paper Lemma 2) and can be
/// called arbitrarily often.
pub trait Generator<D: HierarchicalDomain> {
    /// Short display name for tables and logs (e.g. `PrivHP(k=16)`).
    fn name(&self) -> String;

    /// Draws one synthetic point.
    fn sample_point(&self, rng: &mut dyn RngCore) -> D::Point;

    /// Draws `m` synthetic points.
    fn sample_many_points(&self, m: usize, rng: &mut dyn RngCore) -> Vec<D::Point> {
        (0..m).map(|_| self.sample_point(rng)).collect()
    }

    /// Number of `f64` lanes per point in the flat row-major batch
    /// encoding (the domain's [`HierarchicalDomain::point_lanes`]).
    fn point_lanes(&self) -> usize;

    /// Draws `m` synthetic points into `out` as a flat row-major buffer
    /// (`m · point_lanes()` values appended), without materialising
    /// per-point heap values. Must be bit-equal to encoding
    /// [`Generator::sample_many_points`]'s result at an equal RNG state.
    fn sample_many_into(&self, m: usize, rng: &mut dyn RngCore, out: &mut Vec<f64>);

    /// Memory retained by the release, in 8-byte words.
    fn memory_words(&self) -> usize;

    /// The consistent partition tree encoding the release's distribution,
    /// if the method is tree-based.
    ///
    /// In 1-D a tree is a piecewise-uniform density, so evaluators can
    /// compute `W1` *exactly* instead of Monte-Carlo sampling; methods
    /// without a tree (e.g. bounded quantiles) return `None` and are
    /// evaluated from samples.
    fn tree(&self) -> Option<&PartitionTree> {
        None
    }

    /// Dimensionalities the underlying method supports.
    fn dims(&self) -> DimSupport {
        DimSupport::Any
    }
}

impl<D: HierarchicalDomain> Generator<D> for crate::privhp::PrivHpGenerator<D> {
    fn name(&self) -> String {
        format!("PrivHP(k={})", self.config().k)
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        crate::privhp::PrivHpGenerator::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        crate::privhp::PrivHpGenerator::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain().point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        crate::privhp::PrivHpGenerator::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        crate::privhp::PrivHpGenerator::memory_words(self)
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(crate::privhp::PrivHpGenerator::tree(self))
    }
}

impl<'a, D: HierarchicalDomain> Generator<D> for crate::sampler::TreeSampler<'a, D> {
    fn name(&self) -> String {
        "TreeSampler".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        crate::sampler::TreeSampler::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        crate::sampler::TreeSampler::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain().point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        crate::sampler::TreeSampler::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        self.tree().memory_words()
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(crate::sampler::TreeSampler::tree(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrivHp, PrivHpConfig};
    use privhp_domain::UnitInterval;
    use rand::SeedableRng;

    #[test]
    fn dim_support_matrix() {
        assert!(DimSupport::Any.supports(1));
        assert!(DimSupport::Any.supports(5));
        assert!(DimSupport::OneDimOnly.supports(1));
        assert!(!DimSupport::OneDimOnly.supports(2));
    }

    #[test]
    fn privhp_generator_is_object_safe() {
        let data: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 4);
        let g = PrivHp::build(&UnitInterval::new(), config, data, &mut rng).expect("valid config");
        let boxed: Box<dyn Generator<UnitInterval>> = Box::new(g);
        assert!(boxed.name().starts_with("PrivHP"));
        assert!(boxed.memory_words() >= 1);
        assert!(boxed.tree().is_some());
        let pts = boxed.sample_many_points(64, &mut rng);
        assert_eq!(pts.len(), 64);
        assert!(pts.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
