#![warn(missing_docs)]

//! **PrivHP** — Private Hot Partition: the paper's primary contribution.
//!
//! PrivHP processes a data stream in one pass and bounded memory, then
//! releases an ε-differentially-private *synthetic data generator* whose
//! sampling distribution approximates the stream's empirical distribution in
//! expected 1-Wasserstein distance (paper Theorem 1 / Corollary 1).
//!
//! The pipeline (paper Algorithm 1):
//!
//! 1. **Initialise** a complete binary partition tree of depth `L★` whose
//!    counters are pre-loaded with `Laplace(1/σ_l)` noise, plus one private
//!    sketch per level `l ∈ (L★, L]` pre-loaded with `Laplace(j/σ_l)` cell
//!    noise (Theorem 2 / Eq. 3);
//! 2. **Parse** the stream: each item updates one counter per shallow level
//!    and one sketch per deep level — `O(L·log n)` work per item;
//! 3. **Grow** the partition (Algorithm 2): starting from the complete tree,
//!    repeatedly expand the current *hot* nodes into their children using
//!    noisy sketch estimates, enforce consistency (Algorithm 3), and keep
//!    only the top-`k` nodes per level;
//! 4. **Sample**: a root-to-leaf walk proportional to the consistent counts,
//!    then a uniform draw inside the leaf subdomain (§5).
//!
//! Because all data-dependent state was privatised *before* the growth phase
//! (noisy counters + private sketches), steps 3–4 are post-processing and
//! the release is ε-DP for `Σ_l σ_l = ε` (Theorem 2 / Lemma 2).
//!
//! Module map:
//!
//! * [`config`] — parameters `(k, L★, L, w, j, {σ_l})` with the Corollary-1
//!   defaults and validation;
//! * [`tree`] — the partition tree `𝒯` with per-level node registries;
//! * [`consistency`] — Algorithm 3, including both error corrections and
//!   the `ConsErr` accounting of §6;
//! * [`grow`] — Algorithm 2 (GrowPartition);
//! * [`privhp`] — Algorithm 1 (the streaming builder and one-shot `build`);
//! * [`sampler`] — the root-to-leaf synthetic sampler;
//! * [`budget`] — the Lemma-5 optimal allocation of ε across levels;
//! * [`bounds`] — closed-form evaluators for Theorem 3 and Corollary 1;
//! * [`analysis`] — the proof-pipeline trees `𝒯_X → 𝒯_exact → 𝒯_approx`
//!   of §7 (Figure 4), used by the decomposition experiments;
//! * [`generator`] — the [`Generator`] trait: the object-safe interface
//!   every built release (PrivHP and all baselines) exposes to samplers,
//!   evaluators and registries;
//! * [`release`] — the versioned on-disk release format shared by the CLI
//!   and the serving layer.

pub mod analysis;
pub mod bounds;
pub mod budget;
pub mod config;
pub mod consistency;
pub mod continual;
pub mod generator;
pub mod grow;
pub mod privhp;
pub mod query;
pub mod release;
pub mod sampler;
pub mod tree;

pub use bounds::{corollary1_bound, TheoreticalBounds};
pub use budget::optimal_budget_split;
pub use config::{ConfigError, PrivHpConfig};
pub use continual::ContinualPrivHp;
pub use generator::{DimSupport, Generator};
pub use grow::GrowOptions;
pub use privhp::{LevelSketches, PrivHp, PrivHpBuilder, PrivHpGenerator, INGEST_CHUNK};
pub use query::TreeQuery;
pub use release::{
    merge_releases, BinaryFormatError, DomainSpec, ReleaseFile, ReleaseFormat, RELEASE_VERSION,
    SAMPLE_SEED_XOR,
};
pub use sampler::{LeafCdf, TreeSampler};
pub use tree::PartitionTree;
