//! The 1-pass PrivHP algorithm — paper Algorithm 1.
//!
//! [`PrivHpBuilder`] is the streaming interface: construct (which *draws all
//! privacy noise up front*, per Algorithm 1 lines 2–8), feed points one at a
//! time with [`PrivHpBuilder::ingest`], then [`PrivHpBuilder::finalize`] to
//! run GrowPartition and obtain a [`PrivHpGenerator`]. [`PrivHp::build`] is
//! the one-shot convenience wrapper.
//!
//! Privacy: the builder spends its entire ε at construction — counters get
//! `Laplace(1/σ_l)`, each `sketch_l` gets `Laplace(j/σ_l)` per cell
//! (Theorem 2 with `Σ σ_l = ε`). Everything after the stream pass is
//! deterministic post-processing of those privatised structures, and the
//! sampler's randomness is independent of the data, so the generator and
//! every dataset drawn from it are ε-DP.

use privhp_domain::HierarchicalDomain;
use privhp_dp::budget::BudgetSplit;
use privhp_dp::laplace::Laplace;
use privhp_dp::rng::SeedSequence;
use privhp_sketch::{PrivateCountMinSketch, PrivateCountSketch};
use rand::RngCore;

use crate::config::SketchKind;

/// The deep-level private sketches, one per level `l ∈ (L★, L]`, stored as
/// a homogeneous vector per §3.4 flavour so the stream pass dispatches on
/// the kind once per item instead of once per level.
#[derive(Debug, Clone)]
pub enum LevelSketches {
    /// Private Count-Min (paper default).
    CountMin(Vec<PrivateCountMinSketch>),
    /// Private Count Sketch (unbiased median estimator).
    CountSketch(Vec<PrivateCountSketch>),
}

impl LevelSketches {
    fn memory_words(&self) -> usize {
        match self {
            LevelSketches::CountMin(v) => v.iter().map(|s| s.memory_words()).sum(),
            LevelSketches::CountSketch(v) => v.iter().map(|s| s.memory_words()).sum(),
        }
    }
}

use crate::budget::optimal_budget_split;
use crate::config::{ConfigError, PrivHpConfig};
use crate::sampler::TreeSampler;
use crate::tree::PartitionTree;

/// Marker namespace for the one-shot API.
pub struct PrivHp;

impl PrivHp {
    /// Builds a generator from a complete stream in one call: initialise,
    /// parse, grow. `rng` supplies the privacy noise.
    pub fn build<D, I, R>(
        domain: &D,
        config: PrivHpConfig,
        stream: I,
        rng: &mut R,
    ) -> Result<PrivHpGenerator<D>, ConfigError>
    where
        D: HierarchicalDomain + Clone,
        I: IntoIterator<Item = D::Point>,
        R: RngCore,
    {
        let mut builder = PrivHpBuilder::new(domain.clone(), config, rng)?;
        for point in stream {
            builder.ingest(&point);
        }
        Ok(builder.finalize())
    }
}

/// Streaming state of Algorithm 1: the noisy complete tree (levels
/// `0..=L★`) plus one private sketch per deeper level.
#[derive(Debug)]
pub struct PrivHpBuilder<D: HierarchicalDomain> {
    domain: D,
    config: PrivHpConfig,
    split: BudgetSplit,
    tree: PartitionTree,
    sketches: LevelSketches,
    /// Reusable row-bucket buffer for the Count-Sketch variant, shared
    /// across its level sketches so signed updates reuse one allocation.
    /// The Count-Min path streams buckets straight from the double hash
    /// and needs no buffer at all.
    scratch: Vec<usize>,
    items_seen: usize,
}

impl<D: HierarchicalDomain + Clone> PrivHpBuilder<D> {
    /// Initialises all data structures and draws all privacy noise
    /// (Algorithm 1 lines 2–8).
    ///
    /// If `config.split` is `None`, the Lemma-5 optimal split for `domain`
    /// is used.
    pub fn new<R: RngCore>(
        domain: D,
        config: PrivHpConfig,
        rng: &mut R,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.depth > domain.max_level() {
            return Err(ConfigError::DepthExceedsDomain {
                depth: config.depth,
                max_level: domain.max_level(),
            });
        }
        let split = match &config.split {
            Some(s) => s.clone(),
            None => optimal_budget_split(&domain, &config)
                .map_err(|_| ConfigError::InvalidEpsilon(config.epsilon))?,
        };

        // Lines 2-6: complete tree of depth L*, counters pre-loaded with
        // Laplace(1/σ_l) noise.
        let noise_dists: Vec<Laplace> =
            (0..=config.l_star).map(|l| Laplace::new(1.0 / split.sigma(l))).collect();
        let tree = PartitionTree::complete(config.l_star, |p| noise_dists[p.level()].sample(rng));

        // Lines 7-8: a private sketch per level l in (L*, L], noise
        // Laplace(j/σ_l) per cell.
        let mut seeds = SeedSequence::new(config.seed);
        let deep_levels = (config.l_star + 1)..=config.depth;
        let sketches = match config.sketch_kind {
            SketchKind::CountMin => LevelSketches::CountMin(
                deep_levels
                    .map(|l| {
                        PrivateCountMinSketch::new(
                            config.sketch,
                            split.sigma(l),
                            seeds.next_seed(),
                            rng,
                        )
                    })
                    .collect(),
            ),
            SketchKind::CountSketch => LevelSketches::CountSketch(
                deep_levels
                    .map(|l| {
                        PrivateCountSketch::new(
                            config.sketch,
                            split.sigma(l),
                            seeds.next_seed(),
                            rng,
                        )
                    })
                    .collect(),
            ),
        };

        Ok(Self { domain, config, split, tree, sketches, scratch: Vec::new(), items_seen: 0 })
    }

    /// Processes one stream item (Algorithm 1 lines 9–15): updates the
    /// counter at each level `l ≤ L★` — array adds on the tree's dense
    /// arena — and the sketch at each level `l > L★` through the shared
    /// row-bucket scratch.
    pub fn ingest(&mut self, point: &D::Point) {
        // The deepest path determines every ancestor, so locate once; each
        // ancestor's sketch key is then shift arithmetic on the same bits.
        let deep = self.domain.locate(point, self.config.depth);
        self.tree.add_count_prefix(&deep, self.config.l_star, 1.0);
        let bits = deep.bits();
        let depth = deep.level();
        let first_deep = self.config.l_star + 1;
        match &mut self.sketches {
            LevelSketches::CountMin(v) => {
                for (i, sketch) in v.iter_mut().enumerate() {
                    let l = first_deep + i;
                    sketch.update((1u64 << l) | (bits >> (depth - l)), 1.0);
                }
            }
            LevelSketches::CountSketch(v) => {
                for (i, sketch) in v.iter_mut().enumerate() {
                    let l = first_deep + i;
                    sketch.update_rows((1u64 << l) | (bits >> (depth - l)), 1.0, &mut self.scratch);
                }
            }
        }
        self.items_seen += 1;
    }

    /// Items ingested so far.
    pub fn items_seen(&self) -> usize {
        self.items_seen
    }

    /// The per-level budget split in force.
    pub fn split(&self) -> &BudgetSplit {
        &self.split
    }

    /// Current memory footprint in 8-byte words (tree + sketches).
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words() + self.sketches.memory_words()
    }

    /// Runs GrowPartition (Algorithm 2) and returns the finished generator.
    pub fn finalize(self) -> PrivHpGenerator<D> {
        self.finalize_with_options(crate::grow::GrowOptions::default())
    }

    /// [`Self::finalize`] with explicit [`crate::grow::GrowOptions`]
    /// (ablation hook for the consistency experiment).
    pub fn finalize_with_options(self, options: crate::grow::GrowOptions) -> PrivHpGenerator<D> {
        let (l_star, depth, k) = (self.config.l_star, self.config.depth, self.config.k);
        let tree = match &self.sketches {
            LevelSketches::CountMin(v) => {
                crate::grow::grow_partition_with_options(self.tree, v, l_star, depth, k, options)
            }
            LevelSketches::CountSketch(v) => {
                crate::grow::grow_partition_with_options(self.tree, v, l_star, depth, k, options)
            }
        };
        PrivHpGenerator {
            domain: self.domain,
            config: self.config,
            split: self.split,
            tree,
            items_seen: self.items_seen,
        }
    }
}

/// The released ε-DP synthetic data generator `𝒯_PrivHP`.
#[derive(Debug, Clone)]
pub struct PrivHpGenerator<D: HierarchicalDomain> {
    domain: D,
    config: PrivHpConfig,
    split: BudgetSplit,
    tree: PartitionTree,
    items_seen: usize,
}

impl<D: HierarchicalDomain> PrivHpGenerator<D> {
    /// Assembles a generator from already-private parts. Used by the
    /// continual-observation adaptation, whose snapshot trees come from
    /// binary-mechanism counters rather than the 1-pass builder.
    pub(crate) fn from_parts(
        domain: D,
        config: PrivHpConfig,
        split: BudgetSplit,
        tree: PartitionTree,
        items_seen: usize,
    ) -> Self {
        Self { domain, config, split, tree, items_seen }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// The underlying consistent partition tree (post-processing of an
    /// ε-DP release, so exposing it costs no extra privacy).
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// A closed-form query view over the release (subdomain masses, heavy
    /// cells; plus ranges/CDF/quantiles/means on 1-D domains).
    pub fn query(&self) -> crate::query::TreeQuery<'_, D> {
        crate::query::TreeQuery::new(&self.tree, &self.domain)
    }

    /// The domain decomposition the generator samples over.
    pub fn domain(&self) -> &D {
        &self.domain
    }

    /// Configuration used to build this generator.
    pub fn config(&self) -> &PrivHpConfig {
        &self.config
    }

    /// The per-level budget split that was used.
    pub fn split(&self) -> &BudgetSplit {
        &self.split
    }

    /// Number of true stream items processed (not private; used by the
    /// evaluation harness only).
    pub fn items_seen(&self) -> usize {
        self.items_seen
    }

    /// Memory footprint of the released structure in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, Path, UnitInterval};
    use privhp_dp::rng::rng_from_seed;

    fn skewed_stream(n: usize) -> Vec<f64> {
        // 80% of mass in [0, 0.25), the rest uniform-ish.
        (0..n)
            .map(|i| {
                if i % 5 != 0 {
                    (i as f64 * 0.618_033_988_749) % 0.25
                } else {
                    (i as f64 * 0.414_213_562_373) % 1.0
                }
            })
            .collect()
    }

    #[test]
    fn end_to_end_build_and_sample() {
        let data = skewed_stream(2_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(11);
        let mut rng = rng_from_seed(12);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        let samples = g.sample_many(5_000, &mut rng);
        assert_eq!(samples.len(), 5_000);
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
        // The skew should be visible: well over a uniform 25% lands in
        // [0, 0.25).
        let low = samples.iter().filter(|&&x| x < 0.25).count() as f64 / 5_000.0;
        assert!(low > 0.5, "generator lost the input skew: {low} in [0,0.25)");
    }

    #[test]
    fn generator_tree_is_consistent() {
        let data = skewed_stream(1_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(21);
        let mut rng = rng_from_seed(22);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        assert!(
            crate::consistency::find_consistency_violation(g.tree(), &Path::root(), 1e-6).is_none()
        );
    }

    #[test]
    fn memory_stays_bounded() {
        // Memory must track k·log²n, not n.
        let small = {
            let data = skewed_stream(1 << 10);
            let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(1);
            let mut rng = rng_from_seed(2);
            let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            for x in &data {
                b.ingest(x);
            }
            b.memory_words()
        };
        let large = {
            let data = skewed_stream(1 << 14);
            let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(1);
            let mut rng = rng_from_seed(2);
            let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            for x in &data {
                b.ingest(x);
            }
            b.memory_words()
        };
        // 16x the data should cost only ~(log 2^14 / log 2^10)^2 ≈ 2x the
        // words; allow generous slack but far below 16x.
        assert!((large as f64) < (small as f64) * 6.0, "memory scaled with n: {small} -> {large}");
    }

    #[test]
    fn works_on_hypercube_2d() {
        let data: Vec<Vec<f64>> = (0..1_500)
            .map(|i| {
                let t = i as f64 / 1_500.0;
                vec![(t * 0.3 + 0.1) % 1.0, (t * t) % 1.0]
            })
            .collect();
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(31);
        let mut rng = rng_from_seed(32);
        let g = PrivHp::build(&Hypercube::new(2), config, data.iter().cloned(), &mut rng).unwrap();
        let samples = g.sample_many(100, &mut rng);
        assert!(samples.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn deterministic_given_seeds() {
        // Same-seed builds must produce *bit-identical* finalized trees —
        // counts compared by bit pattern, structure by the serialised
        // document (which covers node sets and registry order).
        let data = skewed_stream(800);
        let build = || {
            let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(77);
            let mut rng = rng_from_seed(78);
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap()
        };
        let g1 = build();
        let g2 = build();
        assert_eq!(g1.tree().len(), g2.tree().len());
        for (p, c) in g1.tree().iter() {
            let c2 = g2.tree().count(p).unwrap_or_else(|| panic!("node {p} missing in rerun"));
            assert_eq!(c.to_bits(), c2.to_bits(), "trees diverged at {p}: {c} vs {c2}");
        }
        let json1 = serde_json::to_string(g1.tree()).expect("serialise");
        let json2 = serde_json::to_string(g2.tree()).expect("serialise");
        assert_eq!(json1, json2, "serialised releases must be byte-identical");
    }

    #[test]
    fn empty_stream_still_releases() {
        let config = PrivHpConfig::for_domain(1.0, 1_024, 4).with_seed(41);
        let mut rng = rng_from_seed(42);
        let g = PrivHp::build(&UnitInterval::new(), config, std::iter::empty(), &mut rng).unwrap();
        // Pure noise, but sampling must not panic.
        let _ = g.sample_many(50, &mut rng);
    }

    #[test]
    fn depth_exceeding_domain_rejected() {
        let config = PrivHpConfig::for_domain(1.0, 1 << 20, 4).with_levels(2, 40);
        let mut rng = rng_from_seed(1);
        let err = PrivHpBuilder::new(privhp_domain::Ipv4Space::new(), config, &mut rng)
            .expect_err("depth 40 > 32 must be rejected");
        assert!(matches!(err, ConfigError::DepthExceedsDomain { .. }));
    }

    #[test]
    fn count_sketch_variant_builds_and_samples() {
        let data = skewed_stream(2_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8)
            .with_seed(51)
            .with_sketch_kind(crate::config::SketchKind::CountSketch);
        let mut rng = rng_from_seed(52);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        let samples = g.sample_many(4_000, &mut rng);
        let low = samples.iter().filter(|&&x| x < 0.25).count() as f64 / 4_000.0;
        assert!(low > 0.5, "Count-Sketch variant lost the skew: {low}");
        assert!(
            crate::consistency::find_consistency_violation(g.tree(), &Path::root(), 1e-6).is_none()
        );
    }

    #[test]
    fn items_seen_counts() {
        let config = PrivHpConfig::for_domain(1.0, 100, 2).with_seed(5);
        let mut rng = rng_from_seed(6);
        let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        for x in [0.1, 0.2, 0.3] {
            b.ingest(&x);
        }
        assert_eq!(b.items_seen(), 3);
        let g = b.finalize();
        assert_eq!(g.items_seen(), 3);
    }
}
