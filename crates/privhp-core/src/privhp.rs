//! The 1-pass PrivHP algorithm — paper Algorithm 1 — with **mergeable**
//! builder state.
//!
//! [`PrivHpBuilder`] is the streaming interface: construct, feed points with
//! [`PrivHpBuilder::ingest`] / [`PrivHpBuilder::ingest_batch`] /
//! [`PrivHpBuilder::ingest_par`], then [`PrivHpBuilder::finalize`] to run
//! GrowPartition and obtain a [`PrivHpGenerator`]. [`PrivHp::build`] is the
//! one-shot convenience wrapper.
//!
//! # Mergeable state and exactly-once noise
//!
//! The builder's data structures — the shallow counter tree and the
//! flattened deep-level sketch arena ([`LevelSketches`]) — hold **only the
//! deterministic stream counts** (exact integers for unit-weight streams).
//! The privacy noise of Algorithm 1 lines 2–8 is *committed* at
//! construction ([`PrivHpBuilder::new`] draws a noise seed from the
//! caller's RNG, before any data is seen, so the noise is oblivious) but
//! *materialised* exactly once, at [`PrivHpBuilder::finalize`]. Because
//! counters and sketches are linear and the deterministic tables sum
//! exactly, builder state is mergeable: [`PrivHpBuilder::new_shard`]
//! constructs a noiseless shard builder, [`PrivHpBuilder::merge`] adds a
//! shard's tables into a coordinator, and a K-shard
//! [`PrivHpBuilder::ingest_par`] build is **bit-identical** to the
//! sequential build with the same seeds — the substrate for data-parallel
//! and multi-machine ingest.
//!
//! Privacy: the builder spends its entire ε at finalization — counters get
//! `Laplace(1/σ_l)`, each deep level's sketch region gets `Laplace(j/σ_l)`
//! per cell (Theorem 2 with `Σ σ_l = ε`) — from a noise stream fixed before
//! the data. Everything after noise injection is deterministic
//! post-processing of privatised structures, and the sampler's randomness
//! is independent of the data, so the generator and every dataset drawn
//! from it are ε-DP. Shard builders never release anything themselves
//! ([`PrivHpBuilder::finalize`] refuses noiseless state), so sharding does
//! not change the privacy analysis.

use privhp_domain::{HierarchicalDomain, Path};
use privhp_dp::budget::BudgetSplit;
use privhp_dp::laplace::Laplace;
use privhp_dp::rng::{rng_from_seed, SeedSequence};
use privhp_sketch::{count_min, count_sketch, HashFamily, SketchParams};
use rand::RngCore;

use crate::budget::optimal_budget_split;
use crate::config::{ConfigError, PrivHpConfig, SketchKind};
use crate::grow::FrequencyOracle;
use crate::sampler::TreeSampler;
use crate::tree::PartitionTree;

/// Items per internal ingest chunk: large enough to amortise the
/// level-major passes over each level's table region, small enough that
/// the per-chunk scratch (located paths + hash pairs) stays cache-resident.
pub const INGEST_CHUNK: usize = 2048;

/// The deep-level sketches, one per level `l ∈ (L★, L]`, flattened into
/// **one contiguous `f64` arena**.
///
/// Layout (level-major, row-major within a level; all levels share the
/// configured [`SketchParams`], so every region has the same shape):
///
/// ```text
/// table: [ level L★+1: row 0 | row 1 | … | row j−1 ][ level L★+2: … ] …
///          ^ offsets[0]                               ^ offsets[1]
/// ```
///
/// The stream pass's `L·j` scattered adds are the dominant ingest cost once
/// the per-level tables outgrow the fast caches; one allocation with
/// precomputed per-level offsets lets [`PrivHpBuilder::ingest_batch`] apply
/// a whole chunk's adds *level-major*, keeping each `j·width` region hot
/// while it is being updated. All updates and queries route through the
/// sketch crate's single per-kind hashing code path
/// ([`count_min::update_table`] / [`count_sketch::update_table`] and their
/// query twins), so the arena is bucket-for-bucket identical to a vector
/// of standalone sketches with the same per-level seeds.
#[derive(Debug, Clone)]
pub struct LevelSketches {
    kind: SketchKind,
    params: SketchParams,
    /// The hierarchy level of region 0 (`L★ + 1`).
    first_level: usize,
    /// All level tables, one contiguous allocation.
    table: Vec<f64>,
    /// Precomputed start offset of each level's region in `table`.
    offsets: Vec<usize>,
    /// Per-level hash families, seeded exactly as the pre-arena per-level
    /// sketches were (one [`SeedSequence`] seed per level, in level order).
    hashes: Vec<HashFamily>,
    /// Per-level sums of true update weights (not private; internal).
    total_weights: Vec<f64>,
}

impl LevelSketches {
    /// Creates a zeroed arena for `levels` deep levels starting at
    /// `first_level`, hash-seeded from `master_seed`.
    fn new(
        kind: SketchKind,
        params: SketchParams,
        first_level: usize,
        levels: usize,
        master_seed: u64,
    ) -> Self {
        let mut seeds = SeedSequence::new(master_seed);
        let cells = params.cells();
        Self {
            kind,
            params,
            first_level,
            table: vec![0.0; cells * levels],
            offsets: (0..levels).map(|i| i * cells).collect(),
            hashes: (0..levels)
                .map(|_| HashFamily::new(params.depth, params.width, seeds.next_seed()))
                .collect(),
            total_weights: vec![0.0; levels],
        }
    }

    /// Number of deep levels summarised.
    pub fn levels(&self) -> usize {
        self.hashes.len()
    }

    /// The raw flattened arena (level-major, row-major within a level) —
    /// exposed for diagnostics and the merge-equivalence tests.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// The sketch key of `deep`'s ancestor at region `i`'s level.
    #[inline]
    fn key_at(first_level: usize, i: usize, deep: &Path) -> u64 {
        let l = first_level + i;
        (1u64 << l) | (deep.bits() >> (deep.level() - l))
    }

    /// Streams one item into every level region (the single-item path).
    fn update_item(&mut self, deep: &Path) {
        let cells = self.params.cells();
        let Self { kind, first_level, table, offsets, hashes, total_weights, .. } = self;
        for (i, fam) in hashes.iter().enumerate() {
            let key = Self::key_at(*first_level, i, deep);
            let region = &mut table[offsets[i]..offsets[i] + cells];
            match kind {
                SketchKind::CountMin => count_min::update_table(region, fam, key, 1.0),
                SketchKind::CountSketch => count_sketch::update_table(region, fam, key, 1.0),
            }
            total_weights[i] += 1.0;
        }
    }

    /// Applies a whole chunk **level-major**: for each level, hash the
    /// chunk up front (two mixes per item into `pairs`), then stream the
    /// `j` scattered adds per item through the sketch crate's batched
    /// pair path ([`count_min::update_table_pairs`], monomorphised over
    /// the common widths, two items interleaved) while that level's
    /// region is hot — this is where the batched ingest rate comes from.
    fn update_chunk(&mut self, deep_bits: &[u64], deep_level: usize, pairs: &mut Vec<(u64, u64)>) {
        if deep_bits.is_empty() {
            return;
        }
        let cells = self.params.cells();
        let Self { kind, first_level, table, offsets, hashes, total_weights, .. } = self;
        for (i, fam) in hashes.iter().enumerate() {
            let l = *first_level + i;
            let (lead, key_shift) = (1u64 << l, deep_level - l);
            let region = &mut table[offsets[i]..offsets[i] + cells];
            match kind {
                SketchKind::CountMin => {
                    // Phase A: two mixes per item for the whole chunk.
                    pairs.clear();
                    pairs.extend(deep_bits.iter().map(|&b| fam.hash_pair(lead | (b >> key_shift))));
                    // Phase B: the scattered adds, level-major.
                    count_min::update_table_pairs(region, fam, pairs, 1.0);
                }
                SketchKind::CountSketch => {
                    // The signed path needs the per-item sign word too, so
                    // it streams items directly through the kind's single
                    // update path (still level-major across the chunk).
                    for &b in deep_bits {
                        count_sketch::update_table(region, fam, lead | (b >> key_shift), 1.0);
                    }
                }
            }
            total_weights[i] += deep_bits.len() as f64;
        }
    }

    /// Adds `Laplace(j/σ_l)` noise to every cell of every level region —
    /// the §3.4 oblivious release, injected exactly once at finalization.
    fn add_noise<R: RngCore>(&mut self, split: &BudgetSplit, rng: &mut R) {
        let cells = self.params.cells();
        let j = self.params.depth as f64;
        for i in 0..self.levels() {
            let dist = Laplace::new(j / split.sigma(self.first_level + i));
            for cell in &mut self.table[self.offsets[i]..self.offsets[i] + cells] {
                *cell += dist.sample(rng);
            }
        }
    }

    /// Adds another arena's tables into this one elementwise. Exact for
    /// the integer data tables, so shard merges compose bit-identically.
    ///
    /// # Panics
    /// Panics unless kind, shape, level span, and hash seeds all match.
    pub fn merge(&mut self, other: &LevelSketches) {
        assert_eq!(self.kind, other.kind, "cannot merge arenas of different sketch kinds");
        assert_eq!(self.params, other.params, "cannot merge arenas of different dimensions");
        assert_eq!(self.first_level, other.first_level, "cannot merge arenas of different spans");
        assert_eq!(self.hashes, other.hashes, "cannot merge arenas with different hash seeds");
        for (cell, o) in self.table.iter_mut().zip(&other.table) {
            *cell += o;
        }
        for (t, o) in self.total_weights.iter_mut().zip(&other.total_weights) {
            *t += o;
        }
    }

    /// Borrowed per-level frequency-oracle views for GrowPartition.
    fn views(&self) -> Vec<LevelSketchView<'_>> {
        let cells = self.params.cells();
        (0..self.levels())
            .map(|i| LevelSketchView {
                kind: self.kind,
                table: &self.table[self.offsets[i]..self.offsets[i] + cells],
                hashes: &self.hashes[i],
            })
            .collect()
    }

    /// Memory footprint in 8-byte words (cells + hash seeds), identical to
    /// the pre-arena accounting of one standalone sketch per level.
    fn memory_words(&self) -> usize {
        self.table.len() + self.levels() * self.params.depth
    }
}

/// One level's borrowed region of the [`LevelSketches`] arena, viewed as a
/// frequency oracle for GrowPartition.
#[derive(Debug, Clone, Copy)]
pub struct LevelSketchView<'a> {
    kind: SketchKind,
    table: &'a [f64],
    hashes: &'a HashFamily,
}

impl FrequencyOracle for LevelSketchView<'_> {
    fn estimate(&self, key: u64) -> f64 {
        match self.kind {
            SketchKind::CountMin => count_min::query_table(self.table, self.hashes, key),
            SketchKind::CountSketch => count_sketch::query_table(self.table, self.hashes, key),
        }
    }
}

/// Reusable per-chunk scratch of the batched ingest path.
#[derive(Debug, Default)]
struct IngestScratch {
    /// Located deepest paths of the current chunk.
    paths: Vec<Path>,
    /// The located paths' packed bits — what the level-major passes
    /// actually consume (one 8-byte load per item instead of a 16-byte
    /// `Path`).
    bits: Vec<u64>,
    /// Per-item double-hash pairs of the level currently being applied.
    pairs: Vec<(u64, u64)>,
}

/// Marker namespace for the one-shot API.
pub struct PrivHp;

impl PrivHp {
    /// Builds a generator from a complete stream in one call: initialise,
    /// parse (in [`INGEST_CHUNK`]-sized batches), grow. `rng` supplies the
    /// privacy-noise seed.
    pub fn build<D, I, R>(
        domain: &D,
        config: PrivHpConfig,
        stream: I,
        rng: &mut R,
    ) -> Result<PrivHpGenerator<D>, ConfigError>
    where
        D: HierarchicalDomain + Clone,
        I: IntoIterator<Item = D::Point>,
        R: RngCore,
    {
        let mut builder = PrivHpBuilder::new(domain.clone(), config, rng)?;
        let mut buf: Vec<D::Point> = Vec::with_capacity(INGEST_CHUNK);
        for point in stream {
            buf.push(point);
            if buf.len() == INGEST_CHUNK {
                builder.ingest_batch(&buf);
                buf.clear();
            }
        }
        builder.ingest_batch(&buf);
        Ok(builder.finalize())
    }
}

/// Streaming state of Algorithm 1: the deterministic counter tree (levels
/// `0..=L★`) plus the flattened deep-level sketch arena, and — on
/// coordinators only — the committed noise seed.
#[derive(Debug)]
pub struct PrivHpBuilder<D: HierarchicalDomain> {
    domain: D,
    config: PrivHpConfig,
    split: BudgetSplit,
    tree: PartitionTree,
    sketches: LevelSketches,
    /// `Some` on coordinators ([`PrivHpBuilder::new`]): seed of the noise
    /// stream injected at finalization. `None` on shard builders, whose
    /// state is purely deterministic and exists to be merged.
    noise_seed: Option<u64>,
    scratch: IngestScratch,
    items_seen: usize,
}

impl<D: HierarchicalDomain + Clone> PrivHpBuilder<D> {
    /// Initialises all data structures and commits the privacy noise
    /// (Algorithm 1 lines 2–8): the noise seed is drawn from `rng` here,
    /// before any data is seen, and materialised once at
    /// [`Self::finalize`].
    ///
    /// If `config.split` is `None`, the Lemma-5 optimal split for `domain`
    /// is used.
    pub fn new<R: RngCore>(
        domain: D,
        config: PrivHpConfig,
        rng: &mut R,
    ) -> Result<Self, ConfigError> {
        let noise_seed = Some(rng.next_u64());
        Self::with_noise(domain, config, noise_seed)
    }

    /// Initialises a **noiseless shard builder**: identical deterministic
    /// state (same tree shape, same arena layout, same hash seeds from
    /// `config.seed`), but no noise — its only legal exit is
    /// [`PrivHpBuilder::merge`] into a coordinator built with
    /// [`Self::new`]. This is the unit of data-parallel and multi-machine
    /// ingest; [`Self::finalize`] refuses shard builders so noiseless
    /// state can never be released.
    pub fn new_shard(domain: D, config: PrivHpConfig) -> Result<Self, ConfigError> {
        Self::with_noise(domain, config, None)
    }

    fn with_noise(
        domain: D,
        config: PrivHpConfig,
        noise_seed: Option<u64>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.depth > domain.max_level() {
            return Err(ConfigError::DepthExceedsDomain {
                depth: config.depth,
                max_level: domain.max_level(),
            });
        }
        let split = match &config.split {
            Some(s) => s.clone(),
            None => optimal_budget_split(&domain, &config)
                .map_err(|_| ConfigError::InvalidEpsilon(config.epsilon))?,
        };
        Ok(Self::from_parts(domain, config, split, noise_seed))
    }

    /// Assembles a builder from validated parts (shared by the public
    /// constructors and the in-process shard workers, which reuse the
    /// coordinator's already-computed split).
    fn from_parts(
        domain: D,
        config: PrivHpConfig,
        split: BudgetSplit,
        noise_seed: Option<u64>,
    ) -> Self {
        let tree = PartitionTree::complete(config.l_star, |_| 0.0);
        let sketches = LevelSketches::new(
            config.sketch_kind,
            config.sketch,
            config.l_star + 1,
            config.depth - config.l_star,
            config.seed,
        );
        Self {
            domain,
            config,
            split,
            tree,
            sketches,
            noise_seed,
            scratch: Default::default(),
            items_seen: 0,
        }
    }

    /// Processes one stream item (Algorithm 1 lines 9–15): updates the
    /// counter at each level `l ≤ L★` — array adds on the tree's dense
    /// arena — and each deep level's region of the sketch arena.
    pub fn ingest(&mut self, point: &D::Point) {
        // The deepest path determines every ancestor, so locate once; each
        // ancestor's sketch key is then shift arithmetic on the same bits.
        let deep = self.domain.locate(point, self.config.depth);
        self.tree.add_count_prefix(&deep, self.config.l_star, 1.0);
        self.sketches.update_item(&deep);
        self.items_seen += 1;
    }

    /// Processes a slice of stream items in fixed-size chunks, applying
    /// each chunk **level-major**: locate the whole chunk (the fixed-point
    /// / Morton path runs as one tight loop), apply the tree's prefix adds
    /// level by level on the dense arena, then hash and add each deep
    /// level's chunk while that level's arena region is hot. Produces
    /// tables bit-identical to item-by-item [`Self::ingest`] (unit-weight
    /// integer adds are exact in any order).
    pub fn ingest_batch(&mut self, points: &[D::Point]) {
        for chunk in points.chunks(INGEST_CHUNK) {
            self.domain.locate_batch(chunk, self.config.depth, &mut self.scratch.paths);
            self.scratch.bits.clear();
            self.scratch.bits.extend(self.scratch.paths.iter().map(Path::bits));
            self.tree.add_count_prefix_batch(
                &self.scratch.bits,
                self.config.depth,
                self.config.l_star,
                1.0,
            );
            self.sketches.update_chunk(
                &self.scratch.bits,
                self.config.depth,
                &mut self.scratch.pairs,
            );
            self.items_seen += chunk.len();
        }
    }

    /// Shards `points` across `threads` scoped workers — each ingesting
    /// its contiguous shard into a noiseless shard builder — and merges
    /// the shards back in order. Because the deterministic tables sum
    /// exactly and the noise lives only in the coordinator, the result is
    /// **bit-identical** to [`Self::ingest_batch`] over the same slice,
    /// for any thread count.
    pub fn ingest_par(&mut self, points: &[D::Point], threads: usize)
    where
        D: Send + Sync,
        D::Point: Sync,
    {
        let threads = threads.max(1).min(points.len().max(1));
        if threads <= 1 {
            self.ingest_batch(points);
            return;
        }
        let shard_size = points.len().div_ceil(threads);
        let shards: Vec<PrivHpBuilder<D>> = std::thread::scope(|scope| {
            let handles: Vec<_> = points
                .chunks(shard_size)
                .map(|chunk| {
                    let domain = self.domain.clone();
                    let config = self.config.clone();
                    let split = self.split.clone();
                    scope.spawn(move || {
                        let mut shard = PrivHpBuilder::from_parts(domain, config, split, None);
                        shard.ingest_batch(chunk);
                        shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("ingest shard worker panicked")).collect()
        });
        for shard in shards {
            self.merge(shard);
        }
    }

    /// Merges a noiseless shard builder's state into this builder: tree
    /// counters add (dense-prefix elementwise + overlay union), sketch
    /// arenas add elementwise, item counts sum. Exact for the integer data
    /// tables, so K disjoint shards merged in any grouping equal one
    /// sequential pass bit-for-bit.
    ///
    /// # Panics
    /// Panics if `shard` holds noise (merging two noise-holding builders
    /// would inject noise twice) or was configured differently.
    pub fn merge(&mut self, shard: PrivHpBuilder<D>) {
        assert!(
            shard.noise_seed.is_none(),
            "only noiseless shard builders (PrivHpBuilder::new_shard) can be merged — \
             merging a coordinator would inject its noise twice"
        );
        assert_eq!(self.config, shard.config, "shard config must match the coordinator");
        assert_eq!(self.split, shard.split, "shard budget split must match the coordinator");
        self.tree.merge(&shard.tree);
        self.sketches.merge(&shard.sketches);
        self.items_seen += shard.items_seen;
    }

    /// Items ingested so far.
    pub fn items_seen(&self) -> usize {
        self.items_seen
    }

    /// The per-level budget split in force.
    pub fn split(&self) -> &BudgetSplit {
        &self.split
    }

    /// Whether this is a noiseless shard builder (see
    /// [`Self::new_shard`]).
    pub fn is_shard(&self) -> bool {
        self.noise_seed.is_none()
    }

    /// The deterministic counter tree accumulated so far (no noise).
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// The deterministic deep-level sketch arena accumulated so far.
    pub fn sketches(&self) -> &LevelSketches {
        &self.sketches
    }

    /// Current memory footprint in 8-byte words (tree + sketch arena).
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words() + self.sketches.memory_words()
    }

    /// Runs GrowPartition (Algorithm 2) and returns the finished generator.
    pub fn finalize(self) -> PrivHpGenerator<D> {
        self.finalize_with_options(crate::grow::GrowOptions::default())
    }

    /// [`Self::finalize`] with explicit [`crate::grow::GrowOptions`]
    /// (ablation hook for the consistency experiment). Materialises the
    /// committed noise — `Laplace(1/σ_l)` per counter in level order,
    /// then `Laplace(j/σ_l)` per sketch cell in arena order — exactly
    /// once, then grows the now-private structures.
    ///
    /// # Panics
    /// Panics on a shard builder: noiseless state must be merged into a
    /// coordinator, never released.
    pub fn finalize_with_options(self, options: crate::grow::GrowOptions) -> PrivHpGenerator<D> {
        let Self { domain, config, split, mut tree, mut sketches, noise_seed, items_seen, .. } =
            self;
        let seed = noise_seed.expect(
            "shard builders hold no noise: merge them into a coordinator built with \
             PrivHpBuilder::new before finalizing",
        );
        let mut rng = rng_from_seed(seed);
        for level in 0..=config.l_star {
            let dist = Laplace::new(1.0 / split.sigma(level));
            for bits in 0..(1u64 << level) {
                tree.add_count(&Path::from_bits(bits, level), dist.sample(&mut rng));
            }
        }
        sketches.add_noise(&split, &mut rng);
        let views = sketches.views();
        let tree = crate::grow::grow_partition_with_options(
            tree,
            &views,
            config.l_star,
            config.depth,
            config.k,
            options,
        );
        PrivHpGenerator { domain, config, split, tree, items_seen }
    }
}

/// The released ε-DP synthetic data generator `𝒯_PrivHP`.
#[derive(Debug, Clone)]
pub struct PrivHpGenerator<D: HierarchicalDomain> {
    domain: D,
    config: PrivHpConfig,
    split: BudgetSplit,
    tree: PartitionTree,
    items_seen: usize,
}

impl<D: HierarchicalDomain> PrivHpGenerator<D> {
    /// Assembles a generator from already-private parts. Used by the
    /// continual-observation adaptation, whose snapshot trees come from
    /// binary-mechanism counters rather than the 1-pass builder.
    pub(crate) fn from_parts(
        domain: D,
        config: PrivHpConfig,
        split: BudgetSplit,
        tree: PartitionTree,
        items_seen: usize,
    ) -> Self {
        Self { domain, config, split, tree, items_seen }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer
    /// (`m · point_lanes` values appended) — the allocation-free batch
    /// twin of [`Self::sample_many`].
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        TreeSampler::new(&self.tree, &self.domain).sample_many_into(m, rng, out)
    }

    /// The underlying consistent partition tree (post-processing of an
    /// ε-DP release, so exposing it costs no extra privacy).
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// A closed-form query view over the release (subdomain masses, heavy
    /// cells; plus ranges/CDF/quantiles/means on 1-D domains).
    pub fn query(&self) -> crate::query::TreeQuery<'_, D> {
        crate::query::TreeQuery::new(&self.tree, &self.domain)
    }

    /// The domain decomposition the generator samples over.
    pub fn domain(&self) -> &D {
        &self.domain
    }

    /// Configuration used to build this generator.
    pub fn config(&self) -> &PrivHpConfig {
        &self.config
    }

    /// The per-level budget split that was used.
    pub fn split(&self) -> &BudgetSplit {
        &self.split
    }

    /// Number of true stream items processed (not private; used by the
    /// evaluation harness only).
    pub fn items_seen(&self) -> usize {
        self.items_seen
    }

    /// Memory footprint of the released structure in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, Path, UnitInterval};
    use privhp_dp::rng::rng_from_seed;

    fn skewed_stream(n: usize) -> Vec<f64> {
        // 80% of mass in [0, 0.25), the rest uniform-ish.
        (0..n)
            .map(|i| {
                if i % 5 != 0 {
                    (i as f64 * 0.618_033_988_749) % 0.25
                } else {
                    (i as f64 * 0.414_213_562_373) % 1.0
                }
            })
            .collect()
    }

    #[test]
    fn end_to_end_build_and_sample() {
        let data = skewed_stream(2_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(11);
        let mut rng = rng_from_seed(12);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        let samples = g.sample_many(5_000, &mut rng);
        assert_eq!(samples.len(), 5_000);
        assert!(samples.iter().all(|x| (0.0..1.0).contains(x)));
        // The skew should be visible: well over a uniform 25% lands in
        // [0, 0.25).
        let low = samples.iter().filter(|&&x| x < 0.25).count() as f64 / 5_000.0;
        assert!(low > 0.5, "generator lost the input skew: {low} in [0,0.25)");
    }

    #[test]
    fn generator_tree_is_consistent() {
        let data = skewed_stream(1_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(21);
        let mut rng = rng_from_seed(22);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        assert!(
            crate::consistency::find_consistency_violation(g.tree(), &Path::root(), 1e-6).is_none()
        );
    }

    #[test]
    fn memory_stays_bounded() {
        // Memory must track k·log²n, not n.
        let small = {
            let data = skewed_stream(1 << 10);
            let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(1);
            let mut rng = rng_from_seed(2);
            let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            for x in &data {
                b.ingest(x);
            }
            b.memory_words()
        };
        let large = {
            let data = skewed_stream(1 << 14);
            let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(1);
            let mut rng = rng_from_seed(2);
            let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            for x in &data {
                b.ingest(x);
            }
            b.memory_words()
        };
        // 16x the data should cost only ~(log 2^14 / log 2^10)^2 ≈ 2x the
        // words; allow generous slack but far below 16x.
        assert!((large as f64) < (small as f64) * 6.0, "memory scaled with n: {small} -> {large}");
    }

    #[test]
    fn works_on_hypercube_2d() {
        let data: Vec<Vec<f64>> = (0..1_500)
            .map(|i| {
                let t = i as f64 / 1_500.0;
                vec![(t * 0.3 + 0.1) % 1.0, (t * t) % 1.0]
            })
            .collect();
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(31);
        let mut rng = rng_from_seed(32);
        let g = PrivHp::build(&Hypercube::new(2), config, data.iter().cloned(), &mut rng).unwrap();
        let samples = g.sample_many(100, &mut rng);
        assert!(samples.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn deterministic_given_seeds() {
        // Same-seed builds must produce *bit-identical* finalized trees —
        // counts compared by bit pattern, structure by the serialised
        // document (which covers node sets and registry order).
        let data = skewed_stream(800);
        let build = || {
            let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(77);
            let mut rng = rng_from_seed(78);
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap()
        };
        let g1 = build();
        let g2 = build();
        assert_eq!(g1.tree().len(), g2.tree().len());
        for (p, c) in g1.tree().iter() {
            let c2 = g2.tree().count(p).unwrap_or_else(|| panic!("node {p} missing in rerun"));
            assert_eq!(c.to_bits(), c2.to_bits(), "trees diverged at {p}: {c} vs {c2}");
        }
        let json1 = serde_json::to_string(g1.tree()).expect("serialise");
        let json2 = serde_json::to_string(g2.tree()).expect("serialise");
        assert_eq!(json1, json2, "serialised releases must be byte-identical");
    }

    #[test]
    fn empty_stream_still_releases() {
        let config = PrivHpConfig::for_domain(1.0, 1_024, 4).with_seed(41);
        let mut rng = rng_from_seed(42);
        let g = PrivHp::build(&UnitInterval::new(), config, std::iter::empty(), &mut rng).unwrap();
        // Pure noise, but sampling must not panic.
        let _ = g.sample_many(50, &mut rng);
    }

    #[test]
    fn depth_exceeding_domain_rejected() {
        let config = PrivHpConfig::for_domain(1.0, 1 << 20, 4).with_levels(2, 40);
        let mut rng = rng_from_seed(1);
        let err = PrivHpBuilder::new(privhp_domain::Ipv4Space::new(), config, &mut rng)
            .expect_err("depth 40 > 32 must be rejected");
        assert!(matches!(err, ConfigError::DepthExceedsDomain { .. }));
    }

    #[test]
    fn count_sketch_variant_builds_and_samples() {
        let data = skewed_stream(2_000);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 8)
            .with_seed(51)
            .with_sketch_kind(crate::config::SketchKind::CountSketch);
        let mut rng = rng_from_seed(52);
        let g =
            PrivHp::build(&UnitInterval::new(), config, data.iter().copied(), &mut rng).unwrap();
        let samples = g.sample_many(4_000, &mut rng);
        let low = samples.iter().filter(|&&x| x < 0.25).count() as f64 / 4_000.0;
        assert!(low > 0.5, "Count-Sketch variant lost the skew: {low}");
        assert!(
            crate::consistency::find_consistency_violation(g.tree(), &Path::root(), 1e-6).is_none()
        );
    }

    #[test]
    fn items_seen_counts() {
        let config = PrivHpConfig::for_domain(1.0, 100, 2).with_seed(5);
        let mut rng = rng_from_seed(6);
        let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        for x in [0.1, 0.2, 0.3] {
            b.ingest(&x);
        }
        assert_eq!(b.items_seen(), 3);
        let g = b.finalize();
        assert_eq!(g.items_seen(), 3);
    }

    /// Builds two same-config builders and drives them through different
    /// ingest paths; asserts the deterministic state is bit-identical.
    fn assert_same_state<D: HierarchicalDomain + Clone>(
        a: &PrivHpBuilder<D>,
        b: &PrivHpBuilder<D>,
    ) {
        assert_eq!(a.items_seen(), b.items_seen());
        for (p, c) in a.tree().iter() {
            assert_eq!(
                c.to_bits(),
                b.tree().count_unchecked(p).to_bits(),
                "tree counters diverged at {p}"
            );
        }
        let (ta, tb) = (a.sketches().table(), b.sketches().table());
        assert_eq!(ta.len(), tb.len());
        for (i, (x, y)) in ta.iter().zip(tb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "sketch arena diverged at cell {i}");
        }
    }

    #[test]
    fn ingest_batch_bit_identical_to_item_ingest() {
        for kind in [SketchKind::CountMin, SketchKind::CountSketch] {
            let data = skewed_stream(3_000); // crosses the chunk boundary
            let config =
                PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(61).with_sketch_kind(kind);
            let mut rng = rng_from_seed(62);
            let mut one =
                PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
            let mut rng = rng_from_seed(62);
            let mut batch = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            for x in &data {
                one.ingest(x);
            }
            batch.ingest_batch(&data);
            assert_same_state(&one, &batch);
        }
    }

    #[test]
    fn ingest_par_bit_identical_to_sequential_build() {
        let data = skewed_stream(2_500);
        let build = |threads: usize| {
            let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(71);
            let mut rng = rng_from_seed(72);
            let mut b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
            b.ingest_par(&data, threads);
            b
        };
        let sequential = build(1);
        for threads in [2usize, 3, 7] {
            let par = build(threads);
            assert_same_state(&sequential, &par);
        }
        // And the finalized releases are byte-identical.
        let a = serde_json::to_string(build(1).finalize().tree()).unwrap();
        let b = serde_json::to_string(build(3).finalize().tree()).unwrap();
        assert_eq!(a, b, "parallel build must release identical bytes");
    }

    #[test]
    fn merging_empty_shard_is_identity() {
        let data = skewed_stream(500);
        let config = PrivHpConfig::for_domain(1.0, data.len(), 4).with_seed(81);
        let mut rng = rng_from_seed(82);
        let mut a = PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
        a.ingest_batch(&data);
        let mut rng = rng_from_seed(82);
        let mut b = PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
        b.ingest_batch(&data);
        let empty = PrivHpBuilder::new_shard(UnitInterval::new(), config).unwrap();
        assert!(empty.is_shard());
        b.merge(empty);
        assert_same_state(&a, &b);
    }

    #[test]
    #[should_panic(expected = "shard builders hold no noise")]
    fn shard_builder_refuses_to_finalize() {
        let config = PrivHpConfig::for_domain(1.0, 100, 2);
        let b = PrivHpBuilder::new_shard(UnitInterval::new(), config).unwrap();
        let _ = b.finalize();
    }

    #[test]
    #[should_panic(expected = "only noiseless shard builders")]
    fn merging_a_coordinator_rejected() {
        let config = PrivHpConfig::for_domain(1.0, 100, 2);
        let mut rng = rng_from_seed(9);
        let mut a = PrivHpBuilder::new(UnitInterval::new(), config.clone(), &mut rng).unwrap();
        let b = PrivHpBuilder::new(UnitInterval::new(), config, &mut rng).unwrap();
        a.merge(b);
    }
}
