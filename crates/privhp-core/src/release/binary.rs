//! The `.phpr` binary release format: a versioned, sectioned container
//! whose dense-tree arena is stored as raw little-endian `f64` words at a
//! page-aligned offset, so a loader can use (or memory-map) it in place
//! without a parse step.
//!
//! The byte-level layout is specified in [`docs/FORMAT.md`] (kept in
//! lock-step with this module); the short version:
//!
//! ```text
//! magic (8) │ format version u32 │ endian check u32 │ release version u32
//! section count u32 │ section table (kind,offset,len) u64×3 each │ sections…
//! ```
//!
//! Five sections, all offsets absolute and bounds-checked on read:
//!
//! | kind | name    | payload                                                |
//! |------|---------|--------------------------------------------------------|
//! | 1    | META    | compact JSON `{"domain":…,"config":…}`                 |
//! | 2    | TREE    | `dense_levels, overlay_count, level_count, total_nodes` (u64×4) |
//! | 3    | LEVELS  | per level: `count` u64, then `count` × sketch-key u64  |
//! | 4    | OVERLAY | `overlay_count` × (sketch-key u64, count f64)          |
//! | 5    | ARENA   | `1 << dense_levels` raw LE `f64` (page-aligned, last)  |
//!
//! Storing the storage layout (`dense_levels`, the full level registry in
//! insertion order, the overlay in registry order) — not just the node
//! multiset — makes [`decode`] an *exact* inverse of [`encode`]: the
//! decoded tree reproduces the encoded tree's arena split and registry
//! order, so a JSON render of the round-tripped release is byte-identical
//! to a JSON render of the original ([`crate::release::ReleaseFile`]'s
//! round-trip guarantee).
//!
//! Decoding never panics on hostile bytes: every section read is
//! bounds-checked and every structural invariant (magic, versions,
//! endianness, section sizes, node keys, registry/overlay agreement) is
//! verified into a structured [`BinaryFormatError`] before any tree is
//! assembled. Forward compatibility is fail-closed: a bumped format or
//! release version is rejected with the found/expected pair, and unknown
//! section kinds are an error rather than silently ignored.
//!
//! [`docs/FORMAT.md`]: https://github.com/privhp/privhp/blob/main/docs/FORMAT.md

use std::collections::HashMap;

use crate::config::PrivHpConfig;
use crate::release::{DomainSpec, ReleaseFile, RELEASE_VERSION};
use crate::tree::PartitionTree;
use privhp_domain::Path;
use serde::{Deserialize, Serialize, Value};

/// File magic: `\x89 P H P R \r \n \x1a` — the PNG trick. The high bit
/// catches 7-bit strips, `\r\n` catches newline translation, `\x1a`
/// stops accidental `type` under DOS-ish shells.
pub const MAGIC: [u8; 8] = [0x89, b'P', b'H', b'P', b'R', 0x0D, 0x0A, 0x1A];

/// Container-format version this module writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Endianness check value: written little-endian; a big-endian writer
/// would produce `0x4D3C2B1A` and be rejected on read.
pub const ENDIAN_CHECK: u32 = 0x1A2B_3C4D;

/// Alignment of the ARENA section's file offset: one page, so a mapped
/// file exposes the arena at a page boundary and the `f64` words can be
/// used in place.
pub const ARENA_ALIGN: usize = 4096;

/// Section kinds, in table (and file) order.
const SECTION_META: u64 = 1;
const SECTION_TREE: u64 = 2;
const SECTION_LEVELS: u64 = 3;
const SECTION_OVERLAY: u64 = 4;
const SECTION_ARENA: u64 = 5;
const SECTION_COUNT: usize = 5;

/// Bytes per section-table entry: `kind, offset, len` as u64.
const TABLE_ENTRY: usize = 24;

/// Fixed header size before the section table.
const HEADER: usize = 8 + 4 + 4 + 4 + 4;

/// Why a byte buffer is not a valid `.phpr` release. Every variant is a
/// clean rejection — decoding hostile bytes never panics and never
/// over-allocates past the buffer it was handed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryFormatError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The container-format version is not [`FORMAT_VERSION`].
    UnsupportedFormat {
        /// Version found in the header.
        found: u32,
    },
    /// The endianness check value did not read back as [`ENDIAN_CHECK`].
    BadEndianness,
    /// The release version is not [`RELEASE_VERSION`].
    UnsupportedRelease {
        /// Release version found in the header.
        found: u32,
    },
    /// A read ran past the end of the buffer (truncated file).
    Truncated {
        /// Which structure the read was for.
        what: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A structural invariant failed (bad section table, invalid node
    /// key, registry/overlay disagreement, …).
    Corrupt(String),
}

impl std::fmt::Display for BinaryFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a .phpr file (bad magic)"),
            Self::UnsupportedFormat { found } => {
                write!(f, "unsupported .phpr format version {found} (expected {FORMAT_VERSION})")
            }
            Self::BadEndianness => write!(f, "endianness check failed (not little-endian data)"),
            Self::UnsupportedRelease { found } => {
                write!(f, "release version {found} unsupported (expected {RELEASE_VERSION})")
            }
            Self::Truncated { what, needed, got } => {
                write!(f, "truncated file: {what} needs {needed} bytes, only {got} available")
            }
            Self::Corrupt(why) => write!(f, "corrupt .phpr file: {why}"),
        }
    }
}

impl std::error::Error for BinaryFormatError {}

fn corrupt(why: impl Into<String>) -> BinaryFormatError {
    BinaryFormatError::Corrupt(why.into())
}

// ---- encoding --------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises a release to `.phpr` bytes. Infallible: any in-memory
/// release has a valid binary form.
pub fn encode(release: &ReleaseFile) -> Vec<u8> {
    let tree = &release.tree;
    let dense_levels = tree.dense_levels();
    let registry = tree.levels_registry();

    // META: the small lossless JSON blob (the vendored writer prints f64
    // via Rust's shortest round-trip `Display`, so ε and the σ split
    // survive bit-exactly).
    let meta_value = Value::Object(vec![
        ("domain".into(), Serialize::to_value(&release.domain)),
        ("config".into(), Serialize::to_value(&release.config)),
    ]);
    let meta = serde_json::value_to_string(&meta_value).into_bytes();

    // TREE: the raw layout counters the reader validates everything
    // against.
    let overlay_count =
        tree.len() - if dense_levels > 0 { (1usize << dense_levels) - 1 } else { 0 };
    let mut tree_sec = Vec::with_capacity(32);
    push_u64(&mut tree_sec, dense_levels as u64);
    push_u64(&mut tree_sec, overlay_count as u64);
    push_u64(&mut tree_sec, registry.len() as u64);
    push_u64(&mut tree_sec, tree.len() as u64);

    // LEVELS: the full per-level registry in insertion order — this is
    // what makes the decode side reproduce iteration order (and thereby
    // JSON bytes) exactly.
    let mut levels_sec = Vec::new();
    for row in registry {
        push_u64(&mut levels_sec, row.len() as u64);
        for p in row {
            push_u64(&mut levels_sec, p.sketch_key());
        }
    }

    // OVERLAY: sparse nodes in registry (level-major insertion) order.
    let mut overlay_sec = Vec::with_capacity(overlay_count * 16);
    for row in registry.iter().skip(dense_levels) {
        for p in row {
            push_u64(&mut overlay_sec, p.sketch_key());
            push_f64(&mut overlay_sec, tree.count_unchecked(p));
        }
    }

    // ARENA: raw LE f64 words, verbatim (slot 0 included, so the arena
    // can be indexed by sketch key in place).
    let arena = tree.dense_arena();
    let mut arena_sec = Vec::with_capacity(arena.len() * 8);
    for &c in arena {
        push_f64(&mut arena_sec, c);
    }

    // Lay out: header, table, then sections in kind order with the arena
    // last at a page-aligned offset.
    let table_end = HEADER + SECTION_COUNT * TABLE_ENTRY;
    let meta_off = table_end;
    let tree_off = meta_off + meta.len();
    let levels_off = tree_off + tree_sec.len();
    let overlay_off = levels_off + levels_sec.len();
    let arena_off = (overlay_off + overlay_sec.len()).div_ceil(ARENA_ALIGN) * ARENA_ALIGN;

    let mut out = Vec::with_capacity(arena_off + arena_sec.len());
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u32(&mut out, ENDIAN_CHECK);
    push_u32(&mut out, release.version);
    push_u32(&mut out, SECTION_COUNT as u32);
    for (kind, off, len) in [
        (SECTION_META, meta_off, meta.len()),
        (SECTION_TREE, tree_off, tree_sec.len()),
        (SECTION_LEVELS, levels_off, levels_sec.len()),
        (SECTION_OVERLAY, overlay_off, overlay_sec.len()),
        (SECTION_ARENA, arena_off, arena_sec.len()),
    ] {
        push_u64(&mut out, kind);
        push_u64(&mut out, off as u64);
        push_u64(&mut out, len as u64);
    }
    out.extend_from_slice(&meta);
    out.extend_from_slice(&tree_sec);
    out.extend_from_slice(&levels_sec);
    out.extend_from_slice(&overlay_sec);
    out.resize(arena_off, 0); // zero padding up to the page boundary
    out.extend_from_slice(&arena_sec);
    out
}

// ---- decoding --------------------------------------------------------------

/// A bounds-checked cursor over the input buffer.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn slice(
        &self,
        what: &'static str,
        off: usize,
        len: usize,
    ) -> Result<&'a [u8], BinaryFormatError> {
        let end =
            off.checked_add(len).ok_or_else(|| corrupt(format!("{what}: offset overflow")))?;
        if end > self.data.len() {
            return Err(BinaryFormatError::Truncated { what, needed: end, got: self.data.len() });
        }
        Ok(&self.data[off..end])
    }

    fn u32_at(&self, what: &'static str, off: usize) -> Result<u32, BinaryFormatError> {
        Ok(u32::from_le_bytes(self.slice(what, off, 4)?.try_into().expect("4 bytes")))
    }
}

/// Reads a u64 from the front of `buf`, advancing it.
fn take_u64(buf: &mut &[u8], what: &'static str) -> Result<u64, BinaryFormatError> {
    let (head, rest) = buf.split_first_chunk::<8>().ok_or(BinaryFormatError::Truncated {
        what,
        needed: 8,
        got: buf.len(),
    })?;
    *buf = rest;
    Ok(u64::from_le_bytes(*head))
}

/// Reads an f64 from the front of `buf`, advancing it.
fn take_f64(buf: &mut &[u8], what: &'static str) -> Result<f64, BinaryFormatError> {
    Ok(f64::from_bits(take_u64(buf, what)?))
}

/// Decodes a node key, rejecting values [`Path::from_sketch_key`] cannot
/// represent.
fn decode_key(key: u64) -> Result<Path, BinaryFormatError> {
    Path::from_sketch_key(key).ok_or_else(|| corrupt(format!("invalid node key {key:#x}")))
}

/// Whether the buffer starts with the `.phpr` magic — the format
/// auto-detection probe ([`ReleaseFile::from_bytes`]).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Parses `.phpr` bytes back into a release. Exact inverse of
/// [`encode`]; every structural claim in the file is validated before
/// the tree is assembled, so corrupt, truncated, or version-bumped input
/// is a structured [`BinaryFormatError`], never a panic.
pub fn decode(bytes: &[u8]) -> Result<ReleaseFile, BinaryFormatError> {
    let r = Reader { data: bytes };
    if bytes.len() < HEADER {
        // Distinguish "not even a magic" from "magic but cut off".
        if !is_binary(bytes) {
            return Err(BinaryFormatError::BadMagic);
        }
        return Err(BinaryFormatError::Truncated {
            what: "header",
            needed: HEADER,
            got: bytes.len(),
        });
    }
    if !is_binary(bytes) {
        return Err(BinaryFormatError::BadMagic);
    }
    let format = r.u32_at("format version", 8)?;
    if format != FORMAT_VERSION {
        return Err(BinaryFormatError::UnsupportedFormat { found: format });
    }
    if r.u32_at("endian check", 12)? != ENDIAN_CHECK {
        return Err(BinaryFormatError::BadEndianness);
    }
    let release_version = r.u32_at("release version", 16)?;
    if release_version != RELEASE_VERSION {
        return Err(BinaryFormatError::UnsupportedRelease { found: release_version });
    }
    let sections = r.u32_at("section count", 20)? as usize;
    if sections != SECTION_COUNT {
        return Err(corrupt(format!(
            "expected {SECTION_COUNT} sections, header claims {sections}"
        )));
    }

    // Section table: each known kind exactly once.
    let mut table = [None::<(usize, usize)>; SECTION_COUNT];
    let mut cursor = r.slice("section table", HEADER, sections * TABLE_ENTRY)?;
    for _ in 0..sections {
        let kind = take_u64(&mut cursor, "section kind")?;
        let off = take_u64(&mut cursor, "section offset")? as usize;
        let len = take_u64(&mut cursor, "section length")? as usize;
        let slot = match kind {
            SECTION_META..=SECTION_ARENA => (kind - 1) as usize,
            other => return Err(corrupt(format!("unknown section kind {other}"))),
        };
        if table[slot].replace((off, len)).is_some() {
            return Err(corrupt(format!("section kind {kind} appears twice")));
        }
    }
    let section = |kind: u64| table[(kind - 1) as usize].expect("all slots filled above");

    // META: domain + config.
    let (off, len) = section(SECTION_META);
    let meta_bytes = r.slice("META section", off, len)?;
    let meta_str =
        std::str::from_utf8(meta_bytes).map_err(|_| corrupt("META section is not UTF-8"))?;
    let meta: Value = serde_json::parse_value_str(meta_str)
        .map_err(|e| corrupt(format!("META section is not valid JSON: {e}")))?;
    let domain: DomainSpec =
        meta.get("domain").ok_or_else(|| corrupt("META section has no 'domain'")).and_then(
            |v| Deserialize::from_value(v).map_err(|e| corrupt(format!("bad META domain: {e}"))),
        )?;
    let config: PrivHpConfig =
        meta.get("config").ok_or_else(|| corrupt("META section has no 'config'")).and_then(
            |v| Deserialize::from_value(v).map_err(|e| corrupt(format!("bad META config: {e}"))),
        )?;

    // TREE: layout counters.
    let (off, len) = section(SECTION_TREE);
    let mut tree_sec = r.slice("TREE section", off, len)?;
    if len != 32 {
        return Err(corrupt(format!("TREE section is {len} bytes, expected 32")));
    }
    let dense_levels = take_u64(&mut tree_sec, "dense_levels")? as usize;
    let overlay_count = take_u64(&mut tree_sec, "overlay_count")? as usize;
    let level_count = take_u64(&mut tree_sec, "level_count")? as usize;
    let total_nodes = take_u64(&mut tree_sec, "total_nodes")? as usize;
    if dense_levels > Path::MAX_LEVEL + 1 {
        return Err(corrupt(format!("dense_levels {dense_levels} exceeds the path depth limit")));
    }
    if level_count > Path::MAX_LEVEL + 1 {
        return Err(corrupt(format!("level_count {level_count} exceeds the path depth limit")));
    }
    let dense_nodes = if dense_levels > 0 { (1usize << dense_levels) - 1 } else { 0 };
    if total_nodes != dense_nodes + overlay_count {
        return Err(corrupt(format!(
            "node accounting mismatch: {total_nodes} total vs {dense_nodes} dense + {overlay_count} overlay"
        )));
    }

    // LEVELS: the full registry. Sized and key-validated before any
    // large allocation.
    let (off, len) = section(SECTION_LEVELS);
    let mut levels_sec = r.slice("LEVELS section", off, len)?;
    let expected_words = level_count + total_nodes;
    if len != expected_words * 8 {
        return Err(corrupt(format!(
            "LEVELS section is {len} bytes, expected {} for {level_count} levels / {total_nodes} nodes",
            expected_words * 8
        )));
    }
    let mut levels: Vec<Vec<Path>> = Vec::with_capacity(level_count);
    for level in 0..level_count {
        let row_len = take_u64(&mut levels_sec, "level row length")? as usize;
        if level < dense_levels {
            if row_len != 1usize << level {
                return Err(corrupt(format!(
                    "dense level {level} registry has {row_len} nodes, expected {}",
                    1usize << level
                )));
            }
        } else if row_len > total_nodes {
            return Err(corrupt(format!("level {level} registry claims {row_len} nodes")));
        }
        let mut row = Vec::with_capacity(row_len);
        for _ in 0..row_len {
            let p = decode_key(take_u64(&mut levels_sec, "registry node key")?)?;
            if p.level() != level {
                return Err(corrupt(format!("node {p} registered at level {level}")));
            }
            row.push(p);
        }
        levels.push(row);
    }
    if levels.iter().map(Vec::len).sum::<usize>() != total_nodes {
        return Err(corrupt("registry rows do not sum to the declared node count"));
    }

    // OVERLAY: sparse counts; every entry must be a registered deep node.
    let (off, len) = section(SECTION_OVERLAY);
    let mut overlay_sec = r.slice("OVERLAY section", off, len)?;
    if len != overlay_count * 16 {
        return Err(corrupt(format!(
            "OVERLAY section is {len} bytes, expected {} for {overlay_count} nodes",
            overlay_count * 16
        )));
    }
    let mut overlay: HashMap<Path, f64> = HashMap::with_capacity(overlay_count);
    for _ in 0..overlay_count {
        let p = decode_key(take_u64(&mut overlay_sec, "overlay node key")?)?;
        if p.level() < dense_levels {
            return Err(corrupt(format!("overlay node {p} lies inside the dense prefix")));
        }
        let c = take_f64(&mut overlay_sec, "overlay count")?;
        if overlay.insert(p, c).is_some() {
            return Err(corrupt(format!("overlay node {p} appears twice")));
        }
    }
    for row in levels.iter().skip(dense_levels) {
        for p in row {
            if !overlay.contains_key(p) {
                return Err(corrupt(format!("registered node {p} has no overlay count")));
            }
        }
    }

    // ARENA: page-aligned raw LE f64 words — the "zero-parse" region; the
    // decode below is a straight bulk copy on little-endian hosts.
    let (off, len) = section(SECTION_ARENA);
    let arena_len = if dense_levels > 0 { 1usize << dense_levels } else { 0 };
    if len != arena_len * 8 {
        return Err(corrupt(format!(
            "ARENA section is {len} bytes, expected {} for {dense_levels} dense levels",
            arena_len * 8
        )));
    }
    if off % ARENA_ALIGN != 0 {
        return Err(corrupt(format!("ARENA offset {off} is not {ARENA_ALIGN}-byte aligned")));
    }
    let arena_bytes = r.slice("ARENA section", off, len)?;
    let dense: Vec<f64> = arena_bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunks")))
        .collect();

    let tree = PartitionTree::from_raw_parts(dense, dense_levels, overlay, levels);
    Ok(ReleaseFile { version: release_version, domain, config, tree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivHpConfig;
    use crate::release::DomainSpec;

    fn sample_release() -> ReleaseFile {
        let mut tree = PartitionTree::complete(4, |p| p.sketch_key() as f64 + 0.125);
        let hot = Path::from_bits(0b0110, 4);
        tree.insert(hot.left(), 1.5);
        tree.insert(hot.right(), 0.5);
        let config = PrivHpConfig::for_domain(1.0, 4096, 8).with_seed(7);
        ReleaseFile::new(DomainSpec::Interval, config, tree)
    }

    #[test]
    fn roundtrip_is_exact() {
        let release = sample_release();
        let bytes = encode(&release);
        let back = decode(&bytes).unwrap();
        assert_eq!(release.to_json(), back.to_json(), "JSON render must be byte-identical");
        assert_eq!(back.tree.dense_levels(), release.tree.dense_levels());
        for (p, c) in release.tree.iter() {
            assert_eq!(back.tree.count(p).map(f64::to_bits), Some(c.to_bits()), "count at {p}");
        }
    }

    #[test]
    fn arena_is_page_aligned() {
        let bytes = encode(&sample_release());
        // The arena section entry is the last table row: kind 5.
        let entry = HEADER + (SECTION_COUNT - 1) * TABLE_ENTRY;
        let kind = u64::from_le_bytes(bytes[entry..entry + 8].try_into().unwrap());
        let off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
        assert_eq!(kind, SECTION_ARENA);
        assert_eq!(off % ARENA_ALIGN, 0);
        assert!(off + 8 <= bytes.len());
    }

    #[test]
    fn detection_and_bad_magic() {
        let bytes = encode(&sample_release());
        assert!(is_binary(&bytes));
        assert!(!is_binary(b"{\"version\":1}"));
        assert_eq!(decode(b"not a phpr file at all").unwrap_err(), BinaryFormatError::BadMagic);
        assert_eq!(decode(b"").unwrap_err(), BinaryFormatError::BadMagic);
    }

    #[test]
    fn version_bumps_rejected() {
        let mut bytes = encode(&sample_release());
        bytes[8] = 99; // container format version
        assert!(matches!(decode(&bytes), Err(BinaryFormatError::UnsupportedFormat { found: 99 })));

        let mut bytes = encode(&sample_release());
        bytes[16] = 99; // release version
        assert!(matches!(decode(&bytes), Err(BinaryFormatError::UnsupportedRelease { found: 99 })));
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = encode(&sample_release());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated file must not decode");
            // Any structured variant is fine; the point is no panic and
            // no bogus Ok.
            let _ = err.to_string();
        }
    }

    #[test]
    fn corrupt_node_keys_rejected() {
        let release = sample_release();
        let bytes = encode(&release);
        // Zero out the first registry key (the root, key 1) in LEVELS:
        // locate the section via the table.
        let entry = HEADER + (SECTION_LEVELS as usize - 1) * TABLE_ENTRY;
        let off = u64::from_le_bytes(bytes[entry + 8..entry + 16].try_into().unwrap()) as usize;
        let mut bad = bytes.clone();
        // First row: len u64 (=1), then the root key u64.
        bad[off + 8..off + 16].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(decode(&bad), Err(BinaryFormatError::Corrupt(_))));
    }
}
