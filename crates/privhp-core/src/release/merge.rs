//! Merging *finished* releases: tree union with sketch-free
//! recombination, ε accounted by parallel composition.
//!
//! [`crate::PrivHpBuilder`] shards merge *before* noise (PR 4's
//! `new_shard`/`merge` pipeline, exactly-once noise at finalise). This
//! module is the complement for artifacts that are already noised and on
//! disk: each input release is ε-DP over its own disjoint data partition,
//! so by **parallel composition** the combined release is
//! `max(ε_1, …, ε_m)`-DP — no fresh noise, no sketches, pure
//! post-processing.
//!
//! The recombination is a *uniform extension* sum over the union node
//! set. Each release's sampler distributes a leaf's mass uniformly over
//! the leaf's subdomain, so when release `r` lacks a node `θ` that some
//! other input refined, the mass `r` implies at `θ` is its deepest
//! present ancestor's count halved once per level of refinement:
//!
//! ```text
//! ext_r(θ) = r(θ)                        if θ ∈ r
//!          = r(anc) · 2^(level(anc) − level(θ))   otherwise
//! ```
//!
//! (`anc` = deepest ancestor of `θ` present in `r`; by sibling-closure it
//! is one of `r`'s leaves). Halving scales the f64 exponent only, so
//! `merged(θ) = Σ_r ext_r(θ)` — accumulated in argument order — is
//! bit-deterministic, and when all inputs share one node set it reduces
//! exactly to the nodewise sum [`PartitionTree::merge`] computes. The
//! merged sampling distribution is therefore the *mixture* of the input
//! distributions weighted by their total masses.
//!
//! The union of sibling-closed node sets is sibling-closed, so the merged
//! tree is a valid partition tree; its registry is rebuilt in canonical
//! level-major, bits-sorted order.

use std::collections::HashMap;

use crate::release::{ReleaseFile, RELEASE_VERSION};
use crate::tree::PartitionTree;
use privhp_domain::Path;

/// The count release `r` implies at `path`: the stored count if present,
/// else the deepest present ancestor's count split uniformly down to
/// `path`'s level. `None` if no ancestor is present (empty tree).
fn extended_count(tree: &PartitionTree, path: &Path) -> Option<f64> {
    let mut anc = *path;
    loop {
        if let Some(c) = tree.count(&anc) {
            // Exact in f64: dividing by a power of two rescales the
            // exponent without touching the significand.
            let halvings = path.level() - anc.level();
            return Some(c / (1u64 << halvings) as f64);
        }
        anc = anc.parent()?;
    }
}

/// Merges finished releases into one: union of the trees via uniform
/// extension, ε by parallel composition (`max` over inputs — each input
/// covers a disjoint data partition).
///
/// Requirements, checked in order:
/// * at least one input, every input non-empty with a root count;
/// * equal domains;
/// * compatible configs — every field equal except `epsilon` and `seed`
///   (`k`, `L★`, `L`, sketch dimensions/kind, budget split). The merged
///   config takes `max(ε_i)` and the first input's seed.
///
/// Deterministic: counts accumulate in argument order and the merged
/// registry is canonical (level-major, bits-sorted), so equal inputs in
/// equal order produce byte-equal output.
pub fn merge_releases(releases: &[ReleaseFile]) -> Result<ReleaseFile, String> {
    let first = releases.first().ok_or("merge-releases: no input releases")?;
    for (i, r) in releases.iter().enumerate() {
        if r.version != RELEASE_VERSION {
            return Err(format!("merge-releases: input {i} has unsupported version {}", r.version));
        }
        if r.tree.root_count().is_none() {
            return Err(format!("merge-releases: input {i} has no root count (empty release)"));
        }
        if r.domain != first.domain {
            return Err(format!(
                "merge-releases: input {i} domain '{}' differs from '{}'",
                r.domain.describe(),
                first.domain.describe()
            ));
        }
        let (a, b) = (&r.config, &first.config);
        let incompatible: &[(&str, bool)] = &[
            ("k", a.k != b.k),
            ("l_star", a.l_star != b.l_star),
            ("depth", a.depth != b.depth),
            ("sketch", a.sketch != b.sketch),
            ("sketch_kind", a.sketch_kind != b.sketch_kind),
            ("split", a.split != b.split),
        ];
        if let Some((field, _)) = incompatible.iter().find(|(_, differs)| *differs) {
            return Err(format!(
                "merge-releases: input {i} config field '{field}' differs from input 0 \
                 (only epsilon and seed may vary)"
            ));
        }
    }

    // Union node set, canonical order: level-major, bits-sorted.
    let depth = releases.iter().map(|r| r.tree.depth()).max().unwrap_or(0);
    let mut levels: Vec<Vec<Path>> = Vec::with_capacity(depth + 1);
    for level in 0..=depth {
        let mut row: Vec<Path> = Vec::new();
        for r in releases {
            row.extend_from_slice(r.tree.level_nodes(level));
        }
        row.sort_unstable_by_key(Path::bits);
        row.dedup();
        levels.push(row);
    }

    // Uniform-extension sum, accumulated in argument order.
    let mut counts: HashMap<Path, f64> = HashMap::with_capacity(levels.iter().map(Vec::len).sum());
    for row in &levels {
        for p in row {
            let mut total = 0.0f64;
            for r in releases {
                total += extended_count(&r.tree, p)
                    .expect("every input has a root, so every path has a present ancestor");
            }
            counts.insert(*p, total);
        }
    }

    let mut config = first.config.clone();
    config.epsilon = releases.iter().map(|r| r.config.epsilon).fold(f64::NEG_INFINITY, f64::max);
    let tree = PartitionTree::from_parts(counts, levels);
    Ok(ReleaseFile::new(first.domain, config, tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrivHpConfig;
    use crate::release::DomainSpec;

    fn release_with(config: PrivHpConfig, build: impl FnOnce(&mut PartitionTree)) -> ReleaseFile {
        let mut tree = PartitionTree::new();
        build(&mut tree);
        ReleaseFile::new(DomainSpec::Interval, config, tree)
    }

    fn config(epsilon: f64, seed: u64) -> PrivHpConfig {
        // Derive levels from a fixed (ε, n) so only epsilon varies across
        // test inputs (`for_domain` would otherwise derive a different
        // depth from a different ε).
        let mut c = PrivHpConfig::for_domain(1.0, 64, 4).with_seed(seed);
        c.epsilon = epsilon;
        c
    }

    #[test]
    fn identical_shapes_reduce_to_nodewise_sum() {
        let shape = |tree: &mut PartitionTree, scale: f64| {
            tree.insert(Path::root(), 8.0 * scale);
            tree.insert(Path::root().left(), 5.0 * scale);
            tree.insert(Path::root().right(), 3.0 * scale);
        };
        let a = release_with(config(1.0, 1), |t| shape(t, 1.0));
        let b = release_with(config(0.5, 2), |t| shape(t, 2.0));
        let merged = merge_releases(&[a.clone(), b.clone()]).unwrap();

        // Reference: the tree-level nodewise merge.
        let mut reference = a.tree.clone();
        reference.merge(&b.tree);
        for (p, c) in reference.iter() {
            assert_eq!(merged.tree.count(p).map(f64::to_bits), Some(c.to_bits()), "count at {p}");
        }
        assert_eq!(merged.tree.len(), reference.len());
        assert_eq!(merged.config.epsilon, 1.0, "epsilon = max by parallel composition");
        assert_eq!(merged.config.seed, 1, "seed taken from the first input");
    }

    #[test]
    fn asymmetric_frontiers_extend_uniformly() {
        // a refines the left half one level deeper than b.
        let a = release_with(config(1.0, 1), |t| {
            t.insert(Path::root(), 8.0);
            t.insert(Path::root().left(), 6.0);
            t.insert(Path::root().right(), 2.0);
            t.insert(Path::root().left().left(), 4.0);
            t.insert(Path::root().left().right(), 2.0);
        });
        let b = release_with(config(2.0, 9), |t| {
            t.insert(Path::root(), 4.0);
            t.insert(Path::root().left(), 3.0);
            t.insert(Path::root().right(), 1.0);
        });
        let merged = merge_releases(&[a, b]).unwrap();

        // b's leaf count 3.0 at `0` splits as 1.5 + 1.5 under a's refinement.
        assert_eq!(merged.tree.count(&Path::root()), Some(12.0));
        assert_eq!(merged.tree.count(&Path::root().left()), Some(9.0));
        assert_eq!(merged.tree.count(&Path::root().left().left()), Some(4.0 + 1.5));
        assert_eq!(merged.tree.count(&Path::root().left().right()), Some(2.0 + 1.5));
        assert_eq!(merged.tree.count(&Path::root().right()), Some(3.0));
        assert_eq!(merged.config.epsilon, 2.0);
        // Mass conservation: children sum to parents everywhere.
        for level in 0..merged.tree.depth() {
            for p in merged.tree.level_nodes(level) {
                if let Some((l, r)) = merged.tree.children_counts(p) {
                    assert_eq!(l + r, merged.tree.count(p).unwrap(), "consistency at {p}");
                }
            }
        }
    }

    #[test]
    fn mismatches_rejected() {
        let a = release_with(config(1.0, 1), |t| t.insert(Path::root(), 1.0));
        assert!(merge_releases(&[]).unwrap_err().contains("no input"));

        let empty = release_with(config(1.0, 1), |_| {});
        assert!(merge_releases(&[a.clone(), empty]).unwrap_err().contains("no root"));

        let mut other_domain = a.clone();
        other_domain.domain = DomainSpec::Ipv4;
        assert!(merge_releases(&[a.clone(), other_domain]).unwrap_err().contains("domain"));

        let mut other_k = a.clone();
        other_k.config.k = 8;
        assert!(merge_releases(&[a.clone(), other_k]).unwrap_err().contains("'k'"));

        // epsilon and seed differences are allowed.
        let b = release_with(config(0.25, 77), |t| t.insert(Path::root(), 2.0));
        assert!(merge_releases(&[a, b]).is_ok());
    }

    #[test]
    fn merge_is_deterministic() {
        let a = release_with(config(1.0, 1), |t| {
            t.insert(Path::root(), 8.0);
            t.insert(Path::root().left(), 5.0);
            t.insert(Path::root().right(), 3.0);
        });
        let b = release_with(config(0.5, 2), |t| {
            t.insert(Path::root(), 2.0);
            t.insert(Path::root().left(), 1.5);
            t.insert(Path::root().right(), 0.5);
        });
        let m1 = merge_releases(&[a.clone(), b.clone()]).unwrap();
        let m2 = merge_releases(&[a, b]).unwrap();
        assert_eq!(m1.to_json(), m2.to_json());
        assert_eq!(m1.to_binary(), m2.to_binary());
    }
}
