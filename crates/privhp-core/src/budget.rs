//! Optimal allocation of the privacy budget across levels — paper Lemma 5.
//!
//! Minimising the Theorem-3 noise term subject to `Σ σ_l = ε` (Lagrange
//! multipliers, Eq. 19) gives
//!
//! * `σ_l ∝ √Γ_{l−1}`            for `l ≤ L★` (exact-counter levels),
//! * `σ_l ∝ √(j·k·γ_{l−1})`      for `l > L★` (sketched levels),
//!
//! where `Γ_{−1} := Γ_0 = diam(Ω)`. The resulting Δ_noise is
//! `(Σ √·)² / (εn)` — the bound [`crate::bounds`] evaluates.

use privhp_domain::HierarchicalDomain;
use privhp_dp::budget::{BudgetError, BudgetSplit};

use crate::config::PrivHpConfig;

/// Computes the Lemma-5 weights (`√Γ_{l−1}` below `L★`, `√(j·k·γ_{l−1})`
/// above) for levels `0..=L`.
pub fn optimal_budget_weights<D: HierarchicalDomain>(
    domain: &D,
    config: &PrivHpConfig,
) -> Vec<f64> {
    let gamma_prev = |l: usize| {
        // γ_{l-1} and Γ_{l-1} with the paper's convention Γ_{-1} = Γ_0.
        if l == 0 {
            (domain.level_diameter(0), domain.level_diameter_sum(0))
        } else {
            (domain.level_diameter(l - 1), domain.level_diameter_sum(l - 1))
        }
    };
    let j = config.sketch.depth as f64;
    let k = config.k as f64;
    let mut weights: Vec<f64> = (0..=config.depth)
        .map(|l| {
            let (gamma, gamma_sum) = gamma_prev(l);
            if l <= config.l_star {
                gamma_sum.sqrt()
            } else {
                (j * k * gamma).sqrt()
            }
        })
        .collect();
    // Discrete domains (e.g. `Categorical`) have zero-diameter levels below
    // their resolution: utility-optimal σ_l → 0 there, but the mechanism
    // still needs finite noise scales. Floor the weights at a small
    // fraction of the largest so every level keeps a positive (negligible)
    // share of ε.
    let max_w = weights.iter().cloned().fold(0.0, f64::max);
    assert!(max_w > 0.0, "domain reports zero diameter everywhere");
    for w in &mut weights {
        *w = w.max(max_w * 1e-3);
    }
    weights
}

/// The Lemma-5 optimal split of `config.epsilon` across levels `0..=L` for
/// the given domain.
pub fn optimal_budget_split<D: HierarchicalDomain>(
    domain: &D,
    config: &PrivHpConfig,
) -> Result<BudgetSplit, BudgetError> {
    BudgetSplit::from_weights(config.epsilon, &optimal_budget_weights(domain, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, UnitInterval};

    fn config(epsilon: f64, k: usize, l_star: usize, depth: usize) -> PrivHpConfig {
        PrivHpConfig::for_domain(epsilon, 1 << 12, k).with_levels(l_star, depth)
    }

    #[test]
    fn split_sums_to_epsilon() {
        let c = config(1.5, 4, 3, 10);
        let s = optimal_budget_split(&UnitInterval::new(), &c).unwrap();
        assert_eq!(s.levels(), 11);
        assert!((s.epsilon() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interval_weights_flat_then_decaying() {
        // In 1-D, Γ_l = 1 for all l so shallow weights are constant; deep
        // weights decay like sqrt(γ_{l-1}) = 2^{-(l-1)/2}.
        let c = config(1.0, 4, 3, 10);
        let w = optimal_budget_weights(&UnitInterval::new(), &c);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[3] - 1.0).abs() < 1e-12);
        for l in (c.l_star + 2)..=c.depth {
            let ratio = w[l] / w[l - 1];
            assert!(
                (ratio - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9,
                "deep weights must decay by sqrt(1/2) per level, got {ratio}"
            );
        }
    }

    #[test]
    fn hypercube_shallow_weights_grow() {
        // For d ≥ 2, Γ_l = 2^{(1-1/d)l} grows, so deeper shallow levels get
        // more budget (they carry more total diameter).
        let c = config(1.0, 4, 5, 12);
        let w = optimal_budget_weights(&Hypercube::new(2), &c);
        for l in 1..=c.l_star {
            assert!(w[l] >= w[l - 1] - 1e-12, "Γ is non-decreasing in 2-D");
        }
    }

    #[test]
    fn deep_weights_scale_with_sqrt_jk() {
        let base = config(1.0, 4, 3, 10);
        let big_k = config(1.0, 16, 3, 10);
        let w1 = optimal_budget_weights(&UnitInterval::new(), &base);
        let w2 = optimal_budget_weights(&UnitInterval::new(), &big_k);
        // Same sketch depth j (same n), k quadrupled → deep weights double.
        let ratio = w2[5] / w1[5];
        assert!((ratio - 2.0).abs() < 1e-9, "sqrt(k) scaling violated: {ratio}");
    }
}
