//! Closed-form evaluators for the paper's utility bounds.
//!
//! These let the experiment harness print *paper-predicted* curves next to
//! measured ones:
//!
//! * [`theorem3_bounds`] — the general-domain bound
//!   `E[W1] = Δ_noise + Δ_approx` of Theorem 3 (up to its absolute
//!   constant), with `Δ_noise` evaluated for the actual budget split and
//!   `Δ_approx` from the measured tail norm;
//! * [`corollary1_bound`] — the hypercube specialisation of Corollary 1
//!   expressed in the memory allocation `M`.

use privhp_domain::HierarchicalDomain;
use privhp_dp::budget::BudgetSplit;
use serde::{Deserialize, Serialize};

use crate::config::PrivHpConfig;

/// The two error components of Theorem 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoreticalBounds {
    /// `Δ_noise`: utility lost to privacy perturbations (counts + pruning).
    pub delta_noise: f64,
    /// `Δ_approx`: utility lost to pruning and sketch approximation.
    pub delta_approx: f64,
}

impl TheoreticalBounds {
    /// `Δ_noise + Δ_approx`.
    pub fn total(&self) -> f64 {
        self.delta_noise + self.delta_approx
    }
}

/// Evaluates Theorem 3 for a concrete domain, configuration, budget split,
/// stream length `n` and measured tail norm `‖tail_k^L(X)‖₁`.
///
/// `Δ_noise = (1/n)·(Σ_{l≤L★} Γ_{l−1}/σ_l + Σ_{l>L★} k·j·γ_{l−1}/σ_l)`;
/// `Δ_approx = (‖tail‖₁/n + 2^{−j})·Σ_{l>L★} γ_{l−1}`
/// (with the paper's convention `Γ_{−1} = Γ_0`, `γ_{−1} = γ_0`).
pub fn theorem3_bounds<D: HierarchicalDomain>(
    domain: &D,
    config: &PrivHpConfig,
    split: &BudgetSplit,
    n: usize,
    tail_norm: f64,
) -> TheoreticalBounds {
    assert!(n > 0, "stream length must be positive");
    assert_eq!(split.levels(), config.levels(), "split/levels mismatch");
    let nf = n as f64;
    let j = config.sketch.depth as f64;
    let k = config.k as f64;

    let gamma_prev = |l: usize| domain.level_diameter(l.saturating_sub(1));
    let gamma_sum_prev = |l: usize| domain.level_diameter_sum(l.saturating_sub(1));

    let mut noise = 0.0;
    for l in 0..=config.depth {
        let sigma = split.sigma(l);
        if l <= config.l_star {
            noise += gamma_sum_prev(l) / sigma;
        } else {
            noise += k * j * gamma_prev(l) / sigma;
        }
    }
    let delta_noise = noise / nf;

    let gamma_tail_sum: f64 = ((config.l_star + 1)..=config.depth).map(gamma_prev).sum();
    let delta_approx = (tail_norm / nf + 2f64.powf(-j)) * gamma_tail_sum;

    TheoreticalBounds { delta_noise, delta_approx }
}

/// Corollary 1's bound in terms of the memory allocation `M`:
///
/// * `d = 1`: `log²(M)/(εn) + ‖tail‖/(M·n)`;
/// * `d ≥ 2`: `M^{1−1/d}/(εn) + ‖tail‖/(M^{1/d}·n)`.
pub fn corollary1_bound(
    d: usize,
    memory_words: f64,
    epsilon: f64,
    n: usize,
    tail_norm: f64,
) -> f64 {
    assert!(d >= 1, "dimension must be at least 1");
    assert!(memory_words > 1.0 && epsilon > 0.0 && n > 0);
    let nf = n as f64;
    if d == 1 {
        let lg = memory_words.log2();
        lg * lg / (epsilon * nf) + tail_norm / (memory_words * nf)
    } else {
        let df = d as f64;
        memory_words.powf(1.0 - 1.0 / df) / (epsilon * nf)
            + tail_norm / (memory_words.powf(1.0 / df) * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::optimal_budget_split;
    use privhp_domain::{Hypercube, UnitInterval};

    #[test]
    fn bounds_positive_and_finite() {
        let c = PrivHpConfig::for_domain(1.0, 1 << 12, 8);
        let d = UnitInterval::new();
        let s = optimal_budget_split(&d, &c).unwrap();
        let b = theorem3_bounds(&d, &c, &s, 1 << 12, 100.0);
        assert!(b.delta_noise.is_finite() && b.delta_noise > 0.0);
        assert!(b.delta_approx.is_finite() && b.delta_approx > 0.0);
        assert!(b.total() > b.delta_noise);
    }

    #[test]
    fn noise_term_scales_inversely_with_epsilon() {
        let d = UnitInterval::new();
        let n = 1 << 12;
        let eval = |eps: f64| {
            let c = PrivHpConfig::for_domain(eps, n, 8);
            let s = optimal_budget_split(&d, &c).unwrap();
            theorem3_bounds(&d, &c, &s, n, 0.0).delta_noise
        };
        // Same depth L for both ε (depth changes with ε, so pin it):
        let c1 = PrivHpConfig::for_domain(1.0, n, 8);
        let c2 = PrivHpConfig { epsilon: 2.0, ..c1.clone() };
        let s1 = optimal_budget_split(&d, &c1).unwrap();
        let s2 = optimal_budget_split(&d, &c2).unwrap();
        let b1 = theorem3_bounds(&d, &c1, &s1, n, 0.0).delta_noise;
        let b2 = theorem3_bounds(&d, &c2, &s2, n, 0.0).delta_noise;
        assert!((b1 / b2 - 2.0).abs() < 1e-6, "Δ_noise must halve when ε doubles");
        let _ = eval; // structural helper retained for readability
    }

    #[test]
    fn approx_term_linear_in_tail() {
        let c = PrivHpConfig::for_domain(1.0, 1 << 12, 8);
        let d = UnitInterval::new();
        let s = optimal_budget_split(&d, &c).unwrap();
        let b0 = theorem3_bounds(&d, &c, &s, 1 << 12, 0.0).delta_approx;
        let b1 = theorem3_bounds(&d, &c, &s, 1 << 12, 1_000.0).delta_approx;
        let b2 = theorem3_bounds(&d, &c, &s, 1 << 12, 2_000.0).delta_approx;
        assert!(
            ((b2 - b0) - 2.0 * (b1 - b0)).abs() < 1e-9,
            "Δ_approx must be affine in the tail norm"
        );
    }

    #[test]
    fn corollary1_shapes() {
        let n = 1 << 16;
        // d=1: more memory only helps the tail term.
        let small = corollary1_bound(1, 256.0, 1.0, n, 1_000.0);
        let large = corollary1_bound(1, 4_096.0, 1.0, n, 1_000.0);
        assert!(large.is_finite() && small.is_finite());
        // d=2: the noise term *grows* with memory (sqrt(M)/εn), the tail
        // term shrinks — the paper's central trade-off.
        let noise_only_small = corollary1_bound(2, 256.0, 1.0, n, 0.0);
        let noise_only_large = corollary1_bound(2, 4_096.0, 1.0, n, 0.0);
        assert!(noise_only_large > noise_only_small);
        let tail_heavy_small = corollary1_bound(2, 256.0, 1.0, n, 1.0e6);
        let tail_heavy_large = corollary1_bound(2, 4_096.0, 1.0, n, 1.0e6);
        assert!(tail_heavy_large < tail_heavy_small);
    }

    #[test]
    fn hypercube_noise_grows_with_dimension() {
        let n = 1 << 12;
        let mut prev = 0.0;
        for d in 1..=3usize {
            let cube = Hypercube::new(d);
            let c = PrivHpConfig::for_domain(1.0, n, 8);
            let s = optimal_budget_split(&cube, &c).unwrap();
            let b = theorem3_bounds(&cube, &c, &s, n, 0.0).delta_noise;
            assert!(b > prev, "Δ_noise should grow with d (got {b} after {prev})");
            prev = b;
        }
    }
}
