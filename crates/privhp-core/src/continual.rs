//! Continual-observation PrivHP — the paper's §3.1 adaptation remark made
//! concrete: "our method can be adapted to continual observation by
//! replacing the counters and sketches with their continual observation
//! counterparts."
//!
//! [`ContinualPrivHp`] replaces every exact counter at levels `≤ L★` with a
//! binary-mechanism [`ContinualCounter`] and every deep-level sketch with a
//! [`ContinualCountMinSketch`]. Because each primitive's *entire state
//! sequence* is `σ_l`-DP, the joint sequence across levels is ε-DP by basic
//! composition (`Σ σ_l = ε`, as in Theorem 2), and [`ContinualPrivHp::release`]
//! — which snapshots the current private counts and runs GrowPartition — is
//! post-processing. The stream can therefore be *released at any number of
//! checkpoints* without additional privacy cost, which the 1-pass structure
//! cannot do (re-releasing its intermediate states would correlate the
//! shared noise across releases).
//!
//! The price is the continual model's extra `log T` noise factor per level
//! and `O(log T)` memory per counter — both inherited from the binary
//! mechanism and matching the paper's framing of the trade-off.

use privhp_domain::{HierarchicalDomain, Path};
use privhp_dp::budget::BudgetSplit;
use privhp_dp::continual::ContinualCounter;
use privhp_sketch::ContinualCountMinSketch;
use rand::RngCore;
use std::collections::HashMap;

use crate::budget::optimal_budget_split;
use crate::config::{ConfigError, PrivHpConfig};
use crate::grow::{grow_partition, FrequencyOracle};
use crate::privhp::PrivHpGenerator;
use crate::tree::PartitionTree;

/// One deep level of a sharded continual deployment, viewed as a single
/// frequency oracle: the level's estimate is the **sum of the per-shard
/// estimates** (each shard's Count-Min min-over-rows never underestimates
/// its own shard, so the sum keeps the one-sided Count-Min semantics over
/// the union).
struct ShardedLevelOracle<'a> {
    parts: Vec<&'a ContinualCountMinSketch>,
}

impl FrequencyOracle for ShardedLevelOracle<'_> {
    fn estimate(&self, key: u64) -> f64 {
        self.parts.iter().map(|s| s.query(key)).sum()
    }
}

/// Streaming state of the continual-observation PrivHP.
#[derive(Debug)]
pub struct ContinualPrivHp<D: HierarchicalDomain> {
    domain: D,
    config: PrivHpConfig,
    split: BudgetSplit,
    counters: HashMap<Path, ContinualCounter>,
    sketches: Vec<ContinualCountMinSketch>,
    horizon_levels: usize,
    items_seen: usize,
}

impl<D: HierarchicalDomain + Clone> ContinualPrivHp<D> {
    /// Initialises the continual structures for a stream horizon of
    /// `2^horizon_levels` items.
    pub fn new(
        domain: D,
        config: PrivHpConfig,
        horizon_levels: usize,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.depth > domain.max_level() {
            return Err(ConfigError::DepthExceedsDomain {
                depth: config.depth,
                max_level: domain.max_level(),
            });
        }
        let split = match &config.split {
            Some(s) => s.clone(),
            None => optimal_budget_split(&domain, &config)
                .map_err(|_| ConfigError::InvalidEpsilon(config.epsilon))?,
        };

        // One continual counter per node of the complete shallow tree; the
        // level's budget σ_l covers all its nodes because one item touches
        // exactly one node per level (same argument as Theorem 2).
        let mut counters = HashMap::new();
        for level in 0..=config.l_star {
            for bits in 0..(1u64 << level) {
                counters.insert(
                    Path::from_bits(bits, level),
                    ContinualCounter::new(horizon_levels, split.sigma(level)),
                );
            }
        }
        let mut seed_seq = privhp_dp::rng::SeedSequence::new(config.seed ^ 0xC0_17);
        let sketches = ((config.l_star + 1)..=config.depth)
            .map(|l| {
                ContinualCountMinSketch::new(
                    config.sketch,
                    split.sigma(l),
                    horizon_levels,
                    seed_seq.next_seed(),
                )
            })
            .collect();

        Ok(Self { domain, config, split, counters, sketches, horizon_levels, items_seen: 0 })
    }

    /// Ingests one stream item (the continual analogue of Algorithm 1
    /// lines 9–15).
    ///
    /// # Panics
    /// Panics past the horizon.
    pub fn ingest<R: RngCore>(&mut self, point: &D::Point, rng: &mut R) {
        assert!(self.items_seen < (1usize << self.horizon_levels), "stream horizon exhausted");
        let deep = self.domain.locate(point, self.config.depth);
        for l in 0..=self.config.l_star {
            let theta = deep.ancestor(l);
            self.counters.get_mut(&theta).expect("complete shallow tree").update(1.0, rng);
        }
        for l in (self.config.l_star + 1)..=self.config.depth {
            let theta = deep.ancestor(l);
            self.sketches[l - self.config.l_star - 1].update(theta.sketch_key(), 1.0, rng);
        }
        self.items_seen += 1;
    }

    /// Items ingested so far.
    pub fn items_seen(&self) -> usize {
        self.items_seen
    }

    /// Releases a generator reflecting the stream *so far*. May be called
    /// any number of times; every release is post-processing of the same
    /// ε-DP state sequence.
    pub fn release(&self) -> PrivHpGenerator<D> {
        // Snapshot the complete shallow tree densely (and in canonical
        // node order, so releases are deterministic given the counters).
        let tree = PartitionTree::complete(self.config.l_star, |p| self.counters[p].query());
        let tree = grow_partition(
            tree,
            &self.sketches,
            self.config.l_star,
            self.config.depth,
            self.config.k,
        );
        PrivHpGenerator::from_parts(
            self.domain.clone(),
            self.config.clone(),
            self.split.clone(),
            tree,
            self.items_seen,
        )
    }

    /// Memory footprint in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.counters.values().map(|c| c.memory_words()).sum::<usize>()
            + self.sketches.iter().map(|s| s.memory_words()).sum::<usize>()
    }

    /// Snapshot of this instance's current private counter tree (complete
    /// levels `0..=L★`, canonical node order).
    fn snapshot_tree(&self) -> PartitionTree {
        PartitionTree::complete(self.config.l_star, |p| self.counters[p].query())
    }

    /// The **distributed-ingestion** release: each shard runs its own
    /// `ContinualPrivHp` over a *disjoint* slice of the stream, and a
    /// release over the union merges the shards' snapshot trees
    /// ([`PartitionTree::merge`] — one dense-prefix elementwise pass, the
    /// same merge the 1-pass builder shards use) and sums their deep-level
    /// sketch estimates.
    ///
    /// Privacy: each shard's state sequence is ε-DP on its own shard, the
    /// shards hold disjoint data, so the joint release is ε-DP by parallel
    /// composition — checkpoints remain free, exactly as for a single
    /// instance. The price is K-fold noise variance in every merged count,
    /// the expected cost of merging independently-noised structures.
    ///
    /// # Panics
    /// Panics if `shards` is empty or the shards were configured
    /// differently (different shapes cannot merge).
    pub fn release_merged(shards: &[&ContinualPrivHp<D>]) -> PrivHpGenerator<D> {
        let first = shards.first().expect("release_merged needs at least one shard");
        let mut tree = first.snapshot_tree();
        for s in &shards[1..] {
            assert_eq!(s.config, first.config, "shard configs must match to merge releases");
            tree.merge(&s.snapshot_tree());
        }
        let oracles: Vec<ShardedLevelOracle<'_>> = (0..first.sketches.len())
            .map(|i| ShardedLevelOracle { parts: shards.iter().map(|s| &s.sketches[i]).collect() })
            .collect();
        let tree =
            grow_partition(tree, &oracles, first.config.l_star, first.config.depth, first.config.k);
        PrivHpGenerator::from_parts(
            first.domain.clone(),
            first.config.clone(),
            first.split.clone(),
            tree,
            shards.iter().map(|s| s.items_seen).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    fn skewed(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 * 0.618_033_988) % 1.0).powi(3)).collect()
    }

    #[test]
    fn checkpointed_releases_improve_over_time() {
        let data = skewed(4_096);
        let config = PrivHpConfig::for_domain(4.0, data.len(), 8).with_seed(1);
        let mut c = ContinualPrivHp::new(UnitInterval::new(), config, 13).unwrap();
        let mut rng = rng_from_seed(2);

        // Early release: little data, noisy.
        for x in &data[..256] {
            c.ingest(x, &mut rng);
        }
        let early = c.release();
        assert_eq!(early.items_seen(), 256);

        // Late release: the full stream.
        for x in &data[256..] {
            c.ingest(x, &mut rng);
        }
        let late = c.release();
        assert_eq!(late.items_seen(), 4_096);

        // The late release should capture the skew (most mass < 0.25).
        let s = late.sample_many(4_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.25).count() as f64 / 4_000.0;
        let true_low = data.iter().filter(|&&x| x < 0.25).count() as f64 / data.len() as f64;
        assert!(
            (low - true_low).abs() < 0.2,
            "late release mass below 0.25: {low} vs true {true_low}"
        );
    }

    #[test]
    fn released_tree_is_consistent() {
        let data = skewed(1_024);
        let config = PrivHpConfig::for_domain(2.0, data.len(), 4).with_seed(3);
        let mut c = ContinualPrivHp::new(UnitInterval::new(), config, 11).unwrap();
        let mut rng = rng_from_seed(4);
        for x in &data {
            c.ingest(x, &mut rng);
        }
        let g = c.release();
        assert!(
            crate::consistency::find_consistency_violation(g.tree(), &Path::root(), 1e-6).is_none()
        );
    }

    #[test]
    fn memory_polylog_in_horizon() {
        let config = PrivHpConfig::for_domain(1.0, 1 << 12, 8).with_seed(5);
        let small =
            ContinualPrivHp::new(UnitInterval::new(), config.clone(), 10).unwrap().memory_words();
        let large = ContinualPrivHp::new(UnitInterval::new(), config, 20).unwrap().memory_words();
        // Horizon grew 1024x; memory should grow ~2x (log factor).
        assert!(
            large < small * 4,
            "continual memory must be polylog in the horizon: {small} -> {large}"
        );
    }

    #[test]
    fn distributed_shards_release_the_union() {
        // Two continual instances over disjoint halves of a skewed stream:
        // the merged release must see the whole stream's mass and skew.
        let data = skewed(4_096);
        let config = PrivHpConfig::for_domain(8.0, data.len(), 8).with_seed(11);
        let mut a = ContinualPrivHp::new(UnitInterval::new(), config.clone(), 12).unwrap();
        let mut b = ContinualPrivHp::new(UnitInterval::new(), config, 12).unwrap();
        let mut rng = rng_from_seed(12);
        let (left, right) = data.split_at(data.len() / 2);
        for x in left {
            a.ingest(x, &mut rng);
        }
        for x in right {
            b.ingest(x, &mut rng);
        }
        let merged = ContinualPrivHp::release_merged(&[&a, &b]);
        assert_eq!(merged.items_seen(), data.len());
        assert!(crate::consistency::find_consistency_violation(merged.tree(), &Path::root(), 1e-6)
            .is_none());
        let s = merged.sample_many(4_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.25).count() as f64 / 4_000.0;
        let true_low = data.iter().filter(|&&x| x < 0.25).count() as f64 / data.len() as f64;
        assert!((low - true_low).abs() < 0.25, "merged release mass {low} vs true {true_low}");
    }

    #[test]
    fn single_shard_release_merged_matches_release_shape() {
        let data = skewed(512);
        let config = PrivHpConfig::for_domain(4.0, data.len(), 4).with_seed(21);
        let mut c = ContinualPrivHp::new(UnitInterval::new(), config, 10).unwrap();
        let mut rng = rng_from_seed(22);
        for x in &data {
            c.ingest(x, &mut rng);
        }
        let solo = c.release();
        let merged = ContinualPrivHp::release_merged(&[&c]);
        // K = 1: snapshot + summed-oracle reduce to the plain release.
        assert_eq!(solo.items_seen(), merged.items_seen());
        assert_eq!(solo.tree().len(), merged.tree().len());
        for (p, cnt) in solo.tree().iter() {
            assert_eq!(
                cnt.to_bits(),
                merged.tree().count_unchecked(p).to_bits(),
                "single-shard merged release diverged at {p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "shard configs must match")]
    fn mismatched_shard_configs_rejected() {
        let c1 = PrivHpConfig::for_domain(2.0, 512, 4).with_seed(1);
        let c2 = PrivHpConfig::for_domain(2.0, 512, 8).with_seed(1);
        let a = ContinualPrivHp::new(UnitInterval::new(), c1, 10).unwrap();
        let b = ContinualPrivHp::new(UnitInterval::new(), c2, 10).unwrap();
        let _ = ContinualPrivHp::release_merged(&[&a, &b]);
    }

    #[test]
    fn multiple_releases_allowed() {
        let config = PrivHpConfig::for_domain(2.0, 512, 4).with_seed(6);
        let mut c = ContinualPrivHp::new(UnitInterval::new(), config, 10).unwrap();
        let mut rng = rng_from_seed(7);
        for i in 0..512 {
            c.ingest(&(((i * 37) % 512) as f64 / 512.0), &mut rng);
            if i % 128 == 127 {
                let g = c.release();
                let _ = g.sample_many(10, &mut rng);
            }
        }
    }
}
