//! Synthetic-data sampling from a decomposition tree — paper §5.
//!
//! A sample is drawn by (1) choosing `u` uniformly in `[0, v_∅.count)`,
//! (2) walking root-to-leaf: at each internal node compare `u` against the
//! left child's count `c`; branch left if `c ≥ u`, otherwise subtract `c`
//! from `u` and branch right, and (3) drawing a uniform point from the leaf
//! subdomain. After consistency the children of every internal node sum
//! exactly to their parent, so the walk selects each leaf with probability
//! proportional to its count.
//!
//! (The paper's prose says "u ← u − v_θ.count" on a right branch; the
//! quantity that preserves the invariant `u ∈ [0, subtree mass)` is the
//! *left child's* count, which is what "branch left if c ≥ u" implies — we
//! implement that and property-test leaf proportionality.)
//!
//! Bulk draws do not repeat the walk: the leaf CDF is built once (and
//! cached per sampler), then draws are processed in chunks — one RNG pass
//! fills a chunk of uniforms, a branchless binary search resolves the
//! chunk of leaf indices, and one jitter pass turns cells into points
//! through the domain's flat batch hook.

use std::sync::{Arc, OnceLock};

use privhp_domain::{HierarchicalDomain, Path};
use rand::Rng;
use rand::RngCore;

use crate::tree::PartitionTree;

/// Draws per chunk in the bulk sampling loop: big enough to amortise the
/// loop overheads, small enough that the uniform/index/path scratch stays
/// resident in L1/L2.
const SAMPLE_CHUNK: usize = 4096;

/// The leaf list and cumulative walk probabilities of a partition tree, in
/// a deterministic pre-order.
///
/// Each leaf's weight is the product of the sampling walk's branch
/// probabilities along its path (`c_child / (c_left + c_right)`, with the
/// uniform `1/2` fallback in zero-mass subtrees), so the CDF reproduces
/// [`TreeSampler::sample_leaf`]'s distribution exactly — including on
/// inconsistent ablation trees. Build it once per released tree and share
/// it across samplers via [`TreeSampler::with_leaf_cdf`].
#[derive(Debug, Clone)]
pub struct LeafCdf {
    leaves: Vec<Path>,
    cum: Vec<f64>,
}

impl LeafCdf {
    /// Walks `tree` and collects its leaves and cumulative probabilities.
    pub fn build(tree: &PartitionTree) -> Self {
        let mut leaves = Vec::new();
        let mut cum = Vec::new();
        let mut acc = 0.0;
        let mut stack = vec![(Path::root(), 1.0f64)];
        while let Some((node, p)) = stack.pop() {
            match tree.children_counts(&node) {
                None => {
                    acc += p;
                    leaves.push(node);
                    cum.push(acc);
                }
                Some((c_left, c_right)) => {
                    let total = c_left + c_right;
                    // The walk branches left with P(u < c_left) for u
                    // uniform on [0, total) — clamp to [0, 1] so negative
                    // counts (possible on hand-built or unconsistent
                    // trees) keep the CDF monotone, exactly matching the
                    // walk's effective probabilities.
                    let (p_left, p_right) = if total > 0.0 {
                        let frac_left = (c_left / total).clamp(0.0, 1.0);
                        (p * frac_left, p * (1.0 - frac_left))
                    } else {
                        (p * 0.5, p * 0.5)
                    };
                    // Right pushed first so the left subtree pops first.
                    stack.push((node.right(), p_right));
                    stack.push((node.left(), p_left));
                }
            }
        }
        Self { leaves, cum }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the tree had no leaves (only possible for an empty tree).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Total accumulated mass (the last cumulative value; ~1 on consistent
    /// trees, possibly less on inconsistent ones).
    pub fn total(&self) -> f64 {
        self.cum.last().copied().unwrap_or(0.0)
    }

    /// The leaf paths in CDF order.
    pub fn leaves(&self) -> &[Path] {
        &self.leaves
    }
}

/// Resolves a chunk of uniforms against cumulative weights: `out[i]` is
/// `cum.partition_point(|&c| c <= us[i]).min(cum.len() - 1)`, the same
/// index the per-draw search picks.
///
/// Each element delegates to the standard library's branchless binary
/// search on purpose: lockstep array-of-lanes formulations (both
/// `[usize; 8]` lane state and manually unrolled scalars) measured ~5×
/// *slower* here — the probe addresses are data-dependent gathers the
/// autovectoriser cannot widen, and safe lane indexing pays a bounds
/// check per probe that `partition_point`'s internally-unchecked cmov
/// loop does not. Chunking still pays: the RNG fill and the jitter pass
/// batch around this search, which runs over a CDF that stays hot in L1.
fn search_cdf_chunk(cum: &[f64], us: &[f64], out: &mut [u32]) {
    debug_assert_eq!(us.len(), out.len());
    debug_assert!(!cum.is_empty());
    debug_assert!(cum.len() - 1 <= u32::MAX as usize);
    let last = cum.len() - 1;
    for (&u, slot) in us.iter().zip(out.iter_mut()) {
        *slot = cum.partition_point(|&c| c <= u).min(last) as u32;
    }
}

/// A sampler over a consistent partition tree for a specific domain.
///
/// The sampler borrows the tree and domain: it is a cheap, reusable view.
/// The leaf CDF backing bulk draws is built lazily on first use and cached
/// for the sampler's lifetime; long-lived holders (the serve registry)
/// share one across samplers with [`TreeSampler::with_leaf_cdf`].
#[derive(Debug)]
pub struct TreeSampler<'a, D: HierarchicalDomain> {
    tree: &'a PartitionTree,
    domain: &'a D,
    cdf: OnceLock<Arc<LeafCdf>>,
}

impl<'a, D: HierarchicalDomain> TreeSampler<'a, D> {
    /// Creates a sampler. The tree must contain a root.
    ///
    /// # Panics
    /// Panics on an empty tree.
    pub fn new(tree: &'a PartitionTree, domain: &'a D) -> Self {
        assert!(tree.root_count().is_some(), "cannot sample from an empty tree");
        Self { tree, domain, cdf: OnceLock::new() }
    }

    /// Creates a sampler seeded with a prebuilt leaf CDF, skipping the
    /// per-sampler rebuild. `cdf` must be [`LeafCdf::build`] of `tree`
    /// (anything else silently skews the bulk sampling distribution).
    ///
    /// # Panics
    /// Panics on an empty tree.
    pub fn with_leaf_cdf(tree: &'a PartitionTree, domain: &'a D, cdf: Arc<LeafCdf>) -> Self {
        let sampler = Self::new(tree, domain);
        let _ = sampler.cdf.set(cdf);
        sampler
    }

    /// The partition tree the sampler draws from.
    pub fn tree(&self) -> &'a PartitionTree {
        self.tree
    }

    /// The domain the sampler draws points from.
    pub fn domain(&self) -> &'a D {
        self.domain
    }

    /// The cached leaf CDF, building it on first use.
    pub fn leaf_cdf(&self) -> &Arc<LeafCdf> {
        self.cdf.get_or_init(|| Arc::new(LeafCdf::build(self.tree)))
    }

    /// Walks the tree to a leaf path according to the counts.
    ///
    /// Degenerate trees (root count ≤ 0, e.g. an empty stream drowned in
    /// noise) fall back to a uniform branch at every junction, which yields
    /// a uniform sample over the leaf cells — the only distribution
    /// expressible without data.
    pub fn sample_leaf<R: RngCore>(&self, rng: &mut R) -> Path {
        let root_count = self.tree.root_count().expect("checked at construction");
        let mut node = Path::root();
        let mut node_count = root_count;
        let mut u = if root_count > 0.0 { rng.gen_range(0.0..root_count) } else { 0.0 };
        // `children_counts` is one arena read per level on the dense
        // prefix (and one overlay probe per child below it).
        while let Some((c_left, c_right)) = self.tree.children_counts(&node) {
            let total = c_left + c_right;
            if total <= 0.0 {
                // Zero-mass subtree: branch uniformly.
                node = if rng.gen_bool(0.5) { node.left() } else { node.right() };
                node_count = 0.0;
                u = 0.0;
                continue;
            }
            // On a consistent tree total == node_count and this is the
            // identity; on an inconsistent tree (ablation runs) it rescales
            // u into the children's range so the walk stays well-defined.
            if node_count > 0.0 && (total - node_count).abs() > 1e-9 * node_count.abs() {
                u *= total / node_count;
            }
            if c_left >= u {
                node = node.left();
                node_count = c_left;
            } else {
                u -= c_left;
                node = node.right();
                node_count = c_right;
            }
        }
        node
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        let leaf = self.sample_leaf(rng);
        self.domain.sample_uniform(&leaf, rng)
    }

    /// Draws `m` synthetic points.
    ///
    /// Decodes [`Self::sample_many_into`]'s flat buffer, so the two entry
    /// points are bit-equal at equal seeds by construction; prefer the
    /// flat entry point on hot paths that don't need per-point values.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        let lanes = self.domain.point_lanes();
        let mut flat = Vec::with_capacity(m * lanes);
        self.sample_many_into(m, rng, &mut flat);
        flat.chunks_exact(lanes).map(|row| self.domain.read_point(row)).collect()
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer
    /// (`m · point_lanes` values appended), without materialising
    /// per-point heap values.
    ///
    /// Bulk draws run chunked over the cached leaf CDF
    /// ([`Self::leaf_cdf`]): one RNG pass fills a chunk of uniforms,
    /// a branchless binary search resolves the whole
    /// chunk of leaf indices, and one jitter pass
    /// ([`HierarchicalDomain::sample_uniform_many`]) turns the cells into
    /// points — `O(nodes + m·(log leaves + draw))` instead of `m` full
    /// root-to-leaf walks. The per-leaf probabilities are the walk's own
    /// branch products, so the sampling distribution is identical to
    /// repeated [`Self::sample`] (including on inconsistent ablation trees
    /// and zero-mass subtrees); only the RNG consumption pattern differs.
    /// Degenerate trees (root count or total CDF mass ≤ 0) keep the
    /// per-draw walk, which is uniform over leaf cells.
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        let root_count = self.tree.root_count().expect("checked at construction");
        out.reserve(m * self.domain.point_lanes());
        if root_count > 0.0 && m > 1 {
            let cdf = self.leaf_cdf().clone();
            let total = cdf.total();
            if total > 0.0 {
                let scratch = m.min(SAMPLE_CHUNK);
                let mut us = vec![0.0f64; scratch];
                let mut idxs = vec![0u32; scratch];
                let mut thetas: Vec<Path> = Vec::with_capacity(scratch);
                let mut remaining = m;
                while remaining > 0 {
                    let c = remaining.min(SAMPLE_CHUNK);
                    for u in &mut us[..c] {
                        *u = rng.gen_range(0.0..total);
                    }
                    search_cdf_chunk(&cdf.cum, &us[..c], &mut idxs[..c]);
                    thetas.clear();
                    thetas.extend(idxs[..c].iter().map(|&i| cdf.leaves[i as usize]));
                    self.domain.sample_uniform_many(&thetas, rng, out);
                    remaining -= c;
                }
                return;
            }
        }
        for _ in 0..m {
            let p = self.sample(rng);
            self.domain.write_point(&p, out);
        }
    }

    /// The probability the walk assigns to `leaf` (its count over the root
    /// count), for diagnostics and tests.
    pub fn leaf_probability(&self, leaf: &Path) -> f64 {
        let root = self.tree.root_count().unwrap_or(0.0);
        if root <= 0.0 {
            return 0.0;
        }
        self.tree.count(leaf).map(|c| (c / root).max(0.0)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, UnitInterval};
    use privhp_dp::rng::rng_from_seed;

    /// A consistent depth-2 tree with leaf masses 1, 3, 2, 4.
    fn fixture_tree() -> PartitionTree {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 4.0);
        t.insert(r.right(), 6.0);
        t.insert(r.left().left(), 1.0);
        t.insert(r.left().right(), 3.0);
        t.insert(r.right().left(), 2.0);
        t.insert(r.right().right(), 4.0);
        t
    }

    #[test]
    fn leaf_frequencies_proportional_to_counts() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        let mut rng = rng_from_seed(42);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(sampler.sample_leaf(&mut rng)).or_insert(0usize) += 1;
        }
        let expect = [
            (Path::from_bits(0b00, 2), 0.1),
            (Path::from_bits(0b01, 2), 0.3),
            (Path::from_bits(0b10, 2), 0.2),
            (Path::from_bits(0b11, 2), 0.4),
        ];
        for (leaf, p) in expect {
            let freq = *counts.get(&leaf).unwrap_or(&0) as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "leaf {leaf}: frequency {freq} vs expected {p}");
        }
    }

    #[test]
    fn samples_land_in_selected_cells() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        let mut rng = rng_from_seed(1);
        for _ in 0..1_000 {
            let x = sampler.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uneven_depth_tree_sampling() {
        // Left child is a leaf at level 1; right subtree goes to level 2.
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 5.0);
        t.insert(r.right(), 5.0);
        t.insert(r.right().left(), 5.0);
        t.insert(r.right().right(), 0.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(2);
        let n = 40_000;
        let left_leaf = (0..n).filter(|_| sampler.sample_leaf(&mut rng) == r.left()).count();
        let frac = left_leaf as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left leaf frequency {frac}");
    }

    #[test]
    fn zero_mass_tree_falls_back_to_uniform() {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 0.0);
        t.insert(r.left(), 0.0);
        t.insert(r.right(), 0.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(3);
        let n = 20_000;
        let lefts = (0..n).filter(|_| sampler.sample_leaf(&mut rng) == r.left()).count();
        let frac = lefts as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "uniform fallback broken: {frac}");
    }

    #[test]
    fn leaf_probability_reads_counts() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        assert!((sampler.leaf_probability(&Path::from_bits(0b01, 2)) - 0.3).abs() < 1e-12);
        assert_eq!(sampler.leaf_probability(&Path::from_bits(0b111, 3)), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn empty_tree_rejected() {
        let t = PartitionTree::new();
        let domain = UnitInterval::new();
        let _ = TreeSampler::new(&t, &domain);
    }

    #[test]
    fn bulk_cdf_matches_walk_distribution() {
        // sample_many's leaf-CDF path must land points in each leaf cell
        // with the same probabilities the per-draw walk realises.
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        let mut rng = rng_from_seed(7);
        let n = 100_000;
        let pts = sampler.sample_many(n, &mut rng);
        let expect = [(0.0, 0.1), (0.25, 0.3), (0.5, 0.2), (0.75, 0.4)];
        for (lo, p) in expect {
            let freq = pts.iter().filter(|&&x| x >= lo && x < lo + 0.25).count() as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "cell [{lo},{}): {freq} vs {p}", lo + 0.25);
        }
    }

    #[test]
    fn bulk_cdf_on_inconsistent_tree_matches_walk() {
        // On an inconsistent tree the walk's leaf probabilities are branch
        // products, not leaf-count ratios; the CDF path must reproduce
        // them. Children (4, 2) under a root of 10: walk goes left with
        // 4/6, then splits 1:3 under the left child.
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 4.0);
        t.insert(r.right(), 2.0);
        t.insert(r.left().left(), 1.0);
        t.insert(r.left().right(), 3.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(9);
        let n = 60_000;
        let pts = sampler.sample_many(n, &mut rng);
        let left = pts.iter().filter(|&&x| x < 0.5).count() as f64 / n as f64;
        let far_left = pts.iter().filter(|&&x| x < 0.25).count() as f64 / n as f64;
        assert!((left - 4.0 / 6.0).abs() < 0.01, "left mass {left} vs 4/6");
        assert!((far_left - (4.0 / 6.0) * 0.25).abs() < 0.01, "far-left mass {far_left}");
    }

    #[test]
    fn bulk_sampling_zero_mass_tree_falls_back_to_walk() {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 0.0);
        t.insert(r.left(), 0.0);
        t.insert(r.right(), 0.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(11);
        let n = 20_000;
        let pts = sampler.sample_many(n, &mut rng);
        let lefts = pts.iter().filter(|&&x| x < 0.5).count() as f64 / n as f64;
        assert!((lefts - 0.5).abs() < 0.02, "degenerate bulk sampling not uniform: {lefts}");
    }

    #[test]
    fn search_kernel_matches_partition_point() {
        // The chunk search must agree with the clamped library binary
        // search on every input, including ties, u below the first weight,
        // u at/above the total, and short CDFs.
        for n in [1usize, 2, 3, 7, 8, 9, 15, 16, 33, 100] {
            let cum: Vec<f64> = (1..=n).map(|i| i as f64 / n as f64).collect();
            let mut us = Vec::new();
            for &c in &cum {
                us.extend([c - 1e-12, c, c + 1e-12]);
            }
            us.extend([0.0, -0.5, 0.5 / n as f64, 1.0, 1.5]);
            let mut got = vec![0u32; us.len()];
            search_cdf_chunk(&cum, &us, &mut got);
            for (&u, &g) in us.iter().zip(&got) {
                let want = cum.partition_point(|&c| c <= u).min(n - 1) as u32;
                assert_eq!(g, want, "n={n}, u={u}");
            }
        }
    }

    #[test]
    fn sample_many_into_bit_equal_to_sample_many() {
        let tree = fixture_tree();
        for dim in [1usize, 2] {
            let domain = Hypercube::new(dim);
            let sampler = TreeSampler::new(&tree, &domain);
            let mut rng_a = rng_from_seed(21);
            let mut rng_b = rng_from_seed(21);
            let m = 10_000;
            let mut flat = Vec::new();
            sampler.sample_many_into(m, &mut rng_a, &mut flat);
            let pts = sampler.sample_many(m, &mut rng_b);
            assert_eq!(flat.len(), m * dim);
            for (row, p) in flat.chunks_exact(dim).zip(&pts) {
                for (a, b) in row.iter().zip(p) {
                    assert_eq!(a.to_bits(), b.to_bits(), "dim {dim} lane diverged");
                }
            }
        }
    }

    #[test]
    fn prebuilt_cdf_reproduces_lazy_sampler() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let lazy = TreeSampler::new(&tree, &domain);
        let shared = Arc::new(LeafCdf::build(&tree));
        assert_eq!(shared.len(), 4);
        assert!((shared.total() - 1.0).abs() < 1e-12);
        let seeded = TreeSampler::with_leaf_cdf(&tree, &domain, shared.clone());
        let mut rng_a = rng_from_seed(31);
        let mut rng_b = rng_from_seed(31);
        let a = lazy.sample_many(5_000, &mut rng_a);
        let b = seeded.sample_many(5_000, &mut rng_b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The seeded sampler must reuse the shared CDF, not rebuild.
        assert!(Arc::ptr_eq(seeded.leaf_cdf(), &shared));
    }
}
