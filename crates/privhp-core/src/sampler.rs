//! Synthetic-data sampling from a decomposition tree — paper §5.
//!
//! A sample is drawn by (1) choosing `u` uniformly in `[0, v_∅.count)`,
//! (2) walking root-to-leaf: at each internal node compare `u` against the
//! left child's count `c`; branch left if `c ≥ u`, otherwise subtract `c`
//! from `u` and branch right, and (3) drawing a uniform point from the leaf
//! subdomain. After consistency the children of every internal node sum
//! exactly to their parent, so the walk selects each leaf with probability
//! proportional to its count.
//!
//! (The paper's prose says "u ← u − v_θ.count" on a right branch; the
//! quantity that preserves the invariant `u ∈ [0, subtree mass)` is the
//! *left child's* count, which is what "branch left if c ≥ u" implies — we
//! implement that and property-test leaf proportionality.)

use privhp_domain::{HierarchicalDomain, Path};
use rand::Rng;
use rand::RngCore;

use crate::tree::PartitionTree;

/// A sampler over a consistent partition tree for a specific domain.
///
/// The sampler borrows the tree and domain: it is a cheap, reusable view.
#[derive(Debug)]
pub struct TreeSampler<'a, D: HierarchicalDomain> {
    tree: &'a PartitionTree,
    domain: &'a D,
}

impl<'a, D: HierarchicalDomain> TreeSampler<'a, D> {
    /// Creates a sampler. The tree must contain a root.
    ///
    /// # Panics
    /// Panics on an empty tree.
    pub fn new(tree: &'a PartitionTree, domain: &'a D) -> Self {
        assert!(tree.root_count().is_some(), "cannot sample from an empty tree");
        Self { tree, domain }
    }

    /// The partition tree the sampler draws from.
    pub fn tree(&self) -> &'a PartitionTree {
        self.tree
    }

    /// Walks the tree to a leaf path according to the counts.
    ///
    /// Degenerate trees (root count ≤ 0, e.g. an empty stream drowned in
    /// noise) fall back to a uniform branch at every junction, which yields
    /// a uniform sample over the leaf cells — the only distribution
    /// expressible without data.
    pub fn sample_leaf<R: RngCore>(&self, rng: &mut R) -> Path {
        let root_count = self.tree.root_count().expect("checked at construction");
        let mut node = Path::root();
        let mut node_count = root_count;
        let mut u = if root_count > 0.0 { rng.gen_range(0.0..root_count) } else { 0.0 };
        loop {
            let left = node.left();
            let right = node.right();
            let has_left = self.tree.contains(&left);
            let has_right = self.tree.contains(&right);
            if !(has_left && has_right) {
                return node;
            }
            let c_left = self.tree.count_unchecked(&left);
            let c_right = self.tree.count_unchecked(&right);
            let total = c_left + c_right;
            if total <= 0.0 {
                // Zero-mass subtree: branch uniformly.
                node = if rng.gen_bool(0.5) { left } else { right };
                node_count = 0.0;
                u = 0.0;
                continue;
            }
            // On a consistent tree total == node_count and this is the
            // identity; on an inconsistent tree (ablation runs) it rescales
            // u into the children's range so the walk stays well-defined.
            if node_count > 0.0 && (total - node_count).abs() > 1e-9 * node_count.abs() {
                u *= total / node_count;
            }
            if c_left >= u {
                node = left;
                node_count = c_left;
            } else {
                u -= c_left;
                node = right;
                node_count = c_right;
            }
        }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        let leaf = self.sample_leaf(rng);
        self.domain.sample_uniform(&leaf, rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// The probability the walk assigns to `leaf` (its count over the root
    /// count), for diagnostics and tests.
    pub fn leaf_probability(&self, leaf: &Path) -> f64 {
        let root = self.tree.root_count().unwrap_or(0.0);
        if root <= 0.0 {
            return 0.0;
        }
        self.tree.count(leaf).map(|c| (c / root).max(0.0)).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    /// A consistent depth-2 tree with leaf masses 1, 3, 2, 4.
    fn fixture_tree() -> PartitionTree {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 4.0);
        t.insert(r.right(), 6.0);
        t.insert(r.left().left(), 1.0);
        t.insert(r.left().right(), 3.0);
        t.insert(r.right().left(), 2.0);
        t.insert(r.right().right(), 4.0);
        t
    }

    #[test]
    fn leaf_frequencies_proportional_to_counts() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        let mut rng = rng_from_seed(42);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(sampler.sample_leaf(&mut rng)).or_insert(0usize) += 1;
        }
        let expect = [
            (Path::from_bits(0b00, 2), 0.1),
            (Path::from_bits(0b01, 2), 0.3),
            (Path::from_bits(0b10, 2), 0.2),
            (Path::from_bits(0b11, 2), 0.4),
        ];
        for (leaf, p) in expect {
            let freq = *counts.get(&leaf).unwrap_or(&0) as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "leaf {leaf}: frequency {freq} vs expected {p}");
        }
    }

    #[test]
    fn samples_land_in_selected_cells() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        let mut rng = rng_from_seed(1);
        for _ in 0..1_000 {
            let x = sampler.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uneven_depth_tree_sampling() {
        // Left child is a leaf at level 1; right subtree goes to level 2.
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 5.0);
        t.insert(r.right(), 5.0);
        t.insert(r.right().left(), 5.0);
        t.insert(r.right().right(), 0.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(2);
        let n = 40_000;
        let left_leaf = (0..n).filter(|_| sampler.sample_leaf(&mut rng) == r.left()).count();
        let frac = left_leaf as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left leaf frequency {frac}");
    }

    #[test]
    fn zero_mass_tree_falls_back_to_uniform() {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 0.0);
        t.insert(r.left(), 0.0);
        t.insert(r.right(), 0.0);
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&t, &domain);
        let mut rng = rng_from_seed(3);
        let n = 20_000;
        let lefts = (0..n).filter(|_| sampler.sample_leaf(&mut rng) == r.left()).count();
        let frac = lefts as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "uniform fallback broken: {frac}");
    }

    #[test]
    fn leaf_probability_reads_counts() {
        let tree = fixture_tree();
        let domain = UnitInterval::new();
        let sampler = TreeSampler::new(&tree, &domain);
        assert!((sampler.leaf_probability(&Path::from_bits(0b01, 2)) - 0.3).abs() < 1e-12);
        assert_eq!(sampler.leaf_probability(&Path::from_bits(0b111, 3)), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn empty_tree_rejected() {
        let t = PartitionTree::new();
        let domain = UnitInterval::new();
        let _ = TreeSampler::new(&t, &domain);
    }
}
