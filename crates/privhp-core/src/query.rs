//! Direct query evaluation on a released partition tree.
//!
//! The paper's motivation (§1): sketch-based private structures "are
//! limited to predefined queries", while a synthetic data generator
//! "supports a broad range of queries" — and since the tree is an ε-DP
//! release, evaluating *any* query against it is free post-processing
//! (Lemma 2). This module answers the common ones in closed form (no
//! sampling noise): subdomain masses, and for 1-D trees range
//! probabilities, CDF, quantiles and means under the piecewise-uniform
//! leaf densities.

use privhp_domain::{HierarchicalDomain, Path, UnitInterval};

use crate::tree::PartitionTree;

/// A closed-form query view over a consistent partition tree.
#[derive(Debug)]
pub struct TreeQuery<'a, D: HierarchicalDomain> {
    tree: &'a PartitionTree,
    domain: &'a D,
}

impl<'a, D: HierarchicalDomain> TreeQuery<'a, D> {
    /// Creates a query view.
    ///
    /// # Panics
    /// Panics on an empty tree.
    pub fn new(tree: &'a PartitionTree, domain: &'a D) -> Self {
        assert!(tree.root_count().is_some(), "cannot query an empty tree");
        Self { tree, domain }
    }

    /// Total mass (the noisy release size; clamped at 0).
    pub fn total_mass(&self) -> f64 {
        self.tree.root_count().unwrap_or(0.0).max(0.0)
    }

    /// The probability the generator assigns to the subdomain `Ω_θ`.
    ///
    /// If `theta` is deeper than the tree's leaf on its path, mass is
    /// apportioned by the uniform-in-leaf rule: each further split halves
    /// the measure (true for every median-split decomposition in
    /// `privhp-domain`).
    pub fn subdomain_probability(&self, theta: &Path) -> f64 {
        let total = self.total_mass();
        if total <= 0.0 {
            return 0.0;
        }
        // Find the deepest ancestor of theta present in the tree.
        let mut deepest = None;
        for l in (0..=theta.level()).rev() {
            let anc = theta.ancestor(l);
            if self.tree.contains(&anc) {
                deepest = Some(anc);
                if self.tree.is_leaf(&anc) || l == theta.level() {
                    break;
                }
            }
        }
        let Some(node) = deepest else { return 0.0 };
        if node.level() == theta.level() {
            return (self.tree.count_unchecked(&node).max(0.0)) / total;
        }
        // theta is below a leaf: uniform-in-leaf halving.
        let leaf_mass = self.tree.count_unchecked(&node).max(0.0);
        let extra = theta.level() - node.level();
        leaf_mass / total * 2f64.powi(-(extra as i32))
    }

    /// The underlying domain.
    pub fn domain(&self) -> &D {
        self.domain
    }

    /// The `k` heaviest level-`level` subdomains by release probability —
    /// the "hierarchical heavy hitters" view (cf. Biswas et al., paper
    /// §2.1), answered from the release for free. Cells below the tree's
    /// resolution inherit mass by the uniform-in-leaf rule; ties break
    /// toward the smaller path.
    pub fn heavy_cells(&self, level: usize, k: usize) -> Vec<(Path, f64)> {
        assert!(level <= 24, "dense heavy-cell enumeration limited to level 24");
        let mut cells: Vec<(Path, f64)> = (0..(1u64 << level))
            .map(|bits| {
                let p = Path::from_bits(bits, level);
                let mass = self.subdomain_probability(&p);
                (p, mass)
            })
            .collect();
        cells.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        cells.truncate(k);
        cells
    }
}

impl<'a> TreeQuery<'a, UnitInterval> {
    /// `P[a ≤ X < b]` under the generator's piecewise-uniform density.
    ///
    /// # Panics
    /// Panics unless `0 ≤ a ≤ b ≤ 1`.
    pub fn range_probability(&self, a: f64, b: f64) -> f64 {
        assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b) && a <= b);
        let total = self.total_mass();
        if total <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for leaf in self.tree.leaves() {
            let mass = self.tree.count_unchecked(&leaf).max(0.0);
            if mass == 0.0 {
                continue;
            }
            let (lo, hi) = self.domain.cell_bounds(&leaf);
            let overlap = (b.min(hi) - a.max(lo)).max(0.0);
            if overlap > 0.0 {
                acc += mass * overlap / (hi - lo);
            }
        }
        acc / total
    }

    /// The generator's CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.range_probability(0.0, x.clamp(0.0, 1.0))
    }

    /// The generator's `q`-quantile (`q ∈ [0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile rank must be in [0,1]");
        let total = self.total_mass();
        if total <= 0.0 {
            return q; // uniform fallback matches the degenerate sampler
        }
        // Gather leaves in spatial order, then invert the piecewise-linear
        // CDF.
        let mut leaves: Vec<(f64, f64, f64)> = self
            .tree
            .leaves()
            .into_iter()
            .filter_map(|leaf| {
                let mass = self.tree.count_unchecked(&leaf).max(0.0);
                if mass > 0.0 {
                    let (lo, hi) = self.domain.cell_bounds(&leaf);
                    Some((lo, hi, mass / total))
                } else {
                    None
                }
            })
            .collect();
        leaves.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut acc = 0.0;
        for (lo, hi, p) in leaves {
            if acc + p >= q {
                let frac = if p > 0.0 { (q - acc) / p } else { 0.0 };
                return lo + frac.clamp(0.0, 1.0) * (hi - lo);
            }
            acc += p;
        }
        1.0
    }

    /// The generator's mean.
    pub fn mean(&self) -> f64 {
        let total = self.total_mass();
        if total <= 0.0 {
            return 0.5;
        }
        let mut acc = 0.0;
        for leaf in self.tree.leaves() {
            let mass = self.tree.count_unchecked(&leaf).max(0.0);
            let (lo, hi) = self.domain.cell_bounds(&leaf);
            acc += mass * 0.5 * (lo + hi);
        }
        acc / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Depth-2 tree: leaf masses 1, 3, 2, 4 on the four quarter cells.
    fn fixture() -> PartitionTree {
        let mut t = PartitionTree::new();
        let r = Path::root();
        t.insert(r, 10.0);
        t.insert(r.left(), 4.0);
        t.insert(r.right(), 6.0);
        t.insert(r.left().left(), 1.0);
        t.insert(r.left().right(), 3.0);
        t.insert(r.right().left(), 2.0);
        t.insert(r.right().right(), 4.0);
        t
    }

    #[test]
    fn subdomain_probabilities() {
        let t = fixture();
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        assert!((q.subdomain_probability(&Path::root()) - 1.0).abs() < 1e-12);
        assert!((q.subdomain_probability(&Path::from_bits(0b01, 2)) - 0.3).abs() < 1e-12);
        // Below-leaf query: half the leaf's mass.
        assert!((q.subdomain_probability(&Path::from_bits(0b010, 3)) - 0.15).abs() < 1e-12);
        // Outside the tree entirely (level 2 absent path can't happen in a
        // complete tree; use a deeper one).
        assert!((q.subdomain_probability(&Path::from_bits(0b0101, 4)) - 0.075).abs() < 1e-12);
    }

    #[test]
    fn range_probability_and_cdf() {
        let t = fixture();
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        assert!((q.range_probability(0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((q.range_probability(0.0, 0.25) - 0.1).abs() < 1e-12);
        assert!((q.range_probability(0.25, 0.75) - 0.5).abs() < 1e-12);
        // Partial overlap: half of cell [0,0.25).
        assert!((q.range_probability(0.0, 0.125) - 0.05).abs() < 1e-12);
        assert!((q.cdf(0.5) - 0.4).abs() < 1e-12);
        assert!((q.cdf(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let t = fixture();
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        for rank in [0.05, 0.1, 0.4, 0.4001, 0.6, 0.95] {
            let x = q.quantile(rank);
            assert!(
                (q.cdf(x) - rank).abs() < 1e-9,
                "rank {rank}: quantile {x}, cdf back {}",
                q.cdf(x)
            );
        }
        assert_eq!(q.quantile(1.0), 1.0);
    }

    #[test]
    fn mean_matches_hand_computation() {
        let t = fixture();
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        // E[X] = 0.1*0.125 + 0.3*0.375 + 0.2*0.625 + 0.4*0.875 = 0.6
        assert!((q.mean() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn heavy_cells_ranked_by_mass() {
        let t = fixture();
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        let hh = q.heavy_cells(2, 2);
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].0, Path::from_bits(0b11, 2));
        assert!((hh[0].1 - 0.4).abs() < 1e-12);
        assert_eq!(hh[1].0, Path::from_bits(0b01, 2));
        // Below-resolution level: masses split uniformly, still ranked.
        let hh3 = q.heavy_cells(3, 1);
        assert_eq!(hh3[0].0.ancestor(2), Path::from_bits(0b11, 2));
        assert!((hh3[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tree_falls_back() {
        let mut t = PartitionTree::new();
        t.insert(Path::root(), 0.0);
        let d = UnitInterval::new();
        let q = TreeQuery::new(&t, &d);
        assert_eq!(q.range_probability(0.2, 0.4), 0.0);
        assert_eq!(q.quantile(0.3), 0.3);
        assert_eq!(q.mean(), 0.5);
    }
}
