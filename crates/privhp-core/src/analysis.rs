//! The analytic proof pipeline of §7 (Figure 4):
//! `𝒯_X → 𝒯_exact → 𝒯_approx → 𝒯_PrivHP`.
//!
//! These trees are never built by the streaming algorithm — they exist for
//! analysis. We materialise them so the decomposition experiments (E10 in
//! DESIGN.md) can *measure* the three gaps that Lemmas 7–9 bound:
//!
//! * [`exact_complete_tree`] — `𝒯_X`: exact counts, complete to depth `L`
//!   (Step 0, Figure 4a);
//! * [`exact_pruned_tree`] — `𝒯_exact`: exact top-`k` pruning per level
//!   (Step 1, Figure 4b; gap bounded by Lemma 7 via the tail norm);
//! * [`with_exact_counts`] — `𝒯_approx`: the *structure* of a PrivHP tree
//!   re-filled with exact counts (Step 2, Figure 4c; gap bounded by
//!   Lemma 8);
//! * the real `𝒯_PrivHP` comes from [`crate::privhp`] (Step 3; Lemma 9).
//!
//! Also here: [`level_counts`], the dense per-level frequency vectors `C_l`
//! from which `‖tail_k^l‖₁` is computed.

use privhp_domain::{HierarchicalDomain, Path};
use privhp_sketch::tail::tail_norm_l1;

use crate::tree::PartitionTree;

/// Maximum depth for dense per-level materialisation (2^22 cells ≈ 32 MiB
/// of `f64`s at the deepest level).
pub const MAX_DENSE_DEPTH: usize = 22;

/// Computes the dense frequency vectors `C_l` for levels `0..=depth`:
/// `out[l][i]` is the number of stream items falling in the level-`l` cell
/// with index `i`.
///
/// # Panics
/// Panics if `depth > MAX_DENSE_DEPTH`.
pub fn level_counts<D: HierarchicalDomain>(
    domain: &D,
    data: &[D::Point],
    depth: usize,
) -> Vec<Vec<f64>> {
    assert!(depth <= MAX_DENSE_DEPTH, "depth {depth} too deep for dense analysis");
    let mut out: Vec<Vec<f64>> = (0..=depth).map(|l| vec![0.0; 1usize << l]).collect();
    for p in data {
        let deep = domain.locate(p, depth);
        for (l, row) in out.iter_mut().enumerate() {
            row[deep.ancestor(l).bits() as usize] += 1.0;
        }
    }
    out
}

/// `‖tail_k^l‖₁` for each level `l`, from dense level counts.
pub fn tail_norms(level_counts: &[Vec<f64>], k: usize) -> Vec<f64> {
    level_counts.iter().map(|c| tail_norm_l1(c, k)).collect()
}

/// Builds `𝒯_X`: the complete exact-count tree of the given depth
/// (Figure 4a).
pub fn exact_complete_tree(level_counts: &[Vec<f64>]) -> PartitionTree {
    if level_counts.is_empty() {
        return PartitionTree::new();
    }
    let depth = level_counts.len() - 1;
    PartitionTree::complete(depth, |p| level_counts[p.level()][p.bits() as usize])
}

/// Builds `𝒯_exact`: exact top-`k` pruning (Figure 4b / proof Step 1).
///
/// Per the proof of Theorem 3 ("branching at the nodes with the exact
/// top-k counts at each level `l ≥ L★`"), the selection applies at `L★`
/// itself — the hot set starts as the top-`k` level-`L★` nodes, then each
/// deeper level keeps the children of the top-`k` nodes of the previous
/// level. (Algorithm 2's *runtime* growth expands every `L★` leaf on its
/// first step; when `2^{L★} ≤ k` — e.g. Figure 2 — the two readings
/// coincide.)
pub fn exact_pruned_tree(level_counts: &[Vec<f64>], l_star: usize, k: usize) -> PartitionTree {
    let depth = level_counts.len() - 1;
    assert!(l_star <= depth, "L* beyond available levels");
    let mut tree = PartitionTree::complete(l_star, |p| level_counts[p.level()][p.bits() as usize]);
    let mut hot: Vec<Path> = tree.level_nodes(l_star).to_vec();
    hot.sort_by(|a, b| {
        let ca = tree.count_unchecked(a);
        let cb = tree.count_unchecked(b);
        cb.partial_cmp(&ca).unwrap().then(a.cmp(b))
    });
    hot.truncate(k);
    for (l, row) in level_counts.iter().enumerate().skip(l_star + 1) {
        let mut new_nodes = Vec::with_capacity(hot.len() * 2);
        for theta in &hot {
            for child in [theta.left(), theta.right()] {
                let c = row[child.bits() as usize];
                tree.insert(child, c);
                new_nodes.push(child);
            }
        }
        if l < depth {
            // Exact top-k (ties toward the smaller path, as in growth).
            new_nodes.sort_by(|a, b| {
                let ca = tree.count_unchecked(a);
                let cb = tree.count_unchecked(b);
                cb.partial_cmp(&ca).unwrap().then(a.cmp(b))
            });
            hot = new_nodes.into_iter().take(k).collect();
        }
    }
    tree
}

/// Builds `𝒯_approx`: the node *structure* of `shaped` (typically a real
/// PrivHP tree) re-filled with exact counts from `level_counts`
/// (Figure 4c / proof Step 2). Nodes deeper than the dense depth are
/// dropped.
pub fn with_exact_counts(shaped: &PartitionTree, level_counts: &[Vec<f64>]) -> PartitionTree {
    let depth = level_counts.len() - 1;
    let mut tree = PartitionTree::new();
    for (path, _) in shaped.iter() {
        if path.level() <= depth {
            tree.insert(*path, level_counts[path.level()][path.bits() as usize]);
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;

    fn data() -> Vec<f64> {
        // 8 points: 5 in [0, .25), 2 in [.5, .75), 1 in [.75, 1).
        vec![0.01, 0.05, 0.1, 0.15, 0.2, 0.55, 0.6, 0.8]
    }

    #[test]
    fn level_counts_partition_the_mass() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        for (l, row) in lc.iter().enumerate() {
            assert_eq!(row.len(), 1 << l);
            assert_eq!(row.iter().sum::<f64>(), 8.0, "level {l} must hold all mass");
        }
        assert_eq!(lc[2], vec![5.0, 0.0, 2.0, 1.0]);
    }

    #[test]
    fn exact_tree_matches_counts() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        let t = exact_complete_tree(&lc);
        assert_eq!(t.len(), 1 + 2 + 4 + 8);
        assert_eq!(t.root_count(), Some(8.0));
        assert_eq!(t.count(&Path::from_bits(0b00, 2)), Some(5.0));
    }

    #[test]
    fn exact_pruning_keeps_top_k() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        // L* = 1, k = 1 (proof-style pruning, top-k at L* included):
        // level-1 counts are Ω0 = 5, Ω1 = 3 → only Ω0 branches; level-2
        // counts under it are Ω00 = 5, Ω01 = 0 → only Ω00 branches.
        let t = exact_pruned_tree(&lc, 1, 1);
        assert_eq!(t.level_nodes(2).len(), 2);
        assert_eq!(t.level_nodes(3).len(), 2);
        assert!(t.contains(&Path::from_bits(0b000, 3)));
        assert!(t.contains(&Path::from_bits(0b001, 3)));
        assert!(!t.contains(&Path::from_bits(0b10, 2)), "cold branch pruned at L*");
    }

    #[test]
    fn exact_pruning_large_k_keeps_everything() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        let t = exact_pruned_tree(&lc, 1, 64);
        assert_eq!(t.level_nodes(2).len(), 4);
        assert_eq!(t.level_nodes(3).len(), 8);
    }

    #[test]
    fn tail_norms_shrink_with_k_and_grow_with_level() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        let t1 = tail_norms(&lc, 1);
        let t2 = tail_norms(&lc, 2);
        for l in 0..t1.len() {
            assert!(t2[l] <= t1[l] + 1e-12);
        }
        // ||tail_k^{l-1}|| <= ||tail_k^l|| (paper, proof of Lemma 7).
        for l in 1..t1.len() {
            assert!(t1[l - 1] <= t1[l] + 1e-12, "tail norm must grow with level");
        }
    }

    #[test]
    fn with_exact_counts_preserves_structure() {
        let lc = level_counts(&UnitInterval::new(), &data(), 3);
        let pruned = exact_pruned_tree(&lc, 1, 1);
        let mut shaped = pruned.clone();
        // Corrupt the counts, then restore exactly.
        for (p, _) in pruned.iter() {
            shaped.set_count(p, -1.0);
        }
        let restored = with_exact_counts(&shaped, &lc);
        assert_eq!(restored.len(), pruned.len());
        for (p, c) in pruned.iter() {
            assert_eq!(restored.count(p), Some(*c));
        }
    }

    #[test]
    #[should_panic(expected = "too deep")]
    fn dense_depth_guard() {
        let _ = level_counts(&UnitInterval::new(), &data(), MAX_DENSE_DEPTH + 1);
    }
}
