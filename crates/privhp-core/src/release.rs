//! The serialised release file: the ε-DP tree plus the domain and
//! configuration needed to sample from and query it.
//!
//! This lives in `privhp-core` (not the CLI) because every consumer of a
//! persisted release — the `privhp` command-line tool, the long-lived
//! [`privhp-serve`] server, tests — shares the same on-disk format and the
//! same [`ReleaseFile::generator`] view of it.
//!
//! [`privhp-serve`]: https://docs.rs/privhp-serve

use crate::config::PrivHpConfig;
use crate::sampler::TreeSampler;
use crate::tree::PartitionTree;
use privhp_domain::HierarchicalDomain;
use serde::{Deserialize, Serialize};

/// Which input domain a release was built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainSpec {
    /// The unit interval `[0,1]`.
    Interval,
    /// The hypercube `[0,1]^dim`.
    Cube {
        /// Dimension.
        dim: usize,
    },
    /// The IPv4 address space.
    Ipv4,
}

impl DomainSpec {
    /// Parses a CLI domain string: `interval`, `cube:D`, or `ipv4`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "interval" => Ok(DomainSpec::Interval),
            "ipv4" => Ok(DomainSpec::Ipv4),
            other => {
                if let Some(d) = other.strip_prefix("cube:") {
                    let dim: usize = d.parse().map_err(|_| format!("bad cube dimension '{d}'"))?;
                    if dim == 0 {
                        return Err("cube dimension must be >= 1".into());
                    }
                    Ok(DomainSpec::Cube { dim })
                } else {
                    Err(format!("unknown domain '{other}' (expected interval | cube:D | ipv4)"))
                }
            }
        }
    }

    /// Display form (inverse of [`DomainSpec::parse`]).
    pub fn describe(&self) -> String {
        match self {
            DomainSpec::Interval => "interval".into(),
            DomainSpec::Cube { dim } => format!("cube:{dim}"),
            DomainSpec::Ipv4 => "ipv4".into(),
        }
    }
}

/// A persisted ε-DP release.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReleaseFile {
    /// File-format version.
    pub version: u32,
    /// Domain the release was built over.
    pub domain: DomainSpec,
    /// Build configuration (ε, k, levels, sketch dimensions, seed).
    pub config: PrivHpConfig,
    /// The consistent partition tree (the private artifact itself).
    pub tree: PartitionTree,
}

/// Current file-format version.
pub const RELEASE_VERSION: u32 = 1;

/// Seed whitening every release consumer applies before sampling: the RNG
/// is seeded with `user_seed ^ SAMPLE_SEED_XOR`. One shared constant is
/// what makes a CLI `privhp sample --seed S`, a served `sample` request at
/// seed `S`, and an in-process [`ReleaseFile::generator`] draw bit-equal.
pub const SAMPLE_SEED_XOR: u64 = 0x5A11;

impl ReleaseFile {
    /// Wraps release parts into a versioned file.
    pub fn new(domain: DomainSpec, config: PrivHpConfig, tree: PartitionTree) -> Self {
        Self { version: RELEASE_VERSION, domain, config, tree }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("release serialises")
    }

    /// Views the release as a synthetic-data generator over `domain`
    /// (the returned sampler implements [`crate::Generator`], so it
    /// plugs into any trait-driven consumer).
    pub fn generator<'a, D: HierarchicalDomain>(&'a self, domain: &'a D) -> TreeSampler<'a, D> {
        TreeSampler::new(&self.tree, domain)
    }

    /// Memory retained by the release, in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }

    /// Parses from JSON, validating the version.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: ReleaseFile =
            serde_json::from_str(s).map_err(|e| format!("invalid release file: {e}"))?;
        if r.version != RELEASE_VERSION {
            return Err(format!(
                "release file version {} unsupported (expected {RELEASE_VERSION})",
                r.version
            ));
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::Path;

    #[test]
    fn domain_spec_roundtrip() {
        for s in ["interval", "cube:2", "cube:7", "ipv4"] {
            let d = DomainSpec::parse(s).unwrap();
            assert_eq!(d.describe(), s);
        }
        assert!(DomainSpec::parse("cube:0").is_err());
        assert!(DomainSpec::parse("torus").is_err());
        assert!(DomainSpec::parse("cube:x").is_err());
    }

    #[test]
    fn release_file_roundtrip() {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 5.0);
        tree.insert(Path::root().left(), 2.0);
        tree.insert(Path::root().right(), 3.0);
        let config = PrivHpConfig::for_domain(1.0, 100, 4);
        let file = ReleaseFile::new(DomainSpec::Interval, config, tree);
        let json = file.to_json();
        let back = ReleaseFile::from_json(&json).unwrap();
        assert_eq!(back.domain, DomainSpec::Interval);
        assert_eq!(back.tree.root_count(), Some(5.0));
        assert_eq!(back.config.k, 4);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 1.0);
        let config = PrivHpConfig::for_domain(1.0, 10, 2);
        let mut file = ReleaseFile::new(DomainSpec::Ipv4, config, tree);
        file.version = 99;
        let json = file.to_json();
        assert!(ReleaseFile::from_json(&json).unwrap_err().contains("version"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(ReleaseFile::from_json("{not json").is_err());
    }
}
