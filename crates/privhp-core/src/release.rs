//! The persisted release: the ε-DP tree plus the domain and configuration
//! needed to sample from and query it, in two lossless encodings.
//!
//! This lives in `privhp-core` (not the CLI) because every consumer of a
//! persisted release — the `privhp` command-line tool, the long-lived
//! [`privhp-serve`] server, tests — shares the same on-disk formats and the
//! same [`ReleaseFile::generator`] view of it.
//!
//! Two encodings, one logical artifact:
//!
//! * **JSON** ([`ReleaseFile::to_json`] / [`ReleaseFile::from_json`]) —
//!   the human-readable interchange form. Floats print via Rust's
//!   shortest round-trip formatting, so it is lossless.
//! * **Binary `.phpr`** ([`ReleaseFile::to_binary`] /
//!   [`ReleaseFile::from_binary`], module [`binary`]) — the serving form:
//!   the dense-tree arena is stored as raw little-endian `f64` words at a
//!   page-aligned offset, so a loader (or an mmap) can use it in place
//!   with no parse step. Byte-level spec in `docs/FORMAT.md`.
//!
//! The two forms round-trip **bit-identically**: encoding a release to
//! `.phpr` and back reproduces the exact JSON bytes (and therefore the
//! exact sampled draws at equal seeds) of the original.
//!
//! Finished releases also compose: [`merge_releases`] (module [`merge`])
//! unions the trees of already-noised releases with ε accounted by
//! parallel composition — see the module docs for the algebra.
//!
//! # Build → save → load → sample round-trip
//!
//! ```
//! use privhp_core::{DomainSpec, PartitionTree, PrivHpConfig, ReleaseFile};
//! use privhp_domain::{Path, UnitInterval};
//! use privhp_dp::rng::rng_from_seed;
//!
//! // Build: a tiny consistent tree (real pipelines use `PrivHp::build`).
//! let mut tree = PartitionTree::new();
//! tree.insert(Path::root(), 8.0);
//! tree.insert(Path::root().left(), 5.0);
//! tree.insert(Path::root().right(), 3.0);
//! let config = PrivHpConfig::for_domain(1.0, 8, 2).with_seed(42);
//! let release = ReleaseFile::new(DomainSpec::Interval, config, tree);
//!
//! // Save to the binary serving form; load it back (a file round-trip
//! // would go through `std::fs::write` / `std::fs::read`).
//! let bytes = release.to_binary();
//! let loaded = ReleaseFile::from_binary(&bytes).expect("valid .phpr bytes");
//! assert_eq!(ReleaseFile::detect_format(&bytes), privhp_core::release::ReleaseFormat::Binary);
//! assert_eq!(loaded.to_json(), release.to_json()); // lossless
//!
//! // Sample: equal seeds on original and loaded twin draw equal points.
//! let domain = UnitInterval::new();
//! let mut rng_a = rng_from_seed(7 ^ privhp_core::SAMPLE_SEED_XOR);
//! let mut rng_b = rng_from_seed(7 ^ privhp_core::SAMPLE_SEED_XOR);
//! let a = release.generator(&domain).sample_many(4, &mut rng_a);
//! let b = loaded.generator(&domain).sample_many(4, &mut rng_b);
//! assert_eq!(a, b);
//! ```
//!
//! [`privhp-serve`]: https://docs.rs/privhp-serve

pub mod binary;
pub mod merge;

pub use binary::BinaryFormatError;
pub use merge::merge_releases;

use crate::config::PrivHpConfig;
use crate::sampler::TreeSampler;
use crate::tree::PartitionTree;
use privhp_domain::HierarchicalDomain;
use serde::{Deserialize, Serialize};

/// Which input domain a release was built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainSpec {
    /// The unit interval `[0,1]`.
    Interval,
    /// The hypercube `[0,1]^dim`.
    Cube {
        /// Dimension.
        dim: usize,
    },
    /// The IPv4 address space.
    Ipv4,
}

impl DomainSpec {
    /// Parses a CLI domain string: `interval`, `cube:D`, or `ipv4`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "interval" => Ok(DomainSpec::Interval),
            "ipv4" => Ok(DomainSpec::Ipv4),
            other => {
                if let Some(d) = other.strip_prefix("cube:") {
                    let dim: usize = d.parse().map_err(|_| format!("bad cube dimension '{d}'"))?;
                    if dim == 0 {
                        return Err("cube dimension must be >= 1".into());
                    }
                    Ok(DomainSpec::Cube { dim })
                } else {
                    Err(format!("unknown domain '{other}' (expected interval | cube:D | ipv4)"))
                }
            }
        }
    }

    /// Display form (inverse of [`DomainSpec::parse`]).
    pub fn describe(&self) -> String {
        match self {
            DomainSpec::Interval => "interval".into(),
            DomainSpec::Cube { dim } => format!("cube:{dim}"),
            DomainSpec::Ipv4 => "ipv4".into(),
        }
    }
}

/// The on-disk encoding of a release: JSON for interchange, binary
/// `.phpr` for serving. Auto-detected on read by
/// [`ReleaseFile::detect_format`] (the binary form starts with a magic
/// that can never begin a JSON document).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseFormat {
    /// Pretty-printed JSON — the human-readable interchange form.
    Json,
    /// The `.phpr` binary container — the zero-parse serving form.
    Binary,
}

impl ReleaseFormat {
    /// Parses a CLI format string: `json` or `binary`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "json" => Ok(ReleaseFormat::Json),
            "binary" => Ok(ReleaseFormat::Binary),
            other => Err(format!("unknown format '{other}' (expected json | binary)")),
        }
    }

    /// Display form (inverse of [`ReleaseFormat::parse`]).
    pub fn describe(&self) -> &'static str {
        match self {
            ReleaseFormat::Json => "json",
            ReleaseFormat::Binary => "binary",
        }
    }
}

/// A persisted ε-DP release.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReleaseFile {
    /// File-format version.
    pub version: u32,
    /// Domain the release was built over.
    pub domain: DomainSpec,
    /// Build configuration (ε, k, levels, sketch dimensions, seed).
    pub config: PrivHpConfig,
    /// The consistent partition tree (the private artifact itself).
    pub tree: PartitionTree,
}

/// Current file-format version.
pub const RELEASE_VERSION: u32 = 1;

/// Seed whitening every release consumer applies before sampling: the RNG
/// is seeded with `user_seed ^ SAMPLE_SEED_XOR`. One shared constant is
/// what makes a CLI `privhp sample --seed S`, a served `sample` request at
/// seed `S`, and an in-process [`ReleaseFile::generator`] draw bit-equal.
pub const SAMPLE_SEED_XOR: u64 = 0x5A11;

impl ReleaseFile {
    /// Wraps release parts into a versioned file.
    pub fn new(domain: DomainSpec, config: PrivHpConfig, tree: PartitionTree) -> Self {
        Self { version: RELEASE_VERSION, domain, config, tree }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("release serialises")
    }

    /// Serialises to the `.phpr` binary container ([`binary`] module;
    /// byte-level spec in `docs/FORMAT.md`). Lossless: decoding the
    /// result reproduces this release bit-identically, down to its JSON
    /// rendering.
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(self)
    }

    /// Parses `.phpr` bytes, validating magic, versions, endianness, and
    /// every structural invariant. Corrupt or truncated input yields a
    /// structured [`BinaryFormatError`], never a panic.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, BinaryFormatError> {
        binary::decode(bytes)
    }

    /// Serialises in the given format.
    pub fn to_bytes(&self, format: ReleaseFormat) -> Vec<u8> {
        match format {
            ReleaseFormat::Json => self.to_json().into_bytes(),
            ReleaseFormat::Binary => self.to_binary(),
        }
    }

    /// Which encoding a byte buffer holds: [`ReleaseFormat::Binary`] iff
    /// it starts with the `.phpr` magic, otherwise it is presumed JSON.
    pub fn detect_format(bytes: &[u8]) -> ReleaseFormat {
        if binary::is_binary(bytes) {
            ReleaseFormat::Binary
        } else {
            ReleaseFormat::Json
        }
    }

    /// Parses a release in either encoding, auto-detecting the format.
    /// Error strings name the detected format so callers can surface
    /// actionable messages.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        match Self::detect_format(bytes) {
            ReleaseFormat::Binary => {
                Self::from_binary(bytes).map_err(|e| format!("binary release: {e}"))
            }
            ReleaseFormat::Json => {
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| format!("json release: not UTF-8: {e}"))?;
                Self::from_json(s).map_err(|e| format!("json release: {e}"))
            }
        }
    }

    /// Views the release as a synthetic-data generator over `domain`
    /// (the returned sampler implements [`crate::Generator`], so it
    /// plugs into any trait-driven consumer).
    pub fn generator<'a, D: HierarchicalDomain>(&'a self, domain: &'a D) -> TreeSampler<'a, D> {
        TreeSampler::new(&self.tree, domain)
    }

    /// Memory retained by the release, in 8-byte words.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }

    /// Parses from JSON, validating the version.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let r: ReleaseFile =
            serde_json::from_str(s).map_err(|e| format!("invalid release file: {e}"))?;
        if r.version != RELEASE_VERSION {
            return Err(format!(
                "release file version {} unsupported (expected {RELEASE_VERSION})",
                r.version
            ));
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::Path;

    #[test]
    fn domain_spec_roundtrip() {
        for s in ["interval", "cube:2", "cube:7", "ipv4"] {
            let d = DomainSpec::parse(s).unwrap();
            assert_eq!(d.describe(), s);
        }
        assert!(DomainSpec::parse("cube:0").is_err());
        assert!(DomainSpec::parse("torus").is_err());
        assert!(DomainSpec::parse("cube:x").is_err());
    }

    #[test]
    fn release_format_roundtrip() {
        for s in ["json", "binary"] {
            assert_eq!(ReleaseFormat::parse(s).unwrap().describe(), s);
        }
        assert!(ReleaseFormat::parse("msgpack").is_err());
    }

    #[test]
    fn release_file_roundtrip() {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 5.0);
        tree.insert(Path::root().left(), 2.0);
        tree.insert(Path::root().right(), 3.0);
        let config = PrivHpConfig::for_domain(1.0, 100, 4);
        let file = ReleaseFile::new(DomainSpec::Interval, config, tree);
        let json = file.to_json();
        let back = ReleaseFile::from_json(&json).unwrap();
        assert_eq!(back.domain, DomainSpec::Interval);
        assert_eq!(back.tree.root_count(), Some(5.0));
        assert_eq!(back.config.k, 4);
    }

    #[test]
    fn from_bytes_autodetects() {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 5.0);
        tree.insert(Path::root().left(), 2.0);
        tree.insert(Path::root().right(), 3.0);
        let config = PrivHpConfig::for_domain(1.0, 100, 4);
        let file = ReleaseFile::new(DomainSpec::Interval, config, tree);

        let json_bytes = file.to_bytes(ReleaseFormat::Json);
        let bin_bytes = file.to_bytes(ReleaseFormat::Binary);
        assert_eq!(ReleaseFile::detect_format(&json_bytes), ReleaseFormat::Json);
        assert_eq!(ReleaseFile::detect_format(&bin_bytes), ReleaseFormat::Binary);

        let from_json = ReleaseFile::from_bytes(&json_bytes).unwrap();
        let from_bin = ReleaseFile::from_bytes(&bin_bytes).unwrap();
        assert_eq!(from_json.to_json(), file.to_json());
        assert_eq!(from_bin.to_json(), file.to_json());

        // Error strings name the detected format.
        let err = ReleaseFile::from_bytes(b"{broken json").unwrap_err();
        assert!(err.starts_with("json release:"), "{err}");
        let mut bad = bin_bytes.clone();
        bad.truncate(20);
        let err = ReleaseFile::from_bytes(&bad).unwrap_err();
        assert!(err.starts_with("binary release:"), "{err}");
    }

    #[test]
    fn wrong_version_rejected() {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 1.0);
        let config = PrivHpConfig::for_domain(1.0, 10, 2);
        let mut file = ReleaseFile::new(DomainSpec::Ipv4, config, tree);
        file.version = 99;
        let json = file.to_json();
        assert!(ReleaseFile::from_json(&json).unwrap_err().contains("version"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(ReleaseFile::from_json("{not json").is_err());
    }
}
