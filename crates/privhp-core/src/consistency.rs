//! Consistency enforcement — paper Algorithm 3 and the `ConsErr`
//! accounting of §6.
//!
//! Consistency requires (1) all counts non-negative and (2) sibling counts
//! summing to their parent's count. After noise injection neither holds;
//! Algorithm 3 restores both by *evenly* redistributing the discrepancy
//! `Λ = c(θ0) + c(θ1) − c(θ)` between the siblings, with two corrections:
//!
//! * **Correction 1** (line 3): clamp a negative child to 0 before
//!   computing Λ;
//! * **Correction 2** (line 6): if the even split would drive a child
//!   negative, zero the smaller child and give the parent's full count to
//!   the larger.
//!
//! Both corrections only ever *reduce* the error in the child counts
//! (paper Lemma 6, cases 2–3), so the `ConsErr` bound survives them.

use privhp_domain::Path;

use crate::tree::PartitionTree;

/// Outcome labels for one consistency step, used by tests and the
/// ablation experiments to observe which branch fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyOutcome {
    /// The even split (Eq. 2 / line 12) was applied.
    EvenSplit,
    /// Correction 2 fired: one child zeroed, the other inherited the parent.
    Correction2,
}

/// Enforces consistency between `parent` and its two children
/// (Algorithm 3).
///
/// # Panics
/// Panics if `parent` or either child is absent from the tree — the growth
/// phase always materialises both children before calling this.
pub fn enforce_consistency(tree: &mut PartitionTree, parent: &Path) -> ConsistencyOutcome {
    let left = parent.left();
    let right = parent.right();
    let parent_count = tree.count_unchecked(parent);

    // Correction 1: clamp negative children to zero first.
    for child in [&left, &right] {
        if tree.count_unchecked(child) < 0.0 {
            tree.set_count(child, 0.0);
        }
    }

    let c0 = tree.count_unchecked(&left);
    let c1 = tree.count_unchecked(&right);
    let lambda = c0 + c1 - parent_count;

    if (c0 - lambda / 2.0).min(c1 - lambda / 2.0) < 0.0 {
        // Correction 2: zero the smaller child, give the parent's count to
        // the larger.
        let (min_path, max_path) = if c0 <= c1 { (left, right) } else { (right, left) };
        tree.set_count(&min_path, 0.0);
        tree.set_count(&max_path, parent_count);
        ConsistencyOutcome::Correction2
    } else {
        tree.set_count(&left, c0 - lambda / 2.0);
        tree.set_count(&right, c1 - lambda / 2.0);
        ConsistencyOutcome::EvenSplit
    }
}

/// Applies consistency to every internal node of the subtree under `root`
/// in depth-first **pre-order** (parents before children), as required by
/// Algorithm 2 line 2. If the root's own count is negative it is clamped to
/// zero first so the invariant "all counts non-negative" holds globally.
pub fn enforce_consistency_subtree(tree: &mut PartitionTree, root: &Path) {
    if let Some(c) = tree.count(root) {
        if c < 0.0 {
            tree.set_count(root, 0.0);
        }
    } else {
        return;
    }
    let mut stack = vec![*root];
    while let Some(node) = stack.pop() {
        let left = node.left();
        let right = node.right();
        let has_left = tree.contains(&left);
        let has_right = tree.contains(&right);
        if has_left && has_right {
            enforce_consistency(tree, &node);
            stack.push(left);
            stack.push(right);
        } else {
            // A well-formed PrivHP tree materialises children in pairs;
            // tolerate half-pairs defensively by leaving them untouched
            // (they cannot participate in a binary consistency step).
            debug_assert!(
                !(has_left ^ has_right),
                "node {node} has exactly one child; tree is malformed"
            );
        }
    }
}

/// Checks the consistency invariants on the subtree under `root`:
/// every count non-negative, and children summing to their parent within
/// `tolerance`. Returns the first violating path, if any.
pub fn find_consistency_violation(
    tree: &PartitionTree,
    root: &Path,
    tolerance: f64,
) -> Option<Path> {
    let mut stack = vec![*root];
    while let Some(node) = stack.pop() {
        let count = tree.count(&node)?;
        if count < -tolerance {
            return Some(node);
        }
        let left = node.left();
        let right = node.right();
        if tree.contains(&left) && tree.contains(&right) {
            let sum = tree.count_unchecked(&left) + tree.count_unchecked(&right);
            if (sum - count).abs() > tolerance {
                return Some(node);
            }
            stack.push(left);
            stack.push(right);
        }
    }
    None
}

/// The consistency-error magnitude of Eq. 9:
/// `ConsErr(v_θ) = |(λ_{θ0} − λ_{θ1} + e_{θ0} − e_{θ1}) / 2|`, computed from
/// the component errors of the two children. Exposed for the §6 accounting
/// experiments (Example 6.1 / Figure 3).
pub fn cons_err(lambda0: f64, lambda1: f64, e0: f64, e1: f64) -> f64 {
    ((lambda0 - lambda1 + e0 - e1) / 2.0).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(parent: f64, left: f64, right: f64) -> (PartitionTree, Path) {
        let mut t = PartitionTree::new();
        let p = Path::root();
        t.insert(p, parent);
        t.insert(p.left(), left);
        t.insert(p.right(), right);
        (t, p)
    }

    #[test]
    fn even_split_redistributes_surplus() {
        // Figure 2b: parent 20.2, children 12.2 + 8.6 = 20.8, Λ = 0.6.
        let (mut t, p) = tree_with(20.2, 12.2, 8.6);
        let outcome = enforce_consistency(&mut t, &p);
        assert_eq!(outcome, ConsistencyOutcome::EvenSplit);
        assert!((t.count_unchecked(&p.left()) - 11.9).abs() < 1e-9);
        assert!((t.count_unchecked(&p.right()) - 8.3).abs() < 1e-9);
    }

    #[test]
    fn even_split_redistributes_deficit() {
        // Children undershoot the parent: both must increase.
        let (mut t, p) = tree_with(10.0, 4.0, 4.0);
        enforce_consistency(&mut t, &p);
        assert!((t.count_unchecked(&p.left()) - 5.0).abs() < 1e-9);
        assert!((t.count_unchecked(&p.right()) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn correction1_clamps_negative_child() {
        let (mut t, p) = tree_with(10.0, -2.0, 11.0);
        enforce_consistency(&mut t, &p);
        // After clamping: c0=0, c1=11, Λ=1, even split gives (-0.5, 10.5) →
        // violates, so Correction 2 fires: min child 0, max child = parent.
        assert_eq!(t.count_unchecked(&p.left()), 0.0);
        assert_eq!(t.count_unchecked(&p.right()), 10.0);
    }

    #[test]
    fn correction2_zeroes_smaller_child() {
        // Λ = 1 + 9 - 12 = -2; even split adds 1 to each → fine. Instead
        // use a case where the split sends the smaller child negative:
        // c0 = 0.2, c1 = 9.0, parent = 3.0 → Λ = 6.2, Λ/2 = 3.1 → c0 < 0.
        let (mut t, p) = tree_with(3.0, 0.2, 9.0);
        let outcome = enforce_consistency(&mut t, &p);
        assert_eq!(outcome, ConsistencyOutcome::Correction2);
        assert_eq!(t.count_unchecked(&p.left()), 0.0);
        assert_eq!(t.count_unchecked(&p.right()), 3.0);
    }

    #[test]
    fn children_always_sum_to_parent() {
        let cases = [
            (20.2, 12.2, 8.6),
            (10.0, 4.0, 4.0),
            (3.0, 0.2, 9.0),
            (5.0, -1.0, -1.0),
            (0.0, 2.0, 3.0),
            (7.5, 7.5, 0.0),
        ];
        for (pc, lc, rc) in cases {
            let (mut t, p) = tree_with(pc, lc, rc);
            enforce_consistency(&mut t, &p);
            let sum = t.count_unchecked(&p.left()) + t.count_unchecked(&p.right());
            assert!(
                (sum - pc).abs() < 1e-9,
                "case ({pc},{lc},{rc}): children sum {sum} != parent {pc}"
            );
            assert!(t.count_unchecked(&p.left()) >= 0.0);
            assert!(t.count_unchecked(&p.right()) >= 0.0);
        }
    }

    #[test]
    fn subtree_consistency_fixes_whole_tree() {
        // Figure 2a/2b: a depth-1 complete tree.
        let (mut t, p) = tree_with(20.2, 12.2, 8.6);
        enforce_consistency_subtree(&mut t, &p);
        assert!(find_consistency_violation(&t, &p, 1e-9).is_none());
    }

    #[test]
    fn subtree_consistency_on_deeper_tree() {
        let mut t = PartitionTree::complete(4, |p| {
            // Noisy pseudo-counts, some negative.
            ((p.bits() as f64 * 7.3) % 11.0) - 2.0
        });
        enforce_consistency_subtree(&mut t, &Path::root());
        assert!(
            find_consistency_violation(&t, &Path::root(), 1e-9).is_none(),
            "deep tree must be consistent after the DFS pass"
        );
        assert!(t.root_count().unwrap() >= 0.0);
    }

    #[test]
    fn negative_root_clamped() {
        let (mut t, p) = tree_with(-5.0, 1.0, 2.0);
        enforce_consistency_subtree(&mut t, &p);
        assert_eq!(t.root_count(), Some(0.0));
        let sum = t.count_unchecked(&p.left()) + t.count_unchecked(&p.right());
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn violation_finder_detects_bad_sum() {
        let (t, p) = tree_with(10.0, 3.0, 3.0);
        assert_eq!(find_consistency_violation(&t, &p, 1e-9), Some(p));
    }

    #[test]
    fn example_6_1_cons_err() {
        // Paper Example 6.1: λ0=-0.5, e0=1, λ1=-0.3, e1=2 → ConsErr = 0.6.
        let ce = cons_err(-0.5, -0.3, 1.0, 2.0);
        assert!((ce - 0.6).abs() < 1e-12);
    }

    #[test]
    fn example_6_1_full_walkthrough() {
        // Figure 3: parent (already consistent) 4.6; children before
        // consistency 3.5 and 3.7; after consistency 2.2 and 2.4.
        let mut t = PartitionTree::new();
        let p = Path::root();
        t.insert(p, 4.6);
        t.insert(p.left(), 3.5);
        t.insert(p.right(), 3.7);
        enforce_consistency(&mut t, &p);
        assert!((t.count_unchecked(&p.left()) - 2.2).abs() < 1e-9);
        assert!((t.count_unchecked(&p.right()) - 2.4).abs() < 1e-9);
    }
}
