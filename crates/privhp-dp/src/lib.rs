#![warn(missing_docs)]

//! Differential-privacy primitives used throughout the PrivHP workspace.
//!
//! This crate is the bottom layer of the stack. It provides:
//!
//! * [`laplace`] — the Laplace mechanism of Lemma 1 in the paper, plus raw
//!   Laplace sampling with a numerically careful inverse-CDF transform;
//! * [`geometric`] — the two-sided geometric ("discrete Laplace") mechanism,
//!   useful when counters must stay integral;
//! * [`budget`] — ε-budget bookkeeping with basic composition (Lemma 3) and
//!   the per-level budget *splits* PrivHP needs (Theorem 2 requires
//!   Σ_l σ_l = ε across hierarchy levels);
//! * [`rng`] — a small deterministic RNG toolkit (splitmix64 seeding,
//!   stream-splitting) so every experiment in the workspace is reproducible.
//!
//! Privacy discipline: all mechanisms in this crate add noise whose scale is
//! derived from an explicit sensitivity argument. Everything *downstream* of
//! a privatised value (tree growth, consistency, sampling) is deterministic
//! post-processing and therefore free (Lemma 2); the types in [`budget`]
//! make the accounting explicit so call-sites cannot silently over-spend.

pub mod budget;
pub mod continual;
pub mod geometric;
pub mod laplace;
pub mod rng;

pub use budget::{BudgetError, BudgetSplit, EpsilonBudget};
pub use geometric::TwoSidedGeometric;
pub use laplace::{laplace_mechanism, Laplace};
pub use rng::{DeterministicRng, SeedSequence};

/// The privacy parameter ε. A plain `f64` newtype would be ceremony without
/// safety here; instead budget types validate positivity at construction.
pub type Epsilon = f64;
