//! Deterministic randomness utilities.
//!
//! Every randomised component in the workspace (noise injection, sketch hash
//! functions, workload generators, the synthetic sampler) takes its
//! randomness from an explicit RNG so that experiments are reproducible.
//! This module provides a tiny, dependency-light toolkit built on
//! splitmix64, which is also the de-facto standard seeding function for
//! xoshiro-family generators.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Advances a splitmix64 state and returns the next output.
///
/// splitmix64 is a 64-bit finalizer-style mixer with provably equidistributed
/// output over its full period; we use it both as a seed expander and as the
/// mixing core of the sketch hash functions.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a single value through the splitmix64 finalizer (stateless form).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// A sequence of independent seeds derived from one master seed.
///
/// `SeedSequence` lets a component own one `u64` and hand out arbitrarily
/// many decorrelated sub-seeds (for per-level noise, per-row hash functions,
/// per-trial workloads) without coordination.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { state: mix64(master) }
    }

    /// Returns the next independent seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Derives a named sub-sequence; the same `(master, label)` pair always
    /// yields the same sub-sequence regardless of call order.
    pub fn fork(&self, label: u64) -> SeedSequence {
        SeedSequence::new(self.state ^ mix64(label.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
    }

    /// Builds a ready-to-use RNG from the next seed.
    pub fn next_rng(&mut self) -> DeterministicRng {
        DeterministicRng::seed_from_u64(self.next_seed())
    }
}

/// The concrete RNG used across the workspace.
///
/// `StdRng` (ChaCha-based in the `rand 0.8` line) is deliberately chosen over
/// a faster statistical generator: noise used for *privacy* should come from
/// a cryptographically strong source, and the throughput difference is
/// invisible next to the cost of `ln`/`exp` in the Laplace transform.
pub type DeterministicRng = StdRng;

/// Convenience constructor mirroring `SeedableRng::seed_from_u64`.
pub fn rng_from_seed(seed: u64) -> DeterministicRng {
    DeterministicRng::seed_from_u64(seed)
}

/// Draws a uniform `f64` in the open interval `(0, 1)`.
///
/// Open at both ends so that downstream `ln` calls can never see 0; this is
/// the standard guard when inverting the Laplace CDF.
#[inline]
pub fn uniform_open01<R: RngCore>(rng: &mut R) -> f64 {
    loop {
        // 53 random mantissa bits -> uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..10 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0, "mixer must not fix zero");
    }

    #[test]
    fn seed_sequence_reproducible() {
        let mut s1 = SeedSequence::new(7);
        let mut s2 = SeedSequence::new(7);
        let a: Vec<u64> = (0..8).map(|_| s1.next_seed()).collect();
        let b: Vec<u64> = (0..8).map(|_| s2.next_seed()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_sequence_forks_are_order_independent() {
        let base = SeedSequence::new(9);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let mut f1_again = base.fork(1);
        assert_eq!(f1.next_seed(), f1_again.next_seed());
        assert_ne!(f1.next_seed(), f2.next_seed());
    }

    #[test]
    fn uniform_open01_in_range() {
        let mut rng = rng_from_seed(3);
        for _ in 0..10_000 {
            let u = uniform_open01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn uniform_open01_mean_near_half() {
        let mut rng = rng_from_seed(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| uniform_open01(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
