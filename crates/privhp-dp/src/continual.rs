//! Continual-observation counting — the binary (tree) mechanism of
//! Chan–Shi–Song / Dwork et al., in `O(log T)` memory.
//!
//! The paper's Algorithm 1 releases its output once, after the stream
//! (1-pass model, Definition 1), but notes (§3.1) that "our method can be
//! adapted to continual observation by replacing the counters and sketches
//! with their continual observation counterparts". This module provides
//! that counterpart for a single counter; `privhp-sketch` lifts it to a
//! continual Count-Min sketch and `privhp-core::continual` assembles the
//! adapted PrivHP.
//!
//! Mechanism: time is decomposed dyadically; the running count at time `t`
//! is the sum of the `≤ log T` noisy *p-sums* corresponding to the set
//! bits of `t`. Each stream position contributes to `≤ log T` p-sums, so
//! adding `Laplace(log T / ε)` to every p-sum makes the **entire release
//! sequence** ε-DP, with per-release error `O(log^{3/2} T / ε)`. Only one
//! open partial sum per level is retained — `O(log T)` words.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::laplace::Laplace;

/// A continual-observation counter over a horizon of `2^levels` updates,
/// using `O(levels)` memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContinualCounter {
    /// `alpha[j]`: the exact partial sum of the currently accumulating
    /// dyadic block at level `j` (Chan–Shi–Song's α).
    alpha: Vec<f64>,
    /// `noisy[j]`: the noisy p-sum for the level-`j` block that is part of
    /// the current prefix decomposition (valid when bit `j` of `t` is set).
    noisy: Vec<f64>,
    epsilon: f64,
    levels: usize,
    t: usize,
    noise_scale: f64,
}

impl ContinualCounter {
    /// Creates a counter for a horizon of `2^levels` updates at privacy
    /// `epsilon` (for the full release sequence).
    ///
    /// # Panics
    /// Panics unless `1 ≤ levels ≤ 40` and `epsilon > 0`.
    pub fn new(levels: usize, epsilon: f64) -> Self {
        assert!((1..=40).contains(&levels), "levels must be in 1..=40");
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self {
            alpha: vec![0.0; levels + 1],
            noisy: vec![0.0; levels + 1],
            epsilon,
            levels,
            t: 0,
            noise_scale: levels as f64 / epsilon,
        }
    }

    /// Privacy of the full release sequence.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Laplace scale applied to each p-sum (`log T / ε`).
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// Horizon `T = 2^levels`.
    pub fn horizon(&self) -> usize {
        1usize << self.levels
    }

    /// Updates processed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no updates were processed.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Ingests one increment of `weight`, drawing the fresh p-sum noise
    /// from `rng`, and returns the current private prefix count.
    ///
    /// # Panics
    /// Panics past the horizon.
    pub fn update<R: RngCore>(&mut self, weight: f64, rng: &mut R) -> f64 {
        assert!(self.t < self.horizon(), "continual counter horizon exhausted");
        let t = self.t + 1;
        // i = lowest set bit of the new time: the level whose p-sum closes.
        let i = t.trailing_zeros() as usize;
        // The closing p-sum aggregates all lower-level partials + this item.
        let mut sum = weight;
        for j in 0..i {
            sum += self.alpha[j];
            self.alpha[j] = 0.0;
            self.noisy[j] = 0.0;
        }
        self.alpha[i] = sum;
        let dist = Laplace::new(self.noise_scale);
        self.noisy[i] = sum + dist.sample(rng);
        self.t = t;
        self.query()
    }

    /// The private count of all updates so far: the sum of the noisy
    /// p-sums at the set bits of `t`.
    pub fn query(&self) -> f64 {
        let mut total = 0.0;
        for j in 0..=self.levels {
            if (self.t >> j) & 1 == 1 {
                total += self.noisy[j];
            }
        }
        total
    }

    /// Memory footprint in 8-byte words (`O(levels)`).
    pub fn memory_words(&self) -> usize {
        self.alpha.len() + self.noisy.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn counts_track_truth() {
        let mut rng = rng_from_seed(1);
        let mut c = ContinualCounter::new(10, 50.0); // low noise
        let mut truth = 0.0;
        for i in 0..1000 {
            truth += 1.0;
            let est = c.update(1.0, &mut rng);
            // Scale 10/50 = 0.2 per p-sum, ≤ 10 p-sums per query.
            assert!((est - truth).abs() < 15.0, "t={i}: estimate {est} too far from {truth}");
        }
    }

    #[test]
    fn weighted_updates() {
        let mut rng = rng_from_seed(2);
        let mut c = ContinualCounter::new(6, 100.0);
        let mut truth = 0.0;
        for i in 0..64 {
            truth += (i % 3) as f64;
            let est = c.update((i % 3) as f64, &mut rng);
            assert!((est - truth).abs() < 3.0, "t={i}: {est} vs {truth}");
        }
    }

    #[test]
    fn noise_scale_is_log_t_over_eps() {
        let c = ContinualCounter::new(8, 2.0);
        assert!((c.noise_scale() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn memory_is_logarithmic() {
        let c = ContinualCounter::new(20, 1.0);
        assert!(c.memory_words() <= 2 * 21, "binary mechanism must be O(log T)");
        assert_eq!(c.horizon(), 1 << 20);
    }

    #[test]
    fn error_grows_sublinearly_in_horizon() {
        let mut errs = Vec::new();
        for levels in [6usize, 10] {
            let trials = 40;
            let mut total = 0.0;
            for s in 0..trials {
                let mut rng = rng_from_seed(100 + s);
                let mut c = ContinualCounter::new(levels, 1.0);
                let t = 1usize << levels;
                let mut last = 0.0;
                for _ in 0..t {
                    last = c.update(1.0, &mut rng);
                }
                total += (last - t as f64).abs();
            }
            errs.push(total / trials as f64);
        }
        // Horizon grew 16x; the error should grow far less than 16x.
        assert!(errs[1] < errs[0] * 8.0, "error must be sublinear in T: {errs:?}");
    }

    #[test]
    fn query_matches_exact_at_dyadic_boundaries_up_to_noise() {
        // At t = 2^j exactly one p-sum is live: error is one Laplace draw.
        let trials = 200;
        let mut total = 0.0;
        for s in 0..trials {
            let mut rng = rng_from_seed(500 + s);
            let mut c = ContinualCounter::new(8, 1.0);
            for _ in 0..256 {
                c.update(1.0, &mut rng);
            }
            total += (c.query() - 256.0).abs();
        }
        let mean = total / trials as f64;
        // One Laplace(8) draw: mean |noise| = 8.
        assert!((mean - 8.0).abs() < 2.5, "boundary error {mean} should be ~8");
    }

    #[test]
    #[should_panic(expected = "horizon exhausted")]
    fn horizon_enforced() {
        let mut rng = rng_from_seed(4);
        let mut c = ContinualCounter::new(1, 1.0);
        c.update(1.0, &mut rng);
        c.update(1.0, &mut rng);
        c.update(1.0, &mut rng);
    }
}
