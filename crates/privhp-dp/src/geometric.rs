//! Two-sided geometric (discrete Laplace) mechanism.
//!
//! The paper's counters are real-valued after Laplace perturbation; the
//! discrete Laplace is the integer-valued analogue, offered here because
//! counter-based deployments (e.g. the continual-observation adaptation
//! sketched in §3.1) often require integral counts. For integer-valued
//! queries of sensitivity Δ, adding `DiscreteLaplace(exp(-ε/Δ))` noise gives
//! ε-DP — same proof as Lemma 1 with sums in place of integrals.

use rand::RngCore;

use crate::rng::uniform_open01;

/// Two-sided geometric distribution with parameter `alpha ∈ (0,1)`:
/// `Pr[X = z] = (1-α)/(1+α) · α^{|z|}` for integer `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution from its decay parameter `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1), got {alpha}");
        Self { alpha }
    }

    /// Calibrates for an integer query of the given sensitivity at privacy
    /// level `epsilon`: `alpha = exp(-ε/Δ)`.
    pub fn for_mechanism(sensitivity: f64, epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(sensitivity > 0.0, "sensitivity must be positive");
        Self::new((-epsilon / sensitivity).exp())
    }

    /// The decay parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Variance `2α/(1-α)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Draws one integer sample as the difference of two geometric draws.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> i64 {
        let g1 = self.sample_one_sided(rng);
        let g2 = self.sample_one_sided(rng);
        g1 - g2
    }

    /// Geometric(1-α) on {0,1,2,...} via inversion.
    fn sample_one_sided<R: RngCore>(&self, rng: &mut R) -> i64 {
        let u = uniform_open01(rng);
        // floor(ln(u) / ln(alpha)) is Geometric with success prob 1-alpha.
        (u.ln() / self.alpha.ln()).floor() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    #[should_panic(expected = "alpha must be in (0,1)")]
    fn alpha_one_rejected() {
        let _ = TwoSidedGeometric::new(1.0);
    }

    #[test]
    fn calibration() {
        let g = TwoSidedGeometric::for_mechanism(2.0, 1.0);
        assert!((g.alpha() - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn samples_are_symmetric_and_zero_mean() {
        let g = TwoSidedGeometric::for_mechanism(1.0, 1.0);
        let mut rng = rng_from_seed(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} should be near 0");
    }

    #[test]
    fn sample_variance_matches_formula() {
        let g = TwoSidedGeometric::new(0.5);
        let mut rng = rng_from_seed(9);
        let n = 200_000;
        let var: f64 = (0..n).map(|_| (g.sample(&mut rng) as f64).powi(2)).sum::<f64>() / n as f64;
        let expected = g.variance();
        assert!((var - expected).abs() / expected < 0.05, "variance {var} vs expected {expected}");
    }

    #[test]
    fn decay_ratio_near_alpha() {
        // Pr[X = z+1] / Pr[X = z] should be ≈ alpha for z ≥ 0.
        let g = TwoSidedGeometric::new(0.6);
        let mut rng = rng_from_seed(10);
        let n = 400_000;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            let z = g.sample(&mut rng);
            if (0..6).contains(&z) {
                counts[z as usize] += 1;
            }
        }
        for z in 0..4 {
            let ratio = counts[z + 1] as f64 / counts[z] as f64;
            assert!((ratio - 0.6).abs() < 0.05, "ratio at z={z} was {ratio}, expected ~0.6");
        }
    }
}
