//! The Laplace distribution and the Laplace mechanism (paper Lemma 1).
//!
//! The mechanism `M(X) = f(X) + Laplace(Δ₁(f)/ε)` is ε-differentially
//! private when `Δ₁(f)` is the L1 sensitivity of `f`. PrivHP applies it in
//! two places (paper Eq. 3 / Theorem 2):
//!
//! * exact counters at tree levels `l ≤ L★` receive `Laplace(1/σ_l)` noise —
//!   an item touches one counter per level, so per-level sensitivity is 1;
//! * every cell of `sketch_l` receives `Laplace(j/σ_l)` noise — a sketch with
//!   `j` rows has sensitivity `j` (one bucket update per row).

use rand::RngCore;

use crate::rng::uniform_open01;

/// A Laplace distribution with mean 0 and scale `b` (density
/// `exp(-|x|/b) / 2b`).
///
/// ```
/// use privhp_dp::laplace::Laplace;
/// use privhp_dp::rng::rng_from_seed;
///
/// // Lemma 1: a sensitivity-1 count released at ε = 0.5 needs scale 2.
/// let mechanism = Laplace::for_mechanism(1.0, 0.5);
/// assert_eq!(mechanism.scale(), 2.0);
/// let mut rng = rng_from_seed(7);
/// let private_count = 1234.0 + mechanism.sample(&mut rng);
/// assert!((private_count - 1234.0).abs() < 60.0); // a few scales
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite — a zero or
    /// negative scale silently destroys the privacy guarantee, so this is a
    /// programming error, not a recoverable condition.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Laplace scale must be positive and finite, got {scale}"
        );
        Self { scale }
    }

    /// The Laplace scale calibrated for `sensitivity`-sensitive queries at
    /// privacy level `epsilon` (Lemma 1: scale = Δ₁/ε).
    pub fn for_mechanism(sensitivity: f64, epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        assert!(
            sensitivity.is_finite() && sensitivity > 0.0,
            "sensitivity must be positive and finite, got {sensitivity}"
        );
        Self::new(sensitivity / epsilon)
    }

    /// Scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean absolute deviation `E|X| = b`.
    pub fn mean_abs(&self) -> f64 {
        self.scale
    }

    /// Variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample via the inverse-CDF transform.
    ///
    /// With `U ~ Uniform(-1/2, 1/2)`, `X = -b · sign(U) · ln(1 - 2|U|)` is
    /// Laplace(b). `uniform_open01` keeps the `ln` argument strictly
    /// positive.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = uniform_open01(rng) - 0.5;
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        (-x.abs() / self.scale).exp() / (2.0 * self.scale)
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }
}

/// Applies the Laplace mechanism (Lemma 1) to a single real-valued query.
///
/// Returns `value + Laplace(sensitivity / epsilon)`.
pub fn laplace_mechanism<R: RngCore>(
    value: f64,
    sensitivity: f64,
    epsilon: f64,
    rng: &mut R,
) -> f64 {
    value + Laplace::for_mechanism(sensitivity, epsilon).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = Laplace::new(0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = Laplace::for_mechanism(1.0, 0.0);
    }

    #[test]
    fn mechanism_scale_is_sensitivity_over_epsilon() {
        let l = Laplace::for_mechanism(3.0, 0.5);
        assert!((l.scale() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_near_zero() {
        let l = Laplace::new(2.0);
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| l.sample(&mut rng)).sum::<f64>() / n as f64;
        // std error of the mean = sqrt(2)*b/sqrt(n) ≈ 0.0063; allow 5 sigma.
        assert!(mean.abs() < 0.035, "mean {mean} too far from 0");
    }

    #[test]
    fn sample_mean_abs_matches_scale() {
        let l = Laplace::new(1.5);
        let mut rng = rng_from_seed(2);
        let n = 200_000;
        let mad: f64 = (0..n).map(|_| l.sample(&mut rng).abs()).sum::<f64>() / n as f64;
        assert!((mad - 1.5).abs() < 0.03, "mean abs {mad} should be ~1.5");
    }

    #[test]
    fn sample_variance_matches() {
        let l = Laplace::new(1.0);
        let mut rng = rng_from_seed(3);
        let n = 200_000;
        let var: f64 = (0..n).map(|_| l.sample(&mut rng).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 2.0).abs() < 0.1, "variance {var} should be ~2");
    }

    #[test]
    fn cdf_pdf_consistency() {
        let l = Laplace::new(0.7);
        assert!((l.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(l.cdf(-10.0) < 1e-5);
        assert!(l.cdf(10.0) > 1.0 - 1e-5);
        // numeric derivative of the CDF ≈ PDF
        let h = 1e-6;
        for &x in &[-2.0, -0.3, 0.4, 1.7] {
            let d = (l.cdf(x + h) - l.cdf(x - h)) / (2.0 * h);
            assert!((d - l.pdf(x)).abs() < 1e-5, "x={x}: d={d}, pdf={}", l.pdf(x));
        }
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        // Kolmogorov-Smirnov style check with a generous tolerance.
        let l = Laplace::new(1.0);
        let mut rng = rng_from_seed(4);
        let n = 50_000;
        let mut samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut max_gap = 0.0f64;
        for (i, &x) in samples.iter().enumerate() {
            let emp = (i + 1) as f64 / n as f64;
            max_gap = max_gap.max((emp - l.cdf(x)).abs());
        }
        assert!(max_gap < 0.015, "KS gap {max_gap} too large");
    }

    #[test]
    fn mechanism_perturbs_value() {
        let mut rng = rng_from_seed(5);
        let out = laplace_mechanism(100.0, 1.0, 1.0, &mut rng);
        assert!((out - 100.0).abs() < 50.0, "noise implausibly large: {out}");
        assert_ne!(out, 100.0);
    }
}
