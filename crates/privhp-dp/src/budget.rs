//! ε-budget accounting: basic composition (Lemma 3) and per-level splits.
//!
//! Theorem 2 requires the per-level noise parameters `{σ_l}` to sum to the
//! total budget ε. [`BudgetSplit`] represents such an allocation; the PrivHP
//! core computes the Lemma-5-optimal split, but callers may supply any split
//! (e.g. uniform) — privacy holds for every valid split, only utility
//! changes.
//!
//! [`EpsilonBudget`] is a spend-tracking account used by composed pipelines
//! (e.g. running PrivHP twice on disjoint query families): each `spend` is a
//! basic-composition debit, and over-spending is an error rather than a
//! silent privacy violation.

use serde::{Deserialize, Serialize};

/// Errors arising from budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// Requested spend exceeds the remaining budget.
    Exhausted {
        /// Amount requested.
        requested: f64,
        /// Amount still available.
        remaining: f64,
    },
    /// A non-positive or non-finite ε was supplied.
    InvalidEpsilon(f64),
    /// A split contained a non-positive weight or was empty.
    InvalidSplit,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::Exhausted { requested, remaining } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            BudgetError::InvalidEpsilon(e) => {
                write!(f, "invalid ε={e}: must be positive and finite")
            }
            BudgetError::InvalidSplit => write!(f, "invalid budget split"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A mutable ε account with basic-composition semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpsilonBudget {
    total: f64,
    spent: f64,
}

impl EpsilonBudget {
    /// Opens an account with `total` budget.
    pub fn new(total: f64) -> Result<Self, BudgetError> {
        if !(total.is_finite() && total > 0.0) {
            return Err(BudgetError::InvalidEpsilon(total));
        }
        Ok(Self { total, spent: 0.0 })
    }

    /// Total budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Debits `epsilon` from the account (basic composition, Lemma 3).
    ///
    /// A small relative tolerance absorbs floating-point drift from splits
    /// that sum to ε only up to rounding.
    pub fn spend(&mut self, epsilon: f64) -> Result<(), BudgetError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        let tolerance = 1e-9 * self.total;
        if epsilon > self.remaining() + tolerance {
            return Err(BudgetError::Exhausted { requested: epsilon, remaining: self.remaining() });
        }
        self.spent = (self.spent + epsilon).min(self.total);
        Ok(())
    }
}

/// An allocation of a total ε across hierarchy levels `0..=L`
/// (`σ_0, …, σ_L` with `Σ σ_l = ε`, Theorem 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetSplit {
    sigmas: Vec<f64>,
}

impl BudgetSplit {
    /// Builds a split from per-level weights, normalising so the σ sum to
    /// `epsilon`. Weights express *relative* allocation; Lemma 5's optimum
    /// passes `√Γ_{l-1}` and `√(j·k·γ_{l-1})` here.
    pub fn from_weights(epsilon: f64, weights: &[f64]) -> Result<Self, BudgetError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(BudgetError::InvalidEpsilon(epsilon));
        }
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(BudgetError::InvalidSplit);
        }
        let sum: f64 = weights.iter().sum();
        let sigmas = weights.iter().map(|w| epsilon * w / sum).collect();
        Ok(Self { sigmas })
    }

    /// Splits `epsilon` evenly across `levels` levels.
    pub fn uniform(epsilon: f64, levels: usize) -> Result<Self, BudgetError> {
        if levels == 0 {
            return Err(BudgetError::InvalidSplit);
        }
        Self::from_weights(epsilon, &vec![1.0; levels])
    }

    /// σ_l for level `l`.
    ///
    /// # Panics
    /// Panics if `l` is out of range — level bookkeeping bugs must not be
    /// absorbed silently.
    pub fn sigma(&self, l: usize) -> f64 {
        self.sigmas[l]
    }

    /// All σ values in level order.
    pub fn sigmas(&self) -> &[f64] {
        &self.sigmas
    }

    /// Number of levels covered.
    pub fn levels(&self) -> usize {
        self.sigmas.len()
    }

    /// Total ε of this split.
    pub fn epsilon(&self) -> f64 {
        self.sigmas.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_spend_and_exhaust() {
        let mut b = EpsilonBudget::new(1.0).unwrap();
        b.spend(0.4).unwrap();
        b.spend(0.6).unwrap();
        assert!(b.remaining() < 1e-12);
        let err = b.spend(0.1).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
    }

    #[test]
    fn budget_rejects_bad_epsilon() {
        assert!(EpsilonBudget::new(0.0).is_err());
        assert!(EpsilonBudget::new(f64::NAN).is_err());
        assert!(EpsilonBudget::new(-1.0).is_err());
        let mut b = EpsilonBudget::new(1.0).unwrap();
        assert!(b.spend(-0.5).is_err());
    }

    #[test]
    fn budget_tolerates_float_drift() {
        let mut b = EpsilonBudget::new(1.0).unwrap();
        // Ten spends of 0.1 may not sum to exactly 1.0 in floating point.
        for _ in 0..10 {
            b.spend(0.1).unwrap();
        }
    }

    #[test]
    fn split_sums_to_epsilon() {
        let s = BudgetSplit::from_weights(2.0, &[1.0, 2.0, 3.0]).unwrap();
        assert!((s.epsilon() - 2.0).abs() < 1e-12);
        assert!((s.sigma(2) - 1.0).abs() < 1e-12);
        assert_eq!(s.levels(), 3);
    }

    #[test]
    fn uniform_split() {
        let s = BudgetSplit::uniform(1.0, 4).unwrap();
        for l in 0..4 {
            assert!((s.sigma(l) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn split_rejects_bad_weights() {
        assert!(BudgetSplit::from_weights(1.0, &[]).is_err());
        assert!(BudgetSplit::from_weights(1.0, &[1.0, 0.0]).is_err());
        assert!(BudgetSplit::from_weights(1.0, &[1.0, -2.0]).is_err());
        assert!(BudgetSplit::from_weights(0.0, &[1.0]).is_err());
    }
}
