//! PMM — the Private Measure Mechanism of He, Vershynin & Zhu (COLT '23),
//! the state-of-the-art static baseline in the paper's Table 1.
//!
//! PMM builds the **complete** hierarchical decomposition to depth
//! `L = ⌈log₂(εn)⌉` with exact counts, adds per-level Laplace noise with the
//! Lagrange-optimal budget split (the paper's Lemma 5 is its Theorem 11),
//! enforces consistency, and samples. Accuracy is optimal up to constants
//! for `d ≥ 2`, but memory is `O(εn)` — the gap PrivHP closes.
//!
//! Implementation note: PrivHP with `k = 2^L` (no pruning) and exact deep
//! counters degenerates to PMM; we implement PMM directly on the shared
//! tree/consistency/sampler substrate so the comparison isolates *pruning +
//! sketching*, not incidental code differences.

use privhp_core::consistency::enforce_consistency_subtree;
use privhp_core::sampler::TreeSampler;
use privhp_core::tree::PartitionTree;
use privhp_domain::{HierarchicalDomain, Path};
use privhp_dp::budget::BudgetSplit;
use privhp_dp::laplace::Laplace;
use rand::RngCore;

/// A built PMM generator.
#[derive(Debug, Clone)]
pub struct Pmm<D: HierarchicalDomain> {
    domain: D,
    tree: PartitionTree,
    depth: usize,
    epsilon: f64,
}

impl<D: HierarchicalDomain + Clone> Pmm<D> {
    /// Builds PMM over `data` with privacy `epsilon` and hierarchy depth
    /// `⌈log₂(εn)⌉` (clamped to the domain and to a dense-tree-safe 20).
    pub fn build<R: RngCore>(domain: &D, epsilon: f64, data: &[D::Point], rng: &mut R) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let n = data.len().max(2);
        let depth = ((epsilon * n as f64).max(2.0).log2().ceil() as usize)
            .clamp(1, domain.max_level().min(20));
        Self::build_with_depth(domain, epsilon, depth, data, rng)
    }

    /// Builds PMM with an explicit hierarchy depth.
    pub fn build_with_depth<R: RngCore>(
        domain: &D,
        epsilon: f64,
        depth: usize,
        data: &[D::Point],
        rng: &mut R,
    ) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(depth >= 1 && depth <= domain.max_level().min(20), "bad depth {depth}");

        // Lagrange-optimal split (He et al. Thm 11): σ_l ∝ √Γ_{l−1}.
        let weights: Vec<f64> =
            (0..=depth).map(|l| domain.level_diameter_sum(l.saturating_sub(1)).sqrt()).collect();
        let split = BudgetSplit::from_weights(epsilon, &weights).expect("valid weights");

        // Exact counts on the complete tree…
        let mut tree = PartitionTree::complete(depth, |_| 0.0);
        for p in data {
            let deep = domain.locate(p, depth);
            for l in 0..=depth {
                tree.add_count(&deep.ancestor(l), 1.0);
            }
        }
        // …plus Laplace(1/σ_l) noise per node (sensitivity 1 per level)…
        for l in 0..=depth {
            let dist = Laplace::new(1.0 / split.sigma(l));
            let nodes: Vec<Path> = tree.level_nodes(l).to_vec();
            for node in nodes {
                let noise = dist.sample(rng);
                tree.add_count(&node, noise);
            }
        }
        // …then consistency, exactly as in PrivHP.
        enforce_consistency_subtree(&mut tree, &Path::root());

        Self { domain: domain.clone(), tree, depth, epsilon }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer.
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        TreeSampler::new(&self.tree, &self.domain).sample_many_into(m, rng, out)
    }

    /// The consistent partition tree.
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Hierarchy depth used.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Privacy level of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Memory footprint in words — `O(2^L) = O(εn)`, the Table-1 row.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

impl<D: HierarchicalDomain + Clone> privhp_core::Generator<D> for Pmm<D> {
    fn name(&self) -> String {
        "PMM".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        Pmm::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        Pmm::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain.point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        Pmm::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        Pmm::memory_words(self)
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(Pmm::tree(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    fn skewed(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i as f64 * 0.618_033_988) % 1.0).powi(3)).collect()
    }

    #[test]
    fn builds_and_samples() {
        let data = skewed(2_000);
        let mut rng = rng_from_seed(1);
        let pmm = Pmm::build(&UnitInterval::new(), 1.0, &data, &mut rng);
        let s = pmm.sample_many(1_000, &mut rng);
        assert_eq!(s.len(), 1_000);
        assert!(s.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn tree_is_complete_and_consistent() {
        let data = skewed(500);
        let mut rng = rng_from_seed(2);
        let pmm = Pmm::build_with_depth(&UnitInterval::new(), 1.0, 6, &data, &mut rng);
        assert_eq!(pmm.tree().len(), (1 << 7) - 1, "complete tree of depth 6");
        assert!(privhp_core::consistency::find_consistency_violation(
            pmm.tree(),
            &Path::root(),
            1e-6
        )
        .is_none());
    }

    #[test]
    fn captures_skew() {
        // Cubed uniforms concentrate near 0.
        let data = skewed(5_000);
        let mut rng = rng_from_seed(3);
        let pmm = Pmm::build(&UnitInterval::new(), 2.0, &data, &mut rng);
        let s = pmm.sample_many(5_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.25).count() as f64 / 5_000.0;
        let true_low = data.iter().filter(|&&x| x < 0.25).count() as f64 / 5_000.0;
        assert!((low - true_low).abs() < 0.1, "PMM mass below 0.25: {low} vs true {true_low}");
    }

    #[test]
    fn memory_scales_with_epsilon_n() {
        let mut rng = rng_from_seed(4);
        let small = Pmm::build(&UnitInterval::new(), 1.0, &skewed(1 << 8), &mut rng);
        let large = Pmm::build(&UnitInterval::new(), 1.0, &skewed(1 << 12), &mut rng);
        assert!(
            large.memory_words() > 8 * small.memory_words(),
            "PMM memory must grow ~linearly in n: {} vs {}",
            small.memory_words(),
            large.memory_words()
        );
    }

    #[test]
    fn depth_clamped_to_domain() {
        let mut rng = rng_from_seed(5);
        let pmm = Pmm::build(&UnitInterval::new(), 1e6, &skewed(1 << 16), &mut rng);
        assert!(pmm.depth() <= 20);
    }
}
