//! The non-private skyline: an exact hierarchical histogram (ε = ∞).
//!
//! Identical machinery to PMM with the noise deleted. Its `W1` error is the
//! pure *resolution* error `O(2^{-L/d})` of abstracting points into depth-`L`
//! cells — the floor that separates "error from privacy/pruning" from
//! "error from finite resolution" in every experiment.

use privhp_core::sampler::TreeSampler;
use privhp_core::tree::PartitionTree;
use privhp_domain::HierarchicalDomain;
use rand::RngCore;

/// An exact (non-private) hierarchical histogram generator.
#[derive(Debug, Clone)]
pub struct NonPrivateHistogram<D: HierarchicalDomain> {
    domain: D,
    tree: PartitionTree,
    depth: usize,
}

impl<D: HierarchicalDomain + Clone> NonPrivateHistogram<D> {
    /// Builds the histogram at the given depth.
    pub fn build(domain: &D, depth: usize, data: &[D::Point]) -> Self {
        assert!(depth >= 1 && depth <= domain.max_level().min(20), "bad depth {depth}");
        let mut tree = PartitionTree::complete(depth, |_| 0.0);
        for p in data {
            let deep = domain.locate(p, depth);
            for l in 0..=depth {
                tree.add_count(&deep.ancestor(l), 1.0);
            }
        }
        Self { domain: domain.clone(), tree, depth }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer.
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        TreeSampler::new(&self.tree, &self.domain).sample_many_into(m, rng, out)
    }

    /// The exact partition tree.
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Depth of the histogram.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Memory footprint in words.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

impl<D: HierarchicalDomain + Clone> privhp_core::Generator<D> for NonPrivateHistogram<D> {
    fn name(&self) -> String {
        "NonPrivate".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        NonPrivateHistogram::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        NonPrivateHistogram::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain.point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        NonPrivateHistogram::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        NonPrivateHistogram::memory_words(self)
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(NonPrivateHistogram::tree(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    #[test]
    fn exact_counts() {
        let data = vec![0.1, 0.1, 0.6, 0.9];
        let h = NonPrivateHistogram::build(&UnitInterval::new(), 2, &data);
        assert_eq!(h.tree().root_count(), Some(4.0));
        let cells: Vec<f64> = (0..4)
            .map(|i| h.tree().count_unchecked(&privhp_domain::Path::from_bits(i, 2)))
            .collect();
        assert_eq!(cells, vec![2.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sampling_reproduces_distribution() {
        let data: Vec<f64> = (0..1_000).map(|i| if i < 750 { 0.2 } else { 0.7 }).collect();
        let h = NonPrivateHistogram::build(&UnitInterval::new(), 4, &data);
        let mut rng = rng_from_seed(1);
        let s = h.sample_many(10_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.5).count() as f64 / 10_000.0;
        assert!((low - 0.75).abs() < 0.02, "mass below 0.5: {low}");
    }

    #[test]
    fn resolution_error_shrinks_with_depth() {
        let data: Vec<f64> = (0..512).map(|i| (i as f64 + 0.5) / 512.0).collect();
        let mut rng = rng_from_seed(2);
        let coarse = NonPrivateHistogram::build(&UnitInterval::new(), 2, &data);
        let fine = NonPrivateHistogram::build(&UnitInterval::new(), 8, &data);
        // Compare W1-ish deviation via mean absolute CDF gap at midpoints.
        let err = |h: &NonPrivateHistogram<UnitInterval>| {
            let s = h.sample_many(20_000, &mut rng_from_seed(3));
            let below: f64 = s.iter().filter(|&&x| x < 0.123).count() as f64 / 20_000.0;
            (below - 0.123).abs()
        };
        assert!(err(&fine) < err(&coarse) + 0.01);
        let _ = &mut rng;
    }
}
