//! The `Smooth` row of Table 1 (Wang et al., JMLR '16) — analytic only.
//!
//! `Smooth` releases answers to *smooth queries* (bounded partial
//! derivatives up to order `K`) with accuracy `O(ε^{-1} n^{-K/(2d+K)})` and
//! memory `O(dn)`. Its guarantee is not stated in Wasserstein distance and
//! its mechanism (polynomial approximation over smooth query classes) is
//! not a synthetic-data generator in the paper's sense, so — as recorded in
//! DESIGN.md — we reproduce its Table-1 *row* as a bound evaluator rather
//! than an empirical comparator.

/// The Table-1 accuracy bound for `Smooth`:
/// `ε^{-1} · n^{-K/(2d+K)}` for smoothness order `K` in dimension `d`.
///
/// # Panics
/// Panics on non-positive `epsilon`, `n`, `d` or `smoothness`.
pub fn smooth_accuracy_bound(epsilon: f64, n: usize, d: usize, smoothness: usize) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(n > 0 && d > 0 && smoothness > 0, "n, d, K must be positive");
    let k = smoothness as f64;
    let exponent = -k / (2.0 * d as f64 + k);
    (n as f64).powf(exponent) / epsilon
}

/// The Table-1 memory row for `Smooth`: `O(dn)` words.
pub fn smooth_memory_words(n: usize, d: usize) -> usize {
    d * n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_with_n() {
        let a = smooth_accuracy_bound(1.0, 1_000, 2, 2);
        let b = smooth_accuracy_bound(1.0, 100_000, 2, 2);
        assert!(b < a);
    }

    #[test]
    fn bound_scales_inverse_epsilon() {
        let a = smooth_accuracy_bound(1.0, 10_000, 2, 2);
        let b = smooth_accuracy_bound(2.0, 10_000, 2, 2);
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn higher_smoothness_helps() {
        let rough = smooth_accuracy_bound(1.0, 10_000, 2, 1);
        let smooth = smooth_accuracy_bound(1.0, 10_000, 2, 8);
        assert!(smooth < rough);
    }

    #[test]
    fn memory_row() {
        assert_eq!(smooth_memory_words(1_000, 3), 3_000);
    }
}
