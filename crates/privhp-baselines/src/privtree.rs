//! PrivTree (Zhang, Xiao & Xie, SIGMOD '16) — the *static* private
//! hierarchical decomposition the paper positions itself against (§2.1:
//! "Static solutions, such as PrivTree, require full access to the dataset
//! and are not suitable for streaming").
//!
//! PrivTree adaptively splits a node when its *biased noisy count* exceeds
//! a threshold: each visited node's count is debiased by `δ·depth(v)` and
//! perturbed with `Laplace(λ)`; the bias telescope caps the number of
//! charged levels so a **constant** λ (independent of tree height) gives
//! ε-DP. We implement it faithfully (Algorithm: θ threshold, δ = λ·ln 2
//! decay, split while `noisy ≥ θ`), because it is the natural
//! quality-ceiling comparison for PrivHP's *streaming* decomposition — and
//! its need to re-scan the data at every split is exactly what bounded
//! memory forbids.

use privhp_core::consistency::enforce_consistency_subtree;
use privhp_core::sampler::TreeSampler;
use privhp_core::tree::PartitionTree;
use privhp_domain::{HierarchicalDomain, Path};
use privhp_dp::laplace::Laplace;
use rand::RngCore;

/// A built PrivTree generator.
#[derive(Debug, Clone)]
pub struct PrivTree<D: HierarchicalDomain> {
    domain: D,
    tree: PartitionTree,
    epsilon: f64,
    max_depth: usize,
}

impl<D: HierarchicalDomain + Clone> PrivTree<D> {
    /// Builds PrivTree over `data` with budget `epsilon`, splitting to at
    /// most `max_depth` levels.
    ///
    /// Following the original paper: with a binary fanout, the noise scale
    /// is `λ = (2·β−1)/(β−1) · 1/ε` with `β = 2`, i.e. `λ = 3/ε`; the
    /// per-level bias is `δ = λ·ln 2`; a node splits while its debiased
    /// noisy count exceeds the threshold `θ`.
    pub fn build<R: RngCore>(
        domain: &D,
        epsilon: f64,
        max_depth: usize,
        data: &[D::Point],
        rng: &mut R,
    ) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(
            max_depth >= 1 && max_depth <= domain.max_level().min(24),
            "bad max depth {max_depth}"
        );
        let lambda = 3.0 / epsilon;
        let delta = lambda * std::f64::consts::LN_2;
        // Threshold: large enough that empty nodes rarely split.
        let theta = 4.0 * lambda;
        let dist = Laplace::new(lambda);

        // PrivTree requires exact counts for every visited node — the
        // "full access to the dataset" the paper's streaming setting rules
        // out. We materialise that access efficiently by recursively
        // partitioning index slices (O(n) per level instead of a full
        // rescan per node, without changing the mechanism).
        let mut tree = PartitionTree::new();
        let mut frontier: Vec<(Path, Vec<usize>)> = vec![(Path::root(), (0..data.len()).collect())];
        while let Some((node, members)) = frontier.pop() {
            let exact = members.len() as f64;
            // PrivTree's biased noisy count: b(v) = max(c(v) − depth·δ,
            // θ − δ) + Laplace(λ). The bias telescope is what makes a
            // constant λ private despite unbounded depth.
            let biased = (exact - delta * node.level() as f64).max(theta - delta);
            let noisy = biased + dist.sample(rng);
            tree.insert(node, noisy.max(0.0));
            if noisy > theta && node.level() < max_depth {
                let left = node.left();
                let (l_members, r_members): (Vec<usize>, Vec<usize>) = members
                    .into_iter()
                    .partition(|&i| domain.locate(&data[i], left.level()) == left);
                frontier.push((left, l_members));
                frontier.push((node.right(), r_members));
            }
        }
        enforce_consistency_subtree(&mut tree, &Path::root());

        Self { domain: domain.clone(), tree, epsilon, max_depth }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer.
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        TreeSampler::new(&self.tree, &self.domain).sample_many_into(m, rng, out)
    }

    /// The adaptive partition tree.
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Privacy budget of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Maximum split depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Memory footprint of the *released summary* in words. (Building it
    /// required `O(n)` access to the raw data — that is the point.)
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

impl<D: HierarchicalDomain + Clone> privhp_core::Generator<D> for PrivTree<D> {
    fn name(&self) -> String {
        "PrivTree".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        PrivTree::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        PrivTree::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain.point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        PrivTree::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        PrivTree::memory_words(self)
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(PrivTree::tree(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    fn clustered(n: usize) -> Vec<f64> {
        (0..n).map(|i| 0.1 + 0.05 * ((i % 97) as f64 / 97.0)).collect()
    }

    #[test]
    fn splits_follow_the_data() {
        let data = clustered(4_000);
        let mut rng = rng_from_seed(1);
        let t = PrivTree::build(&UnitInterval::new(), 2.0, 10, &data, &mut rng);
        // The populated region should be refined deeper than the empty one.
        let deep_in_cluster = t
            .tree()
            .iter()
            .filter(|(p, _)| p.level() >= 5)
            .filter(|(p, _)| {
                let (lo, hi) = UnitInterval::new().cell_bounds(p);
                lo < 0.2 && hi > 0.05
            })
            .count();
        let deep_elsewhere = t
            .tree()
            .iter()
            .filter(|(p, _)| p.level() >= 5)
            .filter(|(p, _)| UnitInterval::new().cell_bounds(p).0 >= 0.5)
            .count();
        assert!(
            deep_in_cluster > deep_elsewhere,
            "adaptive refinement must follow the data: {deep_in_cluster} vs {deep_elsewhere}"
        );
    }

    #[test]
    fn tree_is_consistent_and_samplable() {
        let data = clustered(2_000);
        let mut rng = rng_from_seed(2);
        let t = PrivTree::build(&UnitInterval::new(), 1.0, 8, &data, &mut rng);
        assert!(privhp_core::consistency::find_consistency_violation(
            t.tree(),
            &Path::root(),
            1e-6
        )
        .is_none());
        let s = t.sample_many(500, &mut rng);
        assert!(s.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn captures_cluster_mass() {
        let data = clustered(8_000);
        let mut rng = rng_from_seed(3);
        let t = PrivTree::build(&UnitInterval::new(), 2.0, 10, &data, &mut rng);
        let s = t.sample_many(4_000, &mut rng);
        let near = s.iter().filter(|&&x| (0.05..0.2).contains(&x)).count() as f64 / 4_000.0;
        assert!(near > 0.7, "cluster mass {near} too low");
    }

    #[test]
    fn depth_bounded() {
        let data = clustered(1_000);
        let mut rng = rng_from_seed(4);
        let t = PrivTree::build(&UnitInterval::new(), 1.0, 5, &data, &mut rng);
        assert!(t.tree().depth() <= 5);
    }
}
