//! The uniform baseline: ignore the data, sample uniformly from `Ω`.
//!
//! Perfectly private (the output is data-independent, so it is ε-DP for
//! every ε ≥ 0, indeed 0-DP) and memoryless — the floor any useful
//! generator must beat. Against a concentrated input its `W1` error is the
//! mean distance from the data to the uniform measure, which the Table-1
//! experiment reports as the "no learning" reference row.

use privhp_core::tree::PartitionTree;
use privhp_domain::{HierarchicalDomain, Path};
use rand::RngCore;

/// The data-independent uniform generator over a domain.
#[derive(Debug, Clone)]
pub struct UniformBaseline<D: HierarchicalDomain> {
    domain: D,
    /// The root-only partition tree (all mass on `Ω`, uniform within it):
    /// the exact tree encoding of the uniform density, so tree-based
    /// evaluators can score this baseline without Monte-Carlo noise.
    tree: PartitionTree,
}

impl<D: HierarchicalDomain + Clone> UniformBaseline<D> {
    /// Creates the baseline for a domain.
    pub fn new(domain: &D) -> Self {
        let mut tree = PartitionTree::new();
        tree.insert(Path::root(), 1.0);
        Self { domain: domain.clone(), tree }
    }

    /// Draws one uniform point from `Ω`.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        self.domain.sample_uniform(&Path::root(), rng)
    }

    /// Draws `m` uniform points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// Memory footprint in words (the domain descriptor only).
    pub fn memory_words(&self) -> usize {
        1
    }
}

impl<D: HierarchicalDomain + Clone> privhp_core::Generator<D> for UniformBaseline<D> {
    fn name(&self) -> String {
        "Uniform".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        self.domain.sample_uniform(&Path::root(), &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain.point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        // Every draw is uniform over the whole space, so the batch hook is
        // fed root paths chunk by chunk.
        const CHUNK: usize = 1024;
        let roots = vec![Path::root(); m.min(CHUNK)];
        let mut remaining = m;
        while remaining > 0 {
            let c = remaining.min(CHUNK);
            self.domain.sample_uniform_many(&roots[..c], &mut rng, out);
            remaining -= c;
        }
    }

    fn memory_words(&self) -> usize {
        1
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(&self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::{Hypercube, UnitInterval};
    use privhp_dp::rng::rng_from_seed;

    #[test]
    fn covers_the_interval() {
        let b = UniformBaseline::new(&UnitInterval::new());
        let mut rng = rng_from_seed(1);
        let s = b.sample_many(8_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.5).count() as f64 / 8_000.0;
        assert!((low - 0.5).abs() < 0.03);
    }

    #[test]
    fn covers_the_cube() {
        let b = UniformBaseline::new(&Hypercube::new(3));
        let mut rng = rng_from_seed(2);
        let s = b.sample_many(1_000, &mut rng);
        assert!(s.iter().all(|p| p.len() == 3));
        let corner = s.iter().filter(|p| p.iter().all(|&x| x < 0.5)).count() as f64 / 1_000.0;
        assert!((corner - 0.125).abs() < 0.05, "octant mass {corner}");
    }
}
