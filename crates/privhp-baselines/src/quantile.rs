//! Bounded-space private quantiles (Alabi, Ben-Eliezer & Chaturvedi —
//! paper §2.2).
//!
//! The paper notes a quantile estimator yields a synthetic data generator:
//! "sampling a value uniformly in \[0,1\] and returning the quantile.
//! However, their method only works for finite and ordered input domains
//! and, thus, does not extend to general metric spaces."
//!
//! We implement that recipe for the finite ordered domain obtained by
//! discretising `[0,1]` into `2^grid_bits` buckets: a bounded-memory dyadic
//! counter tree over the fixed grid is perturbed per level (the standard
//! hierarchical quantile release; sensitivity 1 per level), quantile
//! queries walk the noisy tree, and synthetic points are inverse-quantile
//! draws. Memory is `O(2^grid_bits)` — fixed in advance, independent of
//! `n`, but also *unable to refine* beyond the grid: exactly the
//! "predefined queries / fixed domain" limitation PrivHP removes.

use privhp_core::consistency::enforce_consistency_subtree;
use privhp_core::tree::PartitionTree;
use privhp_domain::Path;
use privhp_dp::budget::BudgetSplit;
use privhp_dp::laplace::Laplace;
use rand::Rng;
use rand::RngCore;

/// A bounded-space private quantile summary over a fixed `[0,1]` grid.
#[derive(Debug, Clone)]
pub struct BoundedQuantiles {
    tree: PartitionTree,
    grid_bits: usize,
    epsilon: f64,
}

impl BoundedQuantiles {
    /// Builds the summary over `data` at privacy `epsilon` with a
    /// `2^grid_bits`-bucket grid.
    ///
    /// # Panics
    /// Panics unless `1 ≤ grid_bits ≤ 16` and `epsilon > 0`.
    pub fn build<R: RngCore>(epsilon: f64, grid_bits: usize, data: &[f64], rng: &mut R) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!((1..=16).contains(&grid_bits), "grid_bits must be in 1..=16");

        let split = BudgetSplit::uniform(epsilon, grid_bits + 1).expect("valid split");
        let mut tree = PartitionTree::complete(grid_bits, |_| 0.0);
        for &x in data {
            assert!((0.0..=1.0).contains(&x), "point {x} outside [0,1]");
            let cell = ((x.min(1.0 - f64::EPSILON)) * (1u64 << grid_bits) as f64) as u64;
            let leaf = Path::from_bits(cell, grid_bits);
            for l in 0..=grid_bits {
                tree.add_count(&leaf.ancestor(l), 1.0);
            }
        }
        for l in 0..=grid_bits {
            let dist = Laplace::new(1.0 / split.sigma(l));
            let nodes: Vec<Path> = tree.level_nodes(l).to_vec();
            for node in nodes {
                let noise = dist.sample(rng);
                tree.add_count(&node, noise);
            }
        }
        enforce_consistency_subtree(&mut tree, &Path::root());
        Self { tree, grid_bits, epsilon }
    }

    /// The private `q`-quantile (`q ∈ [0,1]`), as a grid-cell midpoint.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile rank must be in [0,1]");
        let total = self.tree.root_count().unwrap_or(0.0);
        let mut target = q * total;
        let mut node = Path::root();
        for _ in 0..self.grid_bits {
            let left = node.left();
            let c_left = self.tree.count_unchecked(&left);
            if target <= c_left || self.tree.count_unchecked(&node.right()) <= 0.0 {
                node = left;
            } else {
                target -= c_left;
                node = node.right();
            }
        }
        let width = 1.0 / (1u64 << self.grid_bits) as f64;
        (node.bits() as f64 + 0.5) * width
    }

    /// Draws one synthetic point: a uniform rank pushed through the
    /// quantile function, jittered uniformly within the grid cell.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let q = rng.gen_range(0.0..1.0);
        let width = 1.0 / (1u64 << self.grid_bits) as f64;
        let mid = self.quantile(q);
        (mid + rng.gen_range(-0.5..0.5) * width).clamp(0.0, 1.0 - f64::EPSILON)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<f64> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// Privacy of the release.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Memory footprint in words — fixed by the grid, independent of `n`.
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

impl privhp_core::Generator<privhp_domain::UnitInterval> for BoundedQuantiles {
    fn name(&self) -> String {
        "Quantiles".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> f64 {
        BoundedQuantiles::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<f64> {
        BoundedQuantiles::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        1
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        out.reserve(m);
        for _ in 0..m {
            out.push(BoundedQuantiles::sample(self, &mut rng));
        }
    }

    fn memory_words(&self) -> usize {
        BoundedQuantiles::memory_words(self)
    }

    // `tree()` stays `None` deliberately: the release's sampling path goes
    // through the (clamped, jittered) quantile walk, so evaluators must
    // score the *samples*, not the internal counter tree.

    fn dims(&self) -> privhp_core::DimSupport {
        privhp_core::DimSupport::OneDimOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_dp::rng::rng_from_seed;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let data = ramp(8_192);
        let mut rng = rng_from_seed(1);
        let q = BoundedQuantiles::build(4.0, 8, &data, &mut rng);
        for rank in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let est = q.quantile(rank);
            assert!((est - rank).abs() < 0.05, "rank {rank}: estimate {est} too far");
        }
    }

    #[test]
    fn quantiles_monotone() {
        let data = ramp(4_096);
        let mut rng = rng_from_seed(2);
        let q = BoundedQuantiles::build(2.0, 8, &data, &mut rng);
        let mut prev = 0.0;
        for i in 0..=20 {
            let est = q.quantile(i as f64 / 20.0);
            assert!(est >= prev - 1e-9, "quantile function must be monotone");
            prev = est;
        }
    }

    #[test]
    fn synthetic_data_tracks_distribution() {
        // Bimodal data; the inverse-quantile generator must reproduce the
        // valley.
        let mut data = vec![0.2; 3_000];
        data.extend(vec![0.8; 1_000]);
        let mut rng = rng_from_seed(3);
        let q = BoundedQuantiles::build(4.0, 9, &data, &mut rng);
        let s = q.sample_many(8_000, &mut rng);
        let low = s.iter().filter(|&&x| x < 0.5).count() as f64 / 8_000.0;
        assert!((low - 0.75).abs() < 0.06, "low-mode mass {low}");
    }

    #[test]
    fn memory_independent_of_n() {
        let mut rng = rng_from_seed(4);
        let small = BoundedQuantiles::build(1.0, 8, &ramp(512), &mut rng);
        let large = BoundedQuantiles::build(1.0, 8, &ramp(1 << 15), &mut rng);
        assert_eq!(small.memory_words(), large.memory_words());
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn out_of_domain_rejected() {
        let mut rng = rng_from_seed(5);
        let _ = BoundedQuantiles::build(1.0, 4, &[1.5], &mut rng);
    }
}
