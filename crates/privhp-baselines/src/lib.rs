#![warn(missing_docs)]

//! Table-1 comparators: the prior-work methods PrivHP is measured against.
//!
//! | Method | Paper row | Accuracy (paper) | Memory (paper) |
//! |--------|-----------|------------------|----------------|
//! | [`pmm::Pmm`] | He et al. '23 | `O(log²(εn)/(εn))` (d=1), `O((εn)^{-1/d})` (d≥2) | `O(εn)` |
//! | [`srrw::Srrw`] | Boedihardjo et al. | `O(log^{3/2}(εn)·(εn)^{-1/d})` | `O(dn)` |
//! | [`uniform::UniformBaseline`] | — | data-independent floor | `O(1)` |
//! | [`nonprivate::NonPrivateHistogram`] | — | skyline (ε = ∞) | `O(εn)` |
//! | [`smooth`] | Wang et al. | analytic row only (see DESIGN.md) | `O(dn)` |
//!
//! PMM is implemented faithfully (full hierarchical decomposition with
//! Lemma-5 budget allocation and the same consistency step — PrivHP reduces
//! to PMM when nothing is pruned). SRRW's general construction requires the
//! private-measure machinery of its paper; we implement the standard
//! dyadic-tree (binary mechanism) private CDF it is built around, which has
//! the same `log`-factor-worse error profile — the substitution is recorded
//! in DESIGN.md.

pub mod nonprivate;
pub mod pmm;
pub mod privtree;
pub mod quantile;
pub mod smooth;
pub mod srrw;
pub mod uniform;

pub use nonprivate::NonPrivateHistogram;
pub use pmm::Pmm;
pub use privtree::PrivTree;
pub use quantile::BoundedQuantiles;
pub use smooth::smooth_accuracy_bound;
pub use srrw::Srrw;
pub use uniform::UniformBaseline;
