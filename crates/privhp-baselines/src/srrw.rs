//! SRRW-style baseline — Boedihardjo, Strohmer & Vershynin's
//! "super-regular random walk" private measure (paper Table 1, §2.3).
//!
//! The original construction perturbs the empirical measure with a
//! super-regular random walk whose increments are coupled across dyadic
//! scales; its utility is `O(log^{3/2}(εn)·(εn)^{-1/d})` — optimal up to the
//! `log^{3/2}` factor — with memory `O(dn)`.
//!
//! **Substitution (recorded in DESIGN.md):** we implement the dyadic-tree
//! (binary mechanism) private cumulative measure that the walk is built
//! around: every node of the complete dyadic tree over the leaf cells
//! receives independent `Laplace(L/ε)` noise (sensitivity `L` because a
//! point touches one node per level and the budget is *not* rebalanced —
//! this uniform allocation is exactly what costs the extra log factor
//! versus PMM's optimised split), counts are made consistent, and samples
//! are drawn from the resulting measure. The error profile keeps SRRW's
//! shape: `(εn)^{-1/d}` scaling with a worse log factor than PMM.

use privhp_core::consistency::enforce_consistency_subtree;
use privhp_core::sampler::TreeSampler;
use privhp_core::tree::PartitionTree;
use privhp_domain::{HierarchicalDomain, Path};
use privhp_dp::budget::BudgetSplit;
use privhp_dp::laplace::Laplace;
use rand::RngCore;

/// A built SRRW-style generator.
#[derive(Debug, Clone)]
pub struct Srrw<D: HierarchicalDomain> {
    domain: D,
    tree: PartitionTree,
    depth: usize,
    epsilon: f64,
}

impl<D: HierarchicalDomain + Clone> Srrw<D> {
    /// Builds the generator over `data` with privacy `epsilon`, at depth
    /// `⌈log₂(εn)⌉` (clamped like PMM).
    pub fn build<R: RngCore>(domain: &D, epsilon: f64, data: &[D::Point], rng: &mut R) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let n = data.len().max(2);
        let depth = ((epsilon * n as f64).max(2.0).log2().ceil() as usize)
            .clamp(1, domain.max_level().min(20));
        Self::build_with_depth(domain, epsilon, depth, data, rng)
    }

    /// Builds with an explicit depth.
    pub fn build_with_depth<R: RngCore>(
        domain: &D,
        epsilon: f64,
        depth: usize,
        data: &[D::Point],
        rng: &mut R,
    ) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(depth >= 1 && depth <= domain.max_level().min(20), "bad depth {depth}");

        // Uniform budget split — the defining difference from PMM's
        // optimised allocation, and the source of the extra log factor.
        let split = BudgetSplit::uniform(epsilon, depth + 1).expect("valid split");

        let mut tree = PartitionTree::complete(depth, |_| 0.0);
        for p in data {
            let deep = domain.locate(p, depth);
            for l in 0..=depth {
                tree.add_count(&deep.ancestor(l), 1.0);
            }
        }
        for l in 0..=depth {
            let dist = Laplace::new(1.0 / split.sigma(l));
            let nodes: Vec<Path> = tree.level_nodes(l).to_vec();
            for node in nodes {
                let noise = dist.sample(rng);
                tree.add_count(&node, noise);
            }
        }
        enforce_consistency_subtree(&mut tree, &Path::root());

        Self { domain: domain.clone(), tree, depth, epsilon }
    }

    /// Draws one synthetic point.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> D::Point {
        TreeSampler::new(&self.tree, &self.domain).sample(rng)
    }

    /// Draws `m` synthetic points.
    pub fn sample_many<R: RngCore>(&self, m: usize, rng: &mut R) -> Vec<D::Point> {
        TreeSampler::new(&self.tree, &self.domain).sample_many(m, rng)
    }

    /// Draws `m` synthetic points into `out` as a flat row-major buffer.
    pub fn sample_many_into<R: RngCore>(&self, m: usize, rng: &mut R, out: &mut Vec<f64>) {
        TreeSampler::new(&self.tree, &self.domain).sample_many_into(m, rng, out)
    }

    /// The consistent partition tree.
    pub fn tree(&self) -> &PartitionTree {
        &self.tree
    }

    /// Hierarchy depth used.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Privacy level.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Memory footprint in words (`O(εn)` dense tree, within the paper's
    /// `O(dn)` row).
    pub fn memory_words(&self) -> usize {
        self.tree.memory_words()
    }
}

impl<D: HierarchicalDomain + Clone> privhp_core::Generator<D> for Srrw<D> {
    fn name(&self) -> String {
        "SRRW".into()
    }

    fn sample_point(&self, mut rng: &mut dyn RngCore) -> D::Point {
        Srrw::sample(self, &mut rng)
    }

    fn sample_many_points(&self, m: usize, mut rng: &mut dyn RngCore) -> Vec<D::Point> {
        Srrw::sample_many(self, m, &mut rng)
    }

    fn point_lanes(&self) -> usize {
        self.domain.point_lanes()
    }

    fn sample_many_into(&self, m: usize, mut rng: &mut dyn RngCore, out: &mut Vec<f64>) {
        Srrw::sample_many_into(self, m, &mut rng, out)
    }

    fn memory_words(&self) -> usize {
        Srrw::memory_words(self)
    }

    fn tree(&self) -> Option<&PartitionTree> {
        Some(Srrw::tree(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privhp_domain::UnitInterval;
    use privhp_dp::rng::rng_from_seed;

    fn bimodal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    0.2 + 0.01 * ((i % 7) as f64)
                } else {
                    0.8 + 0.01 * ((i % 5) as f64)
                }
            })
            .collect()
    }

    #[test]
    fn builds_and_samples() {
        let data = bimodal(2_000);
        let mut rng = rng_from_seed(1);
        let g = Srrw::build(&UnitInterval::new(), 1.0, &data, &mut rng);
        let s = g.sample_many(500, &mut rng);
        assert!(s.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn consistent_after_build() {
        let data = bimodal(800);
        let mut rng = rng_from_seed(2);
        let g = Srrw::build_with_depth(&UnitInterval::new(), 1.0, 7, &data, &mut rng);
        assert!(privhp_core::consistency::find_consistency_violation(
            g.tree(),
            &Path::root(),
            1e-6
        )
        .is_none());
    }

    #[test]
    fn captures_bimodality() {
        let data = bimodal(6_000);
        let mut rng = rng_from_seed(3);
        let g = Srrw::build(&UnitInterval::new(), 2.0, &data, &mut rng);
        let s = g.sample_many(6_000, &mut rng);
        let mid = s.iter().filter(|&&x| (0.4..0.6).contains(&x)).count() as f64 / 6_000.0;
        assert!(mid < 0.15, "valley between modes should stay sparse: {mid}");
    }

    #[test]
    fn noisier_than_pmm_at_same_budget() {
        // The uniform split wastes budget on cheap levels; over repeated
        // trials the per-leaf noise must be at least as large as PMM's.
        // We compare the total absolute deviation of leaf masses.
        let data = bimodal(4_000);
        let depth = 8;
        let mut dev_srrw = 0.0;
        let mut dev_pmm = 0.0;
        for seed in 0..8 {
            let mut rng = rng_from_seed(100 + seed);
            let s = Srrw::build_with_depth(&UnitInterval::new(), 0.5, depth, &data, &mut rng);
            let mut rng = rng_from_seed(100 + seed);
            let p = crate::pmm::Pmm::build_with_depth(
                &UnitInterval::new(),
                0.5,
                depth,
                &data,
                &mut rng,
            );
            // Exact leaf masses for reference.
            let mut exact = vec![0.0f64; 1 << depth];
            for &x in &data {
                exact[(x * (1 << depth) as f64) as usize] += 1.0;
            }
            for (i, &e) in exact.iter().enumerate() {
                let path = Path::from_bits(i as u64, depth);
                dev_srrw += (s.tree().count_unchecked(&path) - e).abs();
                dev_pmm += (p.tree().count_unchecked(&path) - e).abs();
            }
        }
        assert!(
            dev_srrw > dev_pmm * 0.8,
            "uniform split should not beat the optimal split: srrw={dev_srrw}, pmm={dev_pmm}"
        );
    }
}
