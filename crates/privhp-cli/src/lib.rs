#![warn(missing_docs)]

//! Library backing the `privhp` command-line tool.
//!
//! The CLI wraps the workspace's public API in four subcommands:
//!
//! ```text
//! privhp build  --input data.csv --epsilon 1.0 --k 16 --domain interval --output release.json
//! privhp sample --release release.json --count 10000 [--seed 7]
//! privhp query  --release release.json --range 0.2,0.4 | --cdf 0.3 | --quantile 0.5 | --mean
//! privhp info   --release release.json
//! ```
//!
//! A *release file* is the serialised ε-DP output of Algorithm 1 — the
//! consistent partition tree plus the domain and configuration needed to
//! sample from it. Because the release is already private, the file can be
//! stored, shipped and queried indefinitely (post-processing, paper
//! Lemma 2); the raw input never appears in it.

pub mod args;
pub mod commands;
pub mod csvio;
pub mod release;

pub use args::{parse_args, Command, ParseError};
pub use release::{DomainSpec, ReleaseFile};
