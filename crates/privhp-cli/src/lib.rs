#![warn(missing_docs)]

//! Library backing the `privhp` command-line tool.
//!
//! The CLI wraps the workspace's public API in seven subcommands:
//!
//! ```text
//! privhp build     --input data.csv --epsilon 1.0 --k 16 --domain interval --output release.json
//! privhp continual --input data.csv --epsilon 1.0 --k 16 --output release.json [--horizon-levels H]
//! privhp sample    --release release.json --count 10000 [--seed 7]
//! privhp query     --release release.json --range 0.2,0.4 | --cdf 0.3 | --quantile 0.5 | --mean
//! privhp info      --release release.json
//! privhp serve     --addr 127.0.0.1:4750 [--release name=release.json]...
//! privhp client    --addr 127.0.0.1:4750 --json '{"op":"list"}'
//! ```
//!
//! A *release file* is the serialised ε-DP output of Algorithm 1 — the
//! consistent partition tree plus the domain and configuration needed to
//! sample from it (`continual` builds the same format through the
//! continual-observation mechanism). Because the release is already
//! private, the file can be stored, shipped, queried indefinitely and
//! served to any number of clients (`serve`/`client`, the
//! [`privhp_serve`] crate) — all post-processing, paper Lemma 2; the raw
//! input never appears in it.

pub mod args;
pub mod commands;
pub mod csvio;

pub use args::{parse_args, Command, ParseError};
// The release-file format moved to `privhp_core::release` so the serving
// layer shares it; re-exported here for the CLI's historical paths.
pub use privhp_core::release;
pub use privhp_core::release::{DomainSpec, ReleaseFile, ReleaseFormat};
