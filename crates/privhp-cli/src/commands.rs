//! Subcommand implementations. Each returns its stdout payload as a
//! `String` so the logic is unit-testable without process spawning.
//!
//! The build/sample paths are generic over the domain through
//! [`privhp_core::Generator`]: the `match` over [`DomainSpec`] only picks
//! the domain value and the CSV codec, then hands off to one shared
//! trait-driven pipeline.

use std::io::Write;

use privhp_core::{
    ContinualPrivHp, Generator, PrivHpBuilder, PrivHpConfig, TreeQuery, INGEST_CHUNK,
};
use privhp_domain::{HierarchicalDomain, Hypercube, Ipv4Space, UnitInterval};
use privhp_dp::rng::rng_from_seed;
use privhp_serve::{
    Client, ClusterClient, LoadedRelease, Registry, RetryPolicy, Server, ServerConfig,
};
use serde::Value;

use crate::args::QueryKind;
use crate::csvio;
use crate::release::{merge_releases, DomainSpec, ReleaseFile, ReleaseFormat};

/// The Corollary-1 configuration for a domain/budget, with the IPv4
/// hierarchy's 32-level cap applied — shared by the 1-pass and continual
/// build paths so both produce identically-configured releases.
fn config_for(domain: DomainSpec, epsilon: f64, n: usize, k: usize, seed: u64) -> PrivHpConfig {
    let base = PrivHpConfig::for_domain(epsilon, n, k).with_seed(seed);
    match domain {
        DomainSpec::Ipv4 => {
            // The address hierarchy is at most 32 levels deep; clamp the
            // Corollary-1 defaults to it.
            let depth = base.depth.min(Ipv4Space::new().max_level()).max(2);
            let l_star = base.l_star.min(depth - 1);
            base.with_levels(l_star, depth)
        }
        _ => base,
    }
}

/// Shared build pipeline: Algorithm 1 over a CSV stream, wrapped into a
/// versioned release file. Domain-agnostic — callers only choose the
/// domain value, the per-line codec and the configuration.
///
/// With one thread the CSV is parsed and ingested in [`INGEST_CHUNK`]-sized
/// batches (no full point vector is ever materialised); with `threads > 1`
/// the parsed stream is sharded across that many ingest workers and merged
/// — bit-identical to the sequential build, so the release bytes do not
/// depend on the thread count.
fn build_release<D>(
    domain: &D,
    spec: DomainSpec,
    config: PrivHpConfig,
    csv: &str,
    parse_line: impl Fn(usize, &str) -> Result<D::Point, String>,
    seed: u64,
    threads: usize,
) -> Result<ReleaseFile, String>
where
    D: HierarchicalDomain + Clone + Send + Sync,
    D::Point: Send + Sync,
{
    let mut rng = rng_from_seed(seed ^ 0xC11);
    let mut builder = PrivHpBuilder::new(domain.clone(), config.clone(), &mut rng)
        .map_err(|e| format!("configuration error: {e}"))?;
    if threads > 1 {
        let mut data: Vec<D::Point> = Vec::new();
        csvio::parse_batches(csv, INGEST_CHUNK, parse_line, |b| data.extend_from_slice(b))?;
        builder.ingest_par(&data, threads);
    } else {
        csvio::parse_batches(csv, INGEST_CHUNK, parse_line, |b| builder.ingest_batch(b))?;
    }
    let g = builder.finalize();
    Ok(ReleaseFile::new(spec, config, g.tree().clone()))
}

/// Runs `privhp build` on in-memory CSV text; returns the release bytes
/// in the requested encoding (JSON or the `.phpr` binary container —
/// both lossless, so the choice never changes what downstream consumers
/// see).
pub fn run_build(
    csv: &str,
    epsilon: f64,
    k: usize,
    domain: DomainSpec,
    seed: u64,
    threads: usize,
    format: ReleaseFormat,
) -> Result<Vec<u8>, String> {
    let n = csvio::payload_count(csv).max(2);
    let config = config_for(domain, epsilon, n, k, seed);
    let release = match domain {
        DomainSpec::Interval => build_release(
            &UnitInterval::new(),
            domain,
            config,
            csv,
            csvio::parse_interval_line,
            seed,
            threads,
        )?,
        DomainSpec::Cube { dim } => build_release(
            &Hypercube::new(dim),
            domain,
            config,
            csv,
            |no, line| csvio::parse_cube_line(no, line, dim),
            seed,
            threads,
        )?,
        DomainSpec::Ipv4 => build_release(
            &Ipv4Space::new(),
            domain,
            config,
            csv,
            csvio::parse_ipv4_line,
            seed,
            threads,
        )?,
    };
    Ok(release.to_bytes(format))
}

/// Runs `privhp merge-releases`: reads each input (either encoding,
/// auto-detected), merges them with [`merge_releases`] (tree union, ε by
/// parallel composition) and writes the result to `output` in the
/// requested encoding. Returns a one-line summary.
pub fn run_merge_releases(
    output: &str,
    inputs: &[String],
    format: ReleaseFormat,
) -> Result<String, String> {
    let mut releases = Vec::with_capacity(inputs.len());
    for path in inputs {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        releases.push(ReleaseFile::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?);
    }
    let merged = merge_releases(&releases)?;
    let epsilon = merged.config.epsilon;
    let nodes = merged.tree.len();
    std::fs::write(output, merged.to_bytes(format))
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    Ok(format!(
        "merged {} release(s) into {output} ({} format, epsilon {epsilon}, {nodes} nodes)\n",
        inputs.len(),
        format.describe(),
    ))
}

/// Shared continual-observation build pipeline: every counter/sketch is
/// its continual counterpart, so the same state could be released at any
/// checkpoint; here we release once at end-of-stream and persist that.
fn continual_release<D>(
    domain: &D,
    spec: DomainSpec,
    config: PrivHpConfig,
    csv: &str,
    parse_line: impl Fn(usize, &str) -> Result<D::Point, String>,
    seed: u64,
    horizon_levels: usize,
) -> Result<ReleaseFile, String>
where
    D: HierarchicalDomain + Clone,
{
    let mut continual = ContinualPrivHp::new(domain.clone(), config.clone(), horizon_levels)
        .map_err(|e| format!("configuration error: {e}"))?;
    let mut rng = rng_from_seed(seed ^ 0xC0E7);
    csvio::parse_batches(csv, INGEST_CHUNK, parse_line, |batch| {
        for point in batch {
            continual.ingest(point, &mut rng);
        }
    })?;
    let g = continual.release();
    Ok(ReleaseFile::new(spec, config, g.tree().clone()))
}

/// Runs `privhp continual` on in-memory CSV text; returns the release
/// JSON (same file format as `privhp build` — downstream consumers cannot
/// tell the mechanisms apart).
pub fn run_continual(
    csv: &str,
    epsilon: f64,
    k: usize,
    domain: DomainSpec,
    seed: u64,
    horizon_levels: Option<usize>,
) -> Result<String, String> {
    let n = csvio::payload_count(csv).max(2);
    // The binary mechanism is sized for a horizon of 2^H items; default to
    // the smallest horizon covering the input.
    let horizon = match horizon_levels {
        Some(h) => {
            // `ContinualPrivHp` computes `1usize << H`, so H must stay a
            // valid shift; anything near that bound is absurd anyway.
            if h >= usize::BITS as usize {
                return Err(format!(
                    "--horizon-levels {h} is out of range (max {})",
                    usize::BITS - 1
                ));
            }
            if n > 1usize << h {
                return Err(format!(
                    "--horizon-levels {h} allows 2^{h} items but the input has {n}"
                ));
            }
            h
        }
        None => n.next_power_of_two().trailing_zeros() as usize,
    };
    let config = config_for(domain, epsilon, n, k, seed);
    let release = match domain {
        DomainSpec::Interval => continual_release(
            &UnitInterval::new(),
            domain,
            config,
            csv,
            csvio::parse_interval_line,
            seed,
            horizon,
        )?,
        DomainSpec::Cube { dim } => continual_release(
            &Hypercube::new(dim),
            domain,
            config,
            csv,
            |no, line| csvio::parse_cube_line(no, line, dim),
            seed,
            horizon,
        )?,
        DomainSpec::Ipv4 => continual_release(
            &Ipv4Space::new(),
            domain,
            config,
            csv,
            csvio::parse_ipv4_line,
            seed,
            horizon,
        )?,
    };
    Ok(release.to_json())
}

/// Maps a `--*-timeout-ms` flag onto a config slot: absent keeps the
/// server default, `0` disables the deadline, anything else sets it.
fn timeout_flag(
    flag: Option<u64>,
    default: Option<std::time::Duration>,
) -> Option<std::time::Duration> {
    match flag {
        None => default,
        Some(0) => None,
        Some(ms) => Some(std::time::Duration::from_millis(ms)),
    }
}

/// Runs `privhp serve`: loads the named releases, binds, prints one
/// ready line (so scripts know the port is live), and blocks until a
/// `shutdown` request. Returns the post-shutdown summary line.
#[allow(clippy::too_many_arguments)]
pub fn run_serve(
    addr: &str,
    releases: &[(String, String)],
    workers: Option<usize>,
    max_sample_n: Option<usize>,
    request_timeout_ms: Option<u64>,
    idle_timeout_ms: Option<u64>,
    fault_seed: Option<u64>,
    snapshot: Option<String>,
) -> Result<String, String> {
    let registry = Registry::new();
    // Restore from the snapshot first (if it exists yet), so explicit
    // `--release` flags win over the remembered registry on conflicts.
    // Entries whose release files rotted since the snapshot are skipped
    // with a warning — a degraded boot still boots.
    if let Some(path) = snapshot.as_deref() {
        if std::path::Path::new(path).exists() {
            let outcome = registry.restore_snapshot(path)?;
            for (name, why) in &outcome.skipped {
                eprintln!("privhp serve: warning: skipping snapshot entry '{name}': {why}");
            }
            if outcome.restored > 0 {
                println!("privhp serve: restored {} release(s) from {path}", outcome.restored);
            }
        }
    }
    for (name, path) in releases {
        registry.insert(LoadedRelease::load(name, path)?);
    }
    // Record the boot-time registry right away: a server started from
    // `--release` flags (e.g. a cluster shard) can then be restarted
    // from its snapshot even if it never serves a hot `load`.
    if let Some(path) = snapshot.as_deref() {
        if !registry.is_empty() {
            registry.write_snapshot(path)?;
        }
    }
    // The CLI flag wins over PRIVHP_FAULT_SEED; a set-but-unparseable
    // env var is an error rather than silently-disabled chaos.
    let fault_seed = match fault_seed {
        Some(seed) => Some(seed),
        None => privhp_serve::fault::seed_from_env()?,
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        workers: workers.unwrap_or(defaults.workers),
        max_sample_n: max_sample_n.unwrap_or(defaults.max_sample_n),
        request_timeout: timeout_flag(request_timeout_ms, defaults.request_timeout),
        idle_timeout: timeout_flag(idle_timeout_ms, defaults.idle_timeout),
        fault_seed,
        snapshot_path: snapshot,
        ..defaults
    };
    let server = Server::bind_with(addr, registry, config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "privhp serve: {} release(s) loaded, listening on {}",
        server.registry().len(),
        server.local_addr()
    );
    let _ = std::io::stdout().flush();
    server.run();
    Ok(format!("server shut down after {} request(s)\n", server.stats().requests()))
}

/// Runs `privhp client`: one request frame in, one response line out.
/// With `binary`, the connection negotiates the binary bulk-sample
/// encoding first and any returned payload is decoded back into the
/// exact line the JSON encoding would have produced, so scripts can diff
/// the two paths byte for byte. `retries`/`timeout_ms` shape the
/// [`RetryPolicy`]; the default `--retries 0` is the single-shot client.
pub fn run_client(
    addr: &str,
    request: &str,
    binary: bool,
    timeout_ms: Option<u64>,
    retries: u32,
) -> Result<String, String> {
    let mut policy = RetryPolicy { retries, ..RetryPolicy::default() };
    if let Some(ms) = timeout_ms {
        policy.timeout = std::time::Duration::from_millis(ms);
    }
    if !binary {
        let line = privhp_serve::oneshot_with(addr, request, policy).map_err(|e| e.to_string())?;
        return Ok(format!("{line}\n"));
    }
    let mut client = Client::connect_with(addr, policy).map_err(|e| e.to_string())?;
    client.set_binary()?;
    let (header, payload) = client.send_expect_payload(request)?;
    decode_binary_reply(header, payload)
}

/// Decodes a binary-negotiated reply back into the exact line the JSON
/// encoding would have produced: the header minus the binary-only
/// fields, with the payload rendered as `points`. Replies without a
/// payload (errors, non-sample ops) pass through untouched. Shared by
/// `privhp client --binary` and `privhp cluster-client --binary` so the
/// two paths stay diffable byte for byte.
fn decode_binary_reply(header: String, payload: Option<Vec<f64>>) -> Result<String, String> {
    let Some(lanes) = payload else {
        return Ok(format!("{header}\n"));
    };
    let parsed = serde_json::parse_value_str(&header)
        .map_err(|e| format!("unparseable sample header '{header}': {e}"))?;
    let Value::Object(fields) = parsed else {
        return Err(format!("sample header is not an object: {header}"));
    };
    let lookup = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("sample header is missing '{key}': {header}"))
    };
    let domain =
        lookup("domain")?.as_str().ok_or_else(|| format!("bad domain in header: {header}"))?;
    let lane_count =
        lookup("lanes")?.as_u64().ok_or_else(|| format!("bad lane count in header: {header}"))?;
    let points = privhp_serve::protocol::points_value(domain, lane_count as usize, &lanes)?;
    // Re-emit the header minus the binary-only fields, with the decoded
    // points appended — field order matches the server's JSON encoding.
    let mut json_fields: Vec<(String, Value)> = fields
        .into_iter()
        .filter(|(k, _)| !matches!(k.as_str(), "encoding" | "domain" | "lanes"))
        .collect();
    json_fields.push(("points".to_string(), points));
    Ok(format!("{}\n", serde_json::value_to_string(&Value::Object(json_fields))))
}

/// Runs `privhp cluster`: spawns `shards` local `privhp serve` child
/// processes on consecutive ports starting at `base_addr`, partitioning
/// the `--release` flags with the same rendezvous hashing the
/// [`ClusterClient`] routes by — each shard boots exactly the releases
/// it owns under replication factor `replication`. With `snapshot_dir`,
/// shard `i` gets `--registry-snapshot {dir}/shard-{i}.snapshot`, so a
/// killed shard can be restarted with its slice intact. Prints one line
/// per shard plus a summary with the endpoint list, then waits for the
/// children (a fanned-out `shutdown` from any cluster client ends the
/// fleet; one shard dying does not).
pub fn run_cluster(
    shards: usize,
    base_addr: &str,
    releases: &[(String, String)],
    replication: usize,
    snapshot_dir: Option<String>,
) -> Result<String, String> {
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let (host, base_port) = base_addr
        .rsplit_once(':')
        .ok_or_else(|| format!("--addr '{base_addr}' is not host:port"))?;
    let base_port: u32 =
        base_port.parse().map_err(|e| format!("bad port in '{base_addr}': {e}"))?;
    if base_port + shards as u32 - 1 > u16::MAX as u32 {
        return Err(format!("--shards {shards} from port {base_port} overflows the port range"));
    }
    let endpoints: Vec<String> =
        (0..shards).map(|i| format!("{host}:{}", base_port + i as u32)).collect();
    // Sanity-check releases before spawning anything.
    for (name, path) in releases {
        LoadedRelease::load(name, path)?;
    }
    if let Some(dir) = snapshot_dir.as_deref() {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let mut children = Vec::with_capacity(shards);
    for (i, endpoint) in endpoints.iter().enumerate() {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve").arg("--addr").arg(endpoint);
        let mut owned: Vec<&str> = Vec::new();
        for (name, path) in releases {
            if privhp_serve::owners(name, &endpoints, replication).contains(&i) {
                cmd.arg("--release").arg(format!("{name}={path}"));
                owned.push(name);
            }
        }
        if let Some(dir) = snapshot_dir.as_deref() {
            cmd.arg("--registry-snapshot").arg(format!("{dir}/shard-{i}.snapshot"));
        }
        let child = cmd.spawn().map_err(|e| format!("cannot spawn shard {i}: {e}"))?;
        println!(
            "privhp cluster: shard {i} pid {} addr {endpoint} releases [{}]",
            child.id(),
            owned.join(", ")
        );
        children.push(child);
    }
    println!(
        "privhp cluster: {shards} shard(s), replication {}, endpoints {}",
        replication.clamp(1, shards),
        endpoints.join(",")
    );
    let _ = std::io::stdout().flush();
    let mut failures = 0;
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("privhp cluster: shard {i} exited with {status}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("privhp cluster: cannot wait for shard {i}: {e}");
                failures += 1;
            }
        }
    }
    Ok(format!("cluster shut down ({failures} shard(s) exited abnormally)\n"))
}

/// Runs `privhp cluster-client`: one request frame routed over the
/// endpoint list with rendezvous hashing, breaker-gated failover and
/// (with `binary`) the binary bulk-sample encoding decoded back to the
/// JSON line — the cluster twin of [`run_client`].
pub fn run_cluster_client(
    endpoints: &[String],
    request: &str,
    binary: bool,
    timeout_ms: Option<u64>,
    retries: u32,
    replication: usize,
) -> Result<String, String> {
    let mut policy = RetryPolicy { retries, ..RetryPolicy::default() };
    if let Some(ms) = timeout_ms {
        policy.timeout = std::time::Duration::from_millis(ms);
    }
    let mut client = ClusterClient::with_policy(endpoints, replication, policy)?;
    if binary {
        client.set_binary();
        let (header, payload) =
            client.request_expect_payload(request).map_err(|e| e.to_string())?;
        return decode_binary_reply(header, payload);
    }
    let line = client.request(request).map_err(|e| e.to_string())?;
    Ok(format!("{line}\n"))
}

/// Shared sampling pipeline: a release's tree viewed through the
/// [`Generator`] trait, drawn into one flat row-major lane buffer and
/// rendered by the domain's CSV codec — no per-point `Vec` is allocated.
fn sample_csv<D, W>(release: &ReleaseFile, domain: &D, count: usize, seed: u64, write: W) -> String
where
    D: HierarchicalDomain,
    W: Fn(&[f64]) -> String,
{
    let sampler = release.generator(domain);
    let generator: &dyn Generator<D> = &sampler;
    let mut rng = rng_from_seed(seed ^ privhp_core::SAMPLE_SEED_XOR);
    let mut flat = Vec::with_capacity(count * generator.point_lanes());
    generator.sample_many_into(count, &mut rng, &mut flat);
    write(&flat)
}

/// Runs `privhp sample`; returns CSV text. Accepts either release
/// encoding (auto-detected), and equal seeds draw equal points
/// regardless of which encoding the release was persisted in.
pub fn run_sample(release_bytes: &[u8], count: usize, seed: u64) -> Result<String, String> {
    let release = ReleaseFile::from_bytes(release_bytes)?;
    Ok(match release.domain {
        DomainSpec::Interval => {
            sample_csv(&release, &UnitInterval::new(), count, seed, csvio::write_interval)
        }
        DomainSpec::Cube { dim } => {
            sample_csv(&release, &Hypercube::new(dim), count, seed, |flat| {
                csvio::write_cube(flat, dim)
            })
        }
        DomainSpec::Ipv4 => sample_csv(&release, &Ipv4Space::new(), count, seed, csvio::write_ipv4),
    })
}

/// Runs `privhp query`; returns the numeric answer as text. Accepts
/// either release encoding (auto-detected).
pub fn run_query(release_bytes: &[u8], query: QueryKind) -> Result<String, String> {
    let release = ReleaseFile::from_bytes(release_bytes)?;
    if release.domain != DomainSpec::Interval {
        return Err(format!(
            "closed-form queries require an interval release (this one is {})",
            release.domain.describe()
        ));
    }
    let domain = UnitInterval::new();
    let q = TreeQuery::new(&release.tree, &domain);
    let answer = match query {
        QueryKind::Range(a, b) => {
            if !(0.0..=1.0).contains(&a) || !(0.0..=1.0).contains(&b) || a > b {
                return Err("range must satisfy 0 <= a <= b <= 1".into());
            }
            q.range_probability(a, b)
        }
        QueryKind::Cdf(x) => q.cdf(x.clamp(0.0, 1.0)),
        QueryKind::Quantile(rank) => {
            if !(0.0..=1.0).contains(&rank) {
                return Err("quantile rank must be in [0,1]".into());
            }
            q.quantile(rank)
        }
        QueryKind::Mean => q.mean(),
    };
    Ok(format!("{answer:.9}\n"))
}

/// Runs `privhp info`; returns a metadata summary. Accepts either
/// release encoding (auto-detected).
pub fn run_info(release_bytes: &[u8]) -> Result<String, String> {
    let release = ReleaseFile::from_bytes(release_bytes)?;
    let tree = &release.tree;
    let leaves = tree.leaves().len();
    Ok(format!(
        "domain:        {}\n\
         epsilon:       {}\n\
         pruning k:     {}\n\
         levels:        L*={} L={}\n\
         sketch dims:   {} rows x {} buckets per deep level\n\
         tree nodes:    {} ({} leaves, depth {})\n\
         memory:        {} words\n\
         release mass:  {:.3}\n",
        release.domain.describe(),
        release.config.epsilon,
        release.config.k,
        release.config.l_star,
        release.config.depth,
        release.config.sketch.depth,
        release.config.sketch.width,
        tree.len(),
        leaves,
        tree.depth(),
        tree.memory_words(),
        tree.root_count().unwrap_or(0.0),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csv(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            // Skewed toward small values.
            let x = ((i as f64 / n as f64).powi(2) * 0.999).min(0.999);
            s.push_str(&format!("{x}\n"));
        }
        s
    }

    #[test]
    fn build_sample_query_info_pipeline() {
        let csv = sample_csv(2_000);
        let release =
            run_build(&csv, 1.0, 8, DomainSpec::Interval, 7, 1, ReleaseFormat::Json).unwrap();

        let info = run_info(&release).unwrap();
        assert!(info.contains("domain:        interval"));
        assert!(info.contains("pruning k:     8"));

        let samples = run_sample(&release, 500, 9).unwrap();
        assert_eq!(samples.lines().count(), 500);
        let parsed = csvio::parse_interval(&samples).unwrap();
        assert!(parsed.iter().all(|x| (0.0..1.0).contains(x)));

        // Squared-uniform data: ~70% of mass below x=0.5.
        let ans: f64 = run_query(&release, QueryKind::Cdf(0.5)).unwrap().trim().parse().unwrap();
        assert!((ans - 0.707).abs() < 0.15, "CDF(0.5) = {ans}");

        let mean: f64 = run_query(&release, QueryKind::Mean).unwrap().trim().parse().unwrap();
        assert!((mean - 0.333).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn cube_build_and_sample() {
        let mut csv = String::new();
        for i in 0..500 {
            let t = i as f64 / 500.0;
            csv.push_str(&format!("{},{}\n", t * 0.999, (1.0 - t) * 0.999));
        }
        let release =
            run_build(&csv, 1.0, 4, DomainSpec::Cube { dim: 2 }, 3, 1, ReleaseFormat::Json)
                .unwrap();
        let samples = run_sample(&release, 100, 4).unwrap();
        let parsed = csvio::parse_cube(&samples, 2).unwrap();
        assert_eq!(parsed.len(), 100);
    }

    #[test]
    fn ipv4_build_and_sample() {
        // Enough stream mass that the eps = 1 noise cannot drown the hot
        // /8: the assertion below is statistical, and a marginal n makes it
        // fail on unlucky (seed, RNG-stream) combinations.
        let mut csv = String::new();
        for i in 0..2_000 {
            csv.push_str(&format!("10.0.{}.{}\n", i % 256, (i * 7) % 256));
        }
        let release = run_build(&csv, 1.0, 4, DomainSpec::Ipv4, 5, 1, ReleaseFormat::Json).unwrap();
        let samples = run_sample(&release, 200, 6).unwrap();
        let parsed = csvio::parse_ipv4(&samples).unwrap();
        assert_eq!(parsed.len(), 200);
        // Most synthetic addresses should stay in 10/8.
        let in_ten = parsed.iter().filter(|&&a| (a >> 24) == 10).count();
        assert!(in_ten > 100, "only {in_ten}/200 samples in 10/8");
    }

    #[test]
    fn threaded_build_releases_identical_bytes() {
        // --threads N shards the ingest and merges; the release file must
        // be byte-for-byte the file --threads 1 writes.
        let csv = sample_csv(3_000);
        let sequential =
            run_build(&csv, 1.0, 8, DomainSpec::Interval, 7, 1, ReleaseFormat::Json).unwrap();
        for threads in [2usize, 3] {
            let parallel =
                run_build(&csv, 1.0, 8, DomainSpec::Interval, 7, threads, ReleaseFormat::Json)
                    .unwrap();
            assert_eq!(sequential, parallel, "release bytes changed at --threads {threads}");
        }
    }

    #[test]
    fn continual_build_produces_a_queryable_release() {
        let csv = sample_csv(2_000);
        let release = run_continual(&csv, 4.0, 8, DomainSpec::Interval, 7, None).unwrap();

        // Same file format: info/sample/query all work unchanged.
        let info = run_info(release.as_bytes()).unwrap();
        assert!(info.contains("domain:        interval"));
        let samples = run_sample(release.as_bytes(), 300, 9).unwrap();
        assert_eq!(samples.lines().count(), 300);
        // Squared-uniform data: ~70% of mass below x=0.5 (continual noise
        // is log(T)-times larger, so the tolerance is looser than build's).
        let ans: f64 =
            run_query(release.as_bytes(), QueryKind::Cdf(0.5)).unwrap().trim().parse().unwrap();
        assert!((ans - 0.707).abs() < 0.25, "CDF(0.5) = {ans}");
    }

    #[test]
    fn continual_is_deterministic_given_seed() {
        let csv = sample_csv(500);
        let a = run_continual(&csv, 2.0, 4, DomainSpec::Interval, 11, None).unwrap();
        let b = run_continual(&csv, 2.0, 4, DomainSpec::Interval, 11, None).unwrap();
        assert_eq!(a, b, "equal seeds must give byte-identical continual releases");
    }

    #[test]
    fn continual_validates_horizon() {
        let csv = sample_csv(500);
        let e = run_continual(&csv, 2.0, 4, DomainSpec::Interval, 1, Some(5)).unwrap_err();
        assert!(e.contains("2^5"), "{e}");
        // A horizon that would overflow the shift is rejected, not panicked.
        let e = run_continual(&csv, 2.0, 4, DomainSpec::Interval, 1, Some(64)).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        // An explicitly large-enough horizon works.
        run_continual(&csv, 2.0, 4, DomainSpec::Interval, 1, Some(10)).unwrap();
    }

    #[test]
    fn binary_release_is_a_lossless_twin() {
        let csv = sample_csv(1_000);
        let json =
            run_build(&csv, 1.0, 8, DomainSpec::Interval, 7, 1, ReleaseFormat::Json).unwrap();
        let binary =
            run_build(&csv, 1.0, 8, DomainSpec::Interval, 7, 1, ReleaseFormat::Binary).unwrap();

        // Bit-identical logical content: re-rendering the binary twin as
        // JSON reproduces the JSON build byte for byte.
        let from_binary = ReleaseFile::from_bytes(&binary).unwrap();
        assert_eq!(from_binary.to_json().as_bytes(), &json[..]);

        // Equal seeds draw equal points from either encoding.
        assert_eq!(run_sample(&json, 200, 9).unwrap(), run_sample(&binary, 200, 9).unwrap());
        assert_eq!(
            run_query(&json, QueryKind::Cdf(0.5)).unwrap(),
            run_query(&binary, QueryKind::Cdf(0.5)).unwrap()
        );
        assert_eq!(run_info(&json).unwrap(), run_info(&binary).unwrap());
    }

    #[test]
    fn merge_releases_end_to_end() {
        let dir = std::env::temp_dir().join(format!("privhp-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_string_lossy().into_owned();

        // Two shards of the same stream, one per encoding — merge must
        // read both. Same (ε, n, k) keeps the level structure compatible;
        // different seeds give independent noise.
        let csv_a = sample_csv(1_000);
        let csv_b: String = sample_csv(1_000);
        let a = run_build(&csv_a, 1.0, 8, DomainSpec::Interval, 7, 1, ReleaseFormat::Json).unwrap();
        let b =
            run_build(&csv_b, 1.0, 8, DomainSpec::Interval, 8, 1, ReleaseFormat::Binary).unwrap();
        std::fs::write(path("a.json"), &a).unwrap();
        std::fs::write(path("b.phpr"), &b).unwrap();

        let out = path("merged.phpr");
        let summary =
            run_merge_releases(&out, &[path("a.json"), path("b.phpr")], ReleaseFormat::Binary)
                .unwrap();
        assert!(summary.contains("merged 2 release(s)"), "{summary}");

        // The merged artifact serves like any other release, and its
        // counts equal the in-memory merge of the inputs.
        let merged_bytes = std::fs::read(&out).unwrap();
        let merged = ReleaseFile::from_bytes(&merged_bytes).unwrap();
        let reference = merge_releases(&[
            ReleaseFile::from_bytes(&a).unwrap(),
            ReleaseFile::from_bytes(&b).unwrap(),
        ])
        .unwrap();
        assert_eq!(merged.to_json(), reference.to_json());
        assert!(run_sample(&merged_bytes, 50, 3).unwrap().lines().count() == 50);

        // Error paths name the offending file.
        std::fs::write(path("junk.phpr"), b"\x89PHPR\r\n\x1acorrupt").unwrap();
        let e = run_merge_releases(&out, &[path("a.json"), path("junk.phpr")], ReleaseFormat::Json)
            .unwrap_err();
        assert!(e.contains("junk.phpr"), "{e}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_rejects_non_interval_release() {
        let csv = "0.1,0.2\n0.3,0.4\n".repeat(50);
        let release =
            run_build(&csv, 1.0, 2, DomainSpec::Cube { dim: 2 }, 1, 1, ReleaseFormat::Json)
                .unwrap();
        assert!(run_query(&release, QueryKind::Mean).unwrap_err().contains("interval"));
    }

    #[test]
    fn build_propagates_csv_errors() {
        assert!(run_build("nonsense\n", 1.0, 4, DomainSpec::Interval, 1, 1, ReleaseFormat::Json)
            .unwrap_err()
            .contains("line 1"));
    }

    #[test]
    fn query_validates_ranges() {
        let release =
            run_build(&sample_csv(100), 1.0, 2, DomainSpec::Interval, 1, 1, ReleaseFormat::Json)
                .unwrap();
        assert!(run_query(&release, QueryKind::Range(0.5, 0.2)).is_err());
        assert!(run_query(&release, QueryKind::Quantile(1.5)).is_err());
    }
}
