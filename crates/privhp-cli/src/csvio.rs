//! Minimal CSV reading/writing for the three supported point formats.
//!
//! One point per line; no quoting or escaping is needed because every
//! field is numeric or a dotted-quad address. Lines that are empty or
//! start with `#` are skipped; malformed lines abort with the 1-based line
//! number so data problems are locatable.

use privhp_domain::Ipv4Space;

/// Parses one interval line: a `[0,1]` value.
pub fn parse_interval_line(no: usize, line: &str) -> Result<f64, String> {
    let x: f64 = line.trim().parse().map_err(|_| format!("line {no}: '{line}' is not a number"))?;
    if !(0.0..=1.0).contains(&x) {
        return Err(format!("line {no}: {x} outside [0,1]"));
    }
    Ok(x)
}

/// Parses one cube line: `dim` comma-separated `[0,1]` values.
pub fn parse_cube_line(no: usize, line: &str, dim: usize) -> Result<Vec<f64>, String> {
    let coords: Result<Vec<f64>, String> = line
        .split(',')
        .map(|f| f.trim().parse::<f64>().map_err(|_| format!("line {no}: '{f}' is not a number")))
        .collect();
    let coords = coords?;
    if coords.len() != dim {
        return Err(format!("line {no}: expected {dim} coordinates, found {}", coords.len()));
    }
    if coords.iter().any(|x| !(0.0..=1.0).contains(x)) {
        return Err(format!("line {no}: coordinate outside [0,1]"));
    }
    Ok(coords)
}

/// Parses one IPv4 line: a dotted-quad address.
pub fn parse_ipv4_line(no: usize, line: &str) -> Result<u32, String> {
    Ipv4Space::parse_addr(line.trim())
        .ok_or_else(|| format!("line {no}: '{line}' is not an IPv4 address"))
}

/// Parses interval points: one `[0,1]` value per line.
pub fn parse_interval(input: &str) -> Result<Vec<f64>, String> {
    payload_lines(input).map(|(no, line)| parse_interval_line(no, line)).collect()
}

/// Parses `dim`-dimensional cube points: `dim` comma-separated values.
pub fn parse_cube(input: &str, dim: usize) -> Result<Vec<Vec<f64>>, String> {
    payload_lines(input).map(|(no, line)| parse_cube_line(no, line, dim)).collect()
}

/// Parses IPv4 addresses in dotted-quad form.
pub fn parse_ipv4(input: &str) -> Result<Vec<u32>, String> {
    payload_lines(input).map(|(no, line)| parse_ipv4_line(no, line)).collect()
}

/// Number of payload (non-comment, non-blank) lines — the stream length a
/// build must size its configuration for before reading any points.
pub fn payload_count(input: &str) -> usize {
    payload_lines(input).count()
}

/// Drives `parse_line` over the payload lines in batches of `batch`,
/// handing each parsed batch to `consume` as soon as it fills — the
/// CSV-read-in-batches front of the CLI build path, so a single-threaded
/// build never materialises the whole point vector. Returns the total
/// number of points consumed; the first malformed line aborts with its
/// 1-based number.
pub fn parse_batches<T>(
    input: &str,
    batch: usize,
    parse_line: impl Fn(usize, &str) -> Result<T, String>,
    mut consume: impl FnMut(&[T]),
) -> Result<usize, String> {
    assert!(batch > 0, "batch size must be positive");
    let mut buf: Vec<T> = Vec::with_capacity(batch);
    let mut total = 0usize;
    for (no, line) in payload_lines(input) {
        buf.push(parse_line(no, line)?);
        if buf.len() == batch {
            consume(&buf);
            total += buf.len();
            buf.clear();
        }
    }
    total += buf.len();
    consume(&buf);
    Ok(total)
}

/// Formats interval samples (a flat buffer, one lane per point) as CSV.
pub fn write_interval(flat: &[f64]) -> String {
    let mut out = String::with_capacity(flat.len() * 12);
    for x in flat {
        out.push_str(&format!("{x:.9}\n"));
    }
    out
}

/// Formats cube samples from a flat row-major lane buffer (`dim` lanes per
/// point) as CSV.
pub fn write_cube(flat: &[f64], dim: usize) -> String {
    assert!(
        dim > 0 && flat.len().is_multiple_of(dim),
        "flat buffer must hold whole {dim}-lane rows"
    );
    let mut out = String::with_capacity(flat.len() * 12);
    for row in flat.chunks_exact(dim) {
        for (c, x) in row.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("{x:.9}"));
        }
        out.push('\n');
    }
    out
}

/// Formats IPv4 samples (a flat buffer, one exact-`u32` lane per point) as
/// dotted quads.
pub fn write_ipv4(flat: &[f64]) -> String {
    let mut out = String::with_capacity(flat.len() * 16);
    for &a in flat {
        out.push_str(&Ipv4Space::format_addr(a as u32));
        out.push('\n');
    }
    out
}

fn payload_lines(input: &str) -> impl Iterator<Item = (usize, &str)> {
    input
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_roundtrip() {
        let pts = vec![0.1, 0.5, 0.999];
        let csv = write_interval(&pts);
        let back = parse_interval(&csv).unwrap();
        for (a, b) in pts.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let back = parse_interval("# header\n0.5\n\n  \n0.25\n").unwrap();
        assert_eq!(back, vec![0.5, 0.25]);
    }

    #[test]
    fn interval_errors_carry_line_numbers() {
        let e = parse_interval("0.5\nbogus\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = parse_interval("1.5\n").unwrap_err();
        assert!(e.contains("outside [0,1]"));
    }

    #[test]
    fn cube_roundtrip_and_validation() {
        let flat = vec![0.1, 0.2, 0.9, 0.8];
        let csv = write_cube(&flat, 2);
        let back = parse_cube(&csv, 2).unwrap();
        assert_eq!(back.len(), 2);
        assert!(parse_cube("0.1,0.2,0.3\n", 2).unwrap_err().contains("expected 2"));
        assert!(parse_cube("0.1,2.0\n", 2).unwrap_err().contains("outside"));
    }

    #[test]
    fn ipv4_roundtrip() {
        let pts = vec![0u32, 0xC0A8_0101, u32::MAX];
        let flat: Vec<f64> = pts.iter().map(|&a| f64::from(a)).collect();
        let csv = write_ipv4(&flat);
        assert!(csv.contains("192.168.1.1"));
        assert_eq!(parse_ipv4(&csv).unwrap(), pts);
        assert!(parse_ipv4("999.1.1.1\n").unwrap_err().contains("line 1"));
    }

    #[test]
    fn batched_parse_matches_whole_parse() {
        let csv = "# header\n0.1\n0.2\n\n0.3\n0.4\n0.5\n";
        let whole = parse_interval(csv).unwrap();
        let mut batched = Vec::new();
        let n =
            parse_batches(csv, 2, parse_interval_line, |b| batched.extend_from_slice(b)).unwrap();
        assert_eq!(n, whole.len());
        assert_eq!(batched, whole);
        assert_eq!(payload_count(csv), whole.len());
    }

    #[test]
    fn batched_parse_aborts_on_bad_line() {
        let mut seen = 0usize;
        let e = parse_batches("0.1\nbogus\n0.3\n", 8, parse_interval_line, |b| seen += b.len())
            .unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert_eq!(seen, 0, "nothing consumed before the abort in a single batch");
    }
}
