//! The `privhp` command-line tool. All logic lives in the library
//! ([`privhp_cli::commands`]); this binary only handles I/O plumbing.

use std::io::Read;
use std::process::ExitCode;

use privhp_cli::args::{parse_args, Command, HELP};
use privhp_cli::commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let command = parse_args(args).map_err(|e| e.to_string())?;
    match command {
        Command::Help => Ok(format!("{HELP}\n")),
        Command::Build { input, output, epsilon, k, domain, seed, threads, format } => {
            let csv = read_input(&input)?;
            let bytes = commands::run_build(&csv, epsilon, k, domain, seed, threads, format)?;
            std::fs::write(&output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
            Ok(format!("release written to {output}\n"))
        }
        Command::MergeReleases { output, inputs, format } => {
            commands::run_merge_releases(&output, &inputs, format)
        }
        Command::Sample { release, count, seed } => {
            let bytes = read_input_bytes(&release)?;
            commands::run_sample(&bytes, count, seed)
        }
        Command::Query { release, query } => {
            let bytes = read_input_bytes(&release)?;
            commands::run_query(&bytes, query)
        }
        Command::Info { release } => {
            let bytes = read_input_bytes(&release)?;
            commands::run_info(&bytes)
        }
        Command::Continual { input, output, epsilon, k, domain, seed, horizon_levels } => {
            let csv = read_input(&input)?;
            let json = commands::run_continual(&csv, epsilon, k, domain, seed, horizon_levels)?;
            std::fs::write(&output, &json).map_err(|e| format!("cannot write {output}: {e}"))?;
            Ok(format!("continual release written to {output}\n"))
        }
        Command::Serve {
            addr,
            releases,
            workers,
            max_sample_n,
            request_timeout_ms,
            idle_timeout_ms,
            fault_seed,
            snapshot,
        } => commands::run_serve(
            &addr,
            &releases,
            workers,
            max_sample_n,
            request_timeout_ms,
            idle_timeout_ms,
            fault_seed,
            snapshot,
        ),
        Command::Client { addr, request, binary, timeout_ms, retries } => {
            // `--json -` reads the request frame from stdin.
            let frame = if request == "-" { read_input("-")? } else { request };
            commands::run_client(&addr, &frame, binary, timeout_ms, retries)
        }
        Command::Cluster { shards, base_addr, releases, replication, snapshot_dir } => {
            commands::run_cluster(shards, &base_addr, &releases, replication, snapshot_dir)
        }
        Command::ClusterClient { endpoints, request, binary, timeout_ms, retries, replication } => {
            let frame = if request == "-" { read_input("-")? } else { request };
            commands::run_cluster_client(
                &endpoints,
                &frame,
                binary,
                timeout_ms,
                retries,
                replication,
            )
        }
    }
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// Raw-byte twin of [`read_input`] for release files, which may be in
/// the (non-UTF-8) binary encoding.
fn read_input_bytes(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin().read_to_end(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}
