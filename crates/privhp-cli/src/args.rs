//! Hand-rolled argument parsing (no external CLI dependency).
//!
//! Flags are `--name value` pairs; unknown flags and missing values are
//! reported with the offending token. Each subcommand validates its own
//! required set so error messages stay actionable.

use std::collections::HashMap;

use crate::release::{DomainSpec, ReleaseFormat};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `privhp build` — run Algorithm 1 over a CSV stream.
    Build {
        /// Input CSV path (`-` for stdin).
        input: String,
        /// Output release-file path.
        output: String,
        /// Privacy budget ε.
        epsilon: f64,
        /// Pruning parameter k.
        k: usize,
        /// Input domain.
        domain: DomainSpec,
        /// Master seed for the build's randomness.
        seed: u64,
        /// Ingest worker threads (1 = sequential batched ingest).
        threads: usize,
        /// Output encoding (defaults from the output extension:
        /// `.phpr` → binary, anything else → JSON).
        format: ReleaseFormat,
    },
    /// `privhp merge-releases` — combine finished releases (ε by
    /// parallel composition).
    MergeReleases {
        /// Output release-file path.
        output: String,
        /// Input release-file paths (at least two).
        inputs: Vec<String>,
        /// Output encoding (defaults from the output extension).
        format: ReleaseFormat,
    },
    /// `privhp sample` — draw synthetic points from a release.
    Sample {
        /// Release-file path.
        release: String,
        /// Number of points to draw.
        count: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// `privhp query` — answer one closed-form query from a release.
    Query {
        /// Release-file path.
        release: String,
        /// The query to evaluate.
        query: QueryKind,
    },
    /// `privhp info` — print release metadata.
    Info {
        /// Release-file path.
        release: String,
    },
    /// `privhp continual` — build a release under continual observation.
    Continual {
        /// Input CSV path (`-` for stdin).
        input: String,
        /// Output release-file path.
        output: String,
        /// Privacy budget ε.
        epsilon: f64,
        /// Pruning parameter k.
        k: usize,
        /// Input domain.
        domain: DomainSpec,
        /// Master seed for the build's randomness.
        seed: u64,
        /// Stream horizon as a power of two (`None` = sized to the input).
        horizon_levels: Option<usize>,
    },
    /// `privhp serve` — run the long-lived sampling/query server.
    Serve {
        /// Address to bind, e.g. `127.0.0.1:4750` (`:0` for ephemeral).
        addr: String,
        /// Releases to preload, as `(name, path)` pairs.
        releases: Vec<(String, String)>,
        /// Worker-pool size (`None` = available parallelism).
        workers: Option<usize>,
        /// Per-request sample cap (`None` = the protocol default).
        max_sample_n: Option<usize>,
        /// Per-request wall-clock budget in ms (`None` = the server
        /// default; `Some(0)` disables).
        request_timeout_ms: Option<u64>,
        /// Idle-connection budget in ms (`None` = the server default;
        /// `Some(0)` disables).
        idle_timeout_ms: Option<u64>,
        /// Arms deterministic fault injection at this seed.
        fault_seed: Option<u64>,
        /// Registry snapshot file: restored at boot if present, rewritten
        /// after every successful `load`.
        snapshot: Option<String>,
    },
    /// `privhp cluster` — spawn N local shard servers with the release
    /// set partitioned by the same rendezvous hashing the cluster client
    /// routes by.
    Cluster {
        /// Number of shard processes to spawn.
        shards: usize,
        /// Base address; shard `i` binds `host:(port + i)`.
        base_addr: String,
        /// Releases to partition across the shards, as `(name, path)`.
        releases: Vec<(String, String)>,
        /// Replication factor R: each release is owned by R shards.
        replication: usize,
        /// Directory for per-shard registry snapshots
        /// (`{dir}/shard-{i}.snapshot`).
        snapshot_dir: Option<String>,
    },
    /// `privhp cluster-client` — send one request through the
    /// rendezvous-routing, breaker-gated failover client.
    ClusterClient {
        /// Cluster endpoints (comma-separated on the CLI).
        endpoints: Vec<String>,
        /// The request frame to send (`-` to read it from stdin).
        request: String,
        /// Negotiate the binary bulk-sample encoding before sending.
        binary: bool,
        /// Per-attempt response deadline in ms (`None` = client default).
        timeout_ms: Option<u64>,
        /// Extra failover passes over the owner set (0 = one pass).
        retries: u32,
        /// Replication factor R the cluster was booted with.
        replication: usize,
    },
    /// `privhp client` — send one request to a running server.
    Client {
        /// Server address, e.g. `127.0.0.1:4750`.
        addr: String,
        /// The request frame to send (`-` to read it from stdin).
        request: String,
        /// Negotiate the binary bulk-sample encoding before sending.
        binary: bool,
        /// Per-attempt response deadline in ms (`None` = client default).
        timeout_ms: Option<u64>,
        /// Retries after the first attempt (0 = single-shot).
        retries: u32,
    },
    /// `privhp help` / `--help`.
    Help,
}

/// Queries supported by `privhp query` (1-D releases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// `P[a <= X < b]`.
    Range(f64, f64),
    /// CDF at a point.
    Cdf(f64),
    /// Quantile at a rank.
    Quantile(f64),
    /// Mean of the release distribution.
    Mean,
}

/// Parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Splits `--flag value` pairs into a map; rejects dangling flags.
fn flag_map(tokens: &[String]) -> Result<HashMap<String, String>, ParseError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let name =
            t.strip_prefix("--").ok_or_else(|| err(format!("expected a --flag, got '{t}'")))?;
        let value =
            tokens.get(i + 1).ok_or_else(|| err(format!("flag --{name} is missing its value")))?;
        if map.insert(name.to_string(), value.clone()).is_some() {
            return Err(err(format!("flag --{name} given twice")));
        }
        i += 2;
    }
    Ok(map)
}

fn take<'a>(map: &'a HashMap<String, String>, name: &str) -> Result<&'a str, ParseError> {
    map.get(name).map(|s| s.as_str()).ok_or_else(|| err(format!("missing required flag --{name}")))
}

fn take_or<'a>(map: &'a HashMap<String, String>, name: &str, default: &'a str) -> &'a str {
    map.get(name).map(|s| s.as_str()).unwrap_or(default)
}

fn parse_f64(name: &str, s: &str) -> Result<f64, ParseError> {
    s.parse().map_err(|_| err(format!("--{name}: '{s}' is not a number")))
}

fn parse_usize(name: &str, s: &str) -> Result<usize, ParseError> {
    s.parse().map_err(|_| err(format!("--{name}: '{s}' is not a non-negative integer")))
}

fn parse_u64(name: &str, s: &str) -> Result<u64, ParseError> {
    s.parse().map_err(|_| err(format!("--{name}: '{s}' is not a non-negative integer")))
}

/// Resolves the output encoding: an explicit `--format` wins, otherwise
/// a `.phpr` extension selects binary and anything else JSON.
fn format_for_output(explicit: Option<&String>, output: &str) -> Result<ReleaseFormat, ParseError> {
    match explicit {
        Some(s) => ReleaseFormat::parse(s).map_err(err),
        None if output.ends_with(".phpr") => Ok(ReleaseFormat::Binary),
        None => Ok(ReleaseFormat::Json),
    }
}

/// Parses a full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "build" => {
            let map = flag_map(&args[1..])?;
            let domain = DomainSpec::parse(take_or(&map, "domain", "interval")).map_err(err)?;
            let threads = parse_usize("threads", take_or(&map, "threads", "1"))?;
            if threads == 0 {
                return Err(err("--threads must be at least 1"));
            }
            let output = take(&map, "output")?.to_string();
            let format = format_for_output(map.get("format"), &output)?;
            Ok(Command::Build {
                input: take(&map, "input")?.to_string(),
                output,
                epsilon: parse_f64("epsilon", take(&map, "epsilon")?)?,
                k: parse_usize("k", take(&map, "k")?)?,
                domain,
                seed: parse_u64("seed", take_or(&map, "seed", "42"))?,
                threads,
                format,
            })
        }
        // `merge-releases` takes positionals — `privhp merge-releases
        // out.phpr a.json b.phpr …` — plus an optional `--format`.
        "merge-releases" => {
            let mut format_flag: Option<String> = None;
            let mut paths: Vec<String> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                let t = &args[i];
                if let Some(name) = t.strip_prefix("--") {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| err(format!("flag --{name} is missing its value")))?;
                    match name {
                        "format" => {
                            if format_flag.replace(value.clone()).is_some() {
                                return Err(err("flag --format given twice"));
                            }
                        }
                        other => return Err(err(format!("unknown merge-releases flag --{other}"))),
                    }
                    i += 2;
                } else {
                    paths.push(t.clone());
                    i += 1;
                }
            }
            if paths.len() < 3 {
                return Err(err(
                    "merge-releases needs an output path and at least two input releases",
                ));
            }
            let output = paths.remove(0);
            let format = format_for_output(format_flag.as_ref(), &output)?;
            Ok(Command::MergeReleases { output, inputs: paths, format })
        }
        "sample" => {
            let map = flag_map(&args[1..])?;
            Ok(Command::Sample {
                release: take(&map, "release")?.to_string(),
                count: parse_usize("count", take(&map, "count")?)?,
                seed: parse_u64("seed", take_or(&map, "seed", "42"))?,
            })
        }
        "query" => {
            let map = flag_map(&args[1..])?;
            let release = take(&map, "release")?.to_string();
            let query = if let Some(r) = map.get("range") {
                let (a, b) = r.split_once(',').ok_or_else(|| err("--range expects 'a,b'"))?;
                QueryKind::Range(parse_f64("range", a)?, parse_f64("range", b)?)
            } else if let Some(x) = map.get("cdf") {
                QueryKind::Cdf(parse_f64("cdf", x)?)
            } else if let Some(q) = map.get("quantile") {
                QueryKind::Quantile(parse_f64("quantile", q)?)
            } else if map.contains_key("mean") {
                QueryKind::Mean
            } else {
                return Err(err(
                    "query needs one of --range a,b | --cdf x | --quantile q | --mean true",
                ));
            };
            Ok(Command::Query { release, query })
        }
        "info" => {
            let map = flag_map(&args[1..])?;
            Ok(Command::Info { release: take(&map, "release")?.to_string() })
        }
        "continual" => {
            let map = flag_map(&args[1..])?;
            let domain = DomainSpec::parse(take_or(&map, "domain", "interval")).map_err(err)?;
            let horizon_levels = match map.get("horizon-levels") {
                Some(s) => Some(parse_usize("horizon-levels", s)?),
                None => None,
            };
            Ok(Command::Continual {
                input: take(&map, "input")?.to_string(),
                output: take(&map, "output")?.to_string(),
                epsilon: parse_f64("epsilon", take(&map, "epsilon")?)?,
                k: parse_usize("k", take(&map, "k")?)?,
                domain,
                seed: parse_u64("seed", take_or(&map, "seed", "42"))?,
                horizon_levels,
            })
        }
        // `serve` parses its own flags: `--release name=path` is the one
        // repeatable flag in the CLI, which `flag_map` rejects by design.
        "serve" => {
            let mut addr: Option<String> = None;
            let mut releases: Vec<(String, String)> = Vec::new();
            let mut workers: Option<usize> = None;
            let mut max_sample_n: Option<usize> = None;
            let mut request_timeout_ms: Option<u64> = None;
            let mut idle_timeout_ms: Option<u64> = None;
            let mut fault_seed: Option<u64> = None;
            let mut snapshot: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                let t = &args[i];
                let name = t
                    .strip_prefix("--")
                    .ok_or_else(|| err(format!("expected a --flag, got '{t}'")))?;
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("flag --{name} is missing its value")))?;
                match name {
                    "addr" => {
                        if addr.replace(value.clone()).is_some() {
                            return Err(err("flag --addr given twice"));
                        }
                    }
                    "release" => {
                        let (n, p) = value
                            .split_once('=')
                            .filter(|(n, p)| !n.is_empty() && !p.is_empty())
                            .ok_or_else(|| err("--release expects name=path"))?;
                        if releases.iter().any(|(existing, _)| existing == n) {
                            return Err(err(format!("release '{n}' given twice")));
                        }
                        releases.push((n.to_string(), p.to_string()));
                    }
                    "workers" => {
                        let w = parse_usize("workers", value)?;
                        if w == 0 {
                            return Err(err("--workers must be at least 1"));
                        }
                        if workers.replace(w).is_some() {
                            return Err(err("flag --workers given twice"));
                        }
                    }
                    "max-sample-n" => {
                        let cap = parse_usize("max-sample-n", value)?;
                        if cap == 0 {
                            return Err(err("--max-sample-n must be at least 1"));
                        }
                        if max_sample_n.replace(cap).is_some() {
                            return Err(err("flag --max-sample-n given twice"));
                        }
                    }
                    "request-timeout-ms" => {
                        let ms = parse_u64("request-timeout-ms", value)?;
                        if request_timeout_ms.replace(ms).is_some() {
                            return Err(err("flag --request-timeout-ms given twice"));
                        }
                    }
                    "idle-timeout-ms" => {
                        let ms = parse_u64("idle-timeout-ms", value)?;
                        if idle_timeout_ms.replace(ms).is_some() {
                            return Err(err("flag --idle-timeout-ms given twice"));
                        }
                    }
                    "fault-seed" => {
                        let seed = parse_u64("fault-seed", value)?;
                        if fault_seed.replace(seed).is_some() {
                            return Err(err("flag --fault-seed given twice"));
                        }
                    }
                    "registry-snapshot" => {
                        if snapshot.replace(value.clone()).is_some() {
                            return Err(err("flag --registry-snapshot given twice"));
                        }
                    }
                    other => return Err(err(format!("unknown serve flag --{other}"))),
                }
                i += 2;
            }
            Ok(Command::Serve {
                addr: addr.ok_or_else(|| err("missing required flag --addr"))?,
                releases,
                workers,
                max_sample_n,
                request_timeout_ms,
                idle_timeout_ms,
                fault_seed,
                snapshot,
            })
        }
        // `cluster` shares `serve`'s repeatable `--release name=path`
        // flag, so it hand-parses the same way.
        "cluster" => {
            let mut shards: Option<usize> = None;
            let mut base_addr: Option<String> = None;
            let mut releases: Vec<(String, String)> = Vec::new();
            let mut replication: Option<usize> = None;
            let mut snapshot_dir: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                let t = &args[i];
                let name = t
                    .strip_prefix("--")
                    .ok_or_else(|| err(format!("expected a --flag, got '{t}'")))?;
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("flag --{name} is missing its value")))?;
                match name {
                    "shards" => {
                        let n = parse_usize("shards", value)?;
                        if n == 0 {
                            return Err(err("--shards must be at least 1"));
                        }
                        if shards.replace(n).is_some() {
                            return Err(err("flag --shards given twice"));
                        }
                    }
                    "addr" => {
                        if base_addr.replace(value.clone()).is_some() {
                            return Err(err("flag --addr given twice"));
                        }
                    }
                    "release" => {
                        let (n, p) = value
                            .split_once('=')
                            .filter(|(n, p)| !n.is_empty() && !p.is_empty())
                            .ok_or_else(|| err("--release expects name=path"))?;
                        if releases.iter().any(|(existing, _)| existing == n) {
                            return Err(err(format!("release '{n}' given twice")));
                        }
                        releases.push((n.to_string(), p.to_string()));
                    }
                    "replication" => {
                        let r = parse_usize("replication", value)?;
                        if r == 0 {
                            return Err(err("--replication must be at least 1"));
                        }
                        if replication.replace(r).is_some() {
                            return Err(err("flag --replication given twice"));
                        }
                    }
                    "snapshot-dir" => {
                        if snapshot_dir.replace(value.clone()).is_some() {
                            return Err(err("flag --snapshot-dir given twice"));
                        }
                    }
                    other => return Err(err(format!("unknown cluster flag --{other}"))),
                }
                i += 2;
            }
            Ok(Command::Cluster {
                shards: shards.ok_or_else(|| err("missing required flag --shards"))?,
                base_addr: base_addr.ok_or_else(|| err("missing required flag --addr"))?,
                releases,
                replication: replication.unwrap_or(2),
                snapshot_dir,
            })
        }
        "cluster-client" => {
            let map = flag_map(&args[1..])?;
            let endpoints: Vec<String> = take(&map, "endpoints")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if endpoints.is_empty() {
                return Err(err("--endpoints needs at least one address"));
            }
            let binary = match take_or(&map, "format", "json") {
                "json" => false,
                "binary" => true,
                other => return Err(err(format!("--format: expected json|binary, got '{other}'"))),
            };
            let timeout_ms = match map.get("timeout-ms") {
                Some(s) => {
                    let ms = parse_u64("timeout-ms", s)?;
                    if ms == 0 {
                        return Err(err("--timeout-ms must be at least 1"));
                    }
                    Some(ms)
                }
                None => None,
            };
            let replication = parse_usize("replication", take_or(&map, "replication", "2"))?;
            if replication == 0 {
                return Err(err("--replication must be at least 1"));
            }
            Ok(Command::ClusterClient {
                endpoints,
                request: take(&map, "json")?.to_string(),
                binary,
                timeout_ms,
                retries: parse_u64("retries", take_or(&map, "retries", "0"))? as u32,
                replication,
            })
        }
        "client" => {
            let map = flag_map(&args[1..])?;
            let binary = match take_or(&map, "format", "json") {
                "json" => false,
                "binary" => true,
                other => return Err(err(format!("--format: expected json|binary, got '{other}'"))),
            };
            let timeout_ms = match map.get("timeout-ms") {
                Some(s) => {
                    let ms = parse_u64("timeout-ms", s)?;
                    if ms == 0 {
                        return Err(err("--timeout-ms must be at least 1"));
                    }
                    Some(ms)
                }
                None => None,
            };
            let retries = parse_u64("retries", take_or(&map, "retries", "0"))? as u32;
            Ok(Command::Client {
                addr: take(&map, "addr")?.to_string(),
                request: take(&map, "json")?.to_string(),
                binary,
                timeout_ms,
                retries,
            })
        }
        other => Err(err(format!(
            "unknown subcommand '{other}' (expected build | merge-releases | sample | query | info | continual | serve | client | cluster | cluster-client | help)"
        ))),
    }
}

/// The help text printed by `privhp help`.
pub const HELP: &str = "\
privhp — private synthetic data generation in bounded memory (PODS 2025)

USAGE:
  privhp build     --input data.csv --output release.json --epsilon 1.0 --k 16
                   [--domain interval|cube:D|ipv4] [--seed S] [--threads N]
                   [--format json|binary]
  privhp merge-releases out.phpr a.json b.phpr ... [--format json|binary]
  privhp continual --input data.csv --output release.json --epsilon 1.0 --k 16
                   [--domain interval|cube:D|ipv4] [--seed S] [--horizon-levels H]
  privhp sample    --release release.json --count N [--seed S]
  privhp query     --release release.json (--range a,b | --cdf x | --quantile q | --mean true)
  privhp info      --release release.json
  privhp serve     --addr 127.0.0.1:4750 [--release name=release.json]...
                   [--workers N] [--max-sample-n N]
                   [--request-timeout-ms MS] [--idle-timeout-ms MS]
                   [--registry-snapshot FILE] [--fault-seed S]
  privhp client    --addr 127.0.0.1:4750 --json '{\"op\":\"list\"}' [--format json|binary]
                   [--timeout-ms MS] [--retries N]
  privhp cluster   --shards N --addr 127.0.0.1:4800 [--release name=release.json]...
                   [--replication R] [--snapshot-dir DIR]
  privhp cluster-client --endpoints 127.0.0.1:4800,127.0.0.1:4801,...
                   --json '{\"op\":\"list\"}' [--format json|binary]
                   [--timeout-ms MS] [--retries N] [--replication R]

Input CSV: one point per line. interval: a single value in [0,1];
cube:D: D comma-separated values in [0,1]; ipv4: dotted-quad addresses.
The CSV is ingested in batches; --threads N shards the stream across N
ingest workers and merges (same release bytes as --threads 1).
Releases persist in two lossless encodings: JSON (interchange) and the
.phpr binary container (zero-parse serving form; spec in docs/FORMAT.md).
--format defaults from the output extension (.phpr selects binary) and
every reader — sample/query/info, serve preload, the load op — detects
the encoding automatically.
merge-releases combines finished releases over the same domain and
level structure: tree union with uniform mass extension, epsilon by
parallel composition (max over inputs — each input covers a disjoint
data partition); no fresh noise is added.
continual builds through the continual-observation mechanism instead of
the 1-pass builder (releasable at any checkpoint; horizon 2^H items).
serve answers sample/query/cdf/info/list/stats/load/format/shutdown
requests as line-delimited JSON over TCP through a bounded worker pool
(--workers, default = available parallelism); when the connection queue is
full, newcomers get a structured busy error instead of waiting. Bulk
sample requests are capped at --max-sample-n points (default 1000000).
A request over --request-timeout-ms (default 30000; 0 disables) gets a
request_timeout error; a connection idle past --idle-timeout-ms
(default 60000; 0 disables) is dropped with an idle_timeout frame.
--registry-snapshot FILE is restored at boot and rewritten atomically
after every successful load; --fault-seed S arms deterministic fault
injection (chaos testing; also via PRIVHP_FAULT_SEED).
client sends one request frame (--json - to read it from stdin) and
prints the one-line reply; --format binary negotiates the binary
bulk-sample frame and prints the decoded (JSON-identical) points.
--retries N (default 0) retries busy/timeout/disconnect failures with
seeded-jitter exponential backoff under a --timeout-ms deadline per
attempt (default 30000) — safe because seeded requests are idempotent.
cluster spawns N serve processes on consecutive ports from --addr, each
owning the slice of the --release set that rendezvous hashing assigns it
under replication factor R (default 2); --snapshot-dir gives shard i a
restartable {dir}/shard-i.snapshot. cluster-client routes one request
over the endpoint list with the same hashing, failing over between
replicas behind per-endpoint circuit breakers; when every replica of a
release is down it reports a retryable 'unavailable' error naming the
release. Failover is bit-identical because seeded requests are
idempotent: any replica serves the same bytes.
The release file is eps-differentially private; querying and sampling it
costs no further privacy budget.";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_build() {
        let cmd = parse_args(&v(&[
            "build",
            "--input",
            "d.csv",
            "--output",
            "r.json",
            "--epsilon",
            "0.5",
            "--k",
            "8",
        ]))
        .unwrap();
        match cmd {
            Command::Build { input, output, epsilon, k, domain, seed, threads, format } => {
                assert_eq!(input, "d.csv");
                assert_eq!(output, "r.json");
                assert_eq!(epsilon, 0.5);
                assert_eq!(k, 8);
                assert_eq!(domain, DomainSpec::Interval);
                assert_eq!(seed, 42);
                assert_eq!(threads, 1, "threads defaults to sequential ingest");
                assert_eq!(format, ReleaseFormat::Json, "non-.phpr output defaults to JSON");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_build_format() {
        let build = |extra: &[&str]| {
            let mut base =
                v(&["build", "--input", "d", "--output", "o.phpr", "--epsilon", "1", "--k", "4"]);
            base.extend(extra.iter().map(|s| s.to_string()));
            parse_args(&base)
        };
        // .phpr extension defaults to binary; --format overrides.
        assert!(matches!(
            build(&[]).unwrap(),
            Command::Build { format: ReleaseFormat::Binary, .. }
        ));
        assert!(matches!(
            build(&["--format", "json"]).unwrap(),
            Command::Build { format: ReleaseFormat::Json, .. }
        ));
        let e = build(&["--format", "msgpack"]).unwrap_err();
        assert!(e.0.contains("unknown format"), "{}", e.0);
    }

    #[test]
    fn parses_merge_releases() {
        let cmd =
            parse_args(&v(&["merge-releases", "out.phpr", "a.json", "b.phpr", "c.json"])).unwrap();
        match cmd {
            Command::MergeReleases { output, inputs, format } => {
                assert_eq!(output, "out.phpr");
                assert_eq!(inputs, ["a.json", "b.phpr", "c.json"]);
                assert_eq!(format, ReleaseFormat::Binary, ".phpr output defaults to binary");
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&v(&["merge-releases", "out.json", "a", "b"])).unwrap();
        assert!(matches!(cmd, Command::MergeReleases { format: ReleaseFormat::Json, .. }));
        let cmd = parse_args(&v(&["merge-releases", "--format", "binary", "out.json", "a", "b"]))
            .unwrap();
        assert!(matches!(cmd, Command::MergeReleases { format: ReleaseFormat::Binary, .. }));

        let e = parse_args(&v(&["merge-releases", "out.phpr", "only-one"])).unwrap_err();
        assert!(e.0.contains("at least two"), "{}", e.0);
        let e = parse_args(&v(&["merge-releases", "a", "b", "c", "--compress", "x"])).unwrap_err();
        assert!(e.0.contains("unknown merge-releases flag"), "{}", e.0);
    }

    #[test]
    fn parses_threads() {
        let cmd = parse_args(&v(&[
            "build",
            "--input",
            "d",
            "--output",
            "o",
            "--epsilon",
            "1",
            "--k",
            "4",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Build { threads: 4, .. }));
        let e = parse_args(&v(&[
            "build",
            "--input",
            "d",
            "--output",
            "o",
            "--epsilon",
            "1",
            "--k",
            "4",
            "--threads",
            "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("at least 1"));
    }

    #[test]
    fn parses_domains() {
        for (s, expect) in [
            ("interval", DomainSpec::Interval),
            ("cube:3", DomainSpec::Cube { dim: 3 }),
            ("ipv4", DomainSpec::Ipv4),
        ] {
            let cmd = parse_args(&v(&[
                "build",
                "--input",
                "d",
                "--output",
                "o",
                "--epsilon",
                "1",
                "--k",
                "4",
                "--domain",
                s,
            ]))
            .unwrap();
            let Command::Build { domain, .. } = cmd else { panic!() };
            assert_eq!(domain, expect, "spec '{s}'");
        }
    }

    #[test]
    fn parses_queries() {
        let q = |extra: &[&str]| {
            let mut base = v(&["query", "--release", "r.json"]);
            base.extend(extra.iter().map(|s| s.to_string()));
            parse_args(&base).unwrap()
        };
        assert!(matches!(
            q(&["--range", "0.1,0.4"]),
            Command::Query { query: QueryKind::Range(a, b), .. } if a == 0.1 && b == 0.4
        ));
        assert!(matches!(q(&["--cdf", "0.3"]), Command::Query { query: QueryKind::Cdf(_), .. }));
        assert!(matches!(
            q(&["--quantile", "0.5"]),
            Command::Query { query: QueryKind::Quantile(_), .. }
        ));
        assert!(matches!(q(&["--mean", "true"]), Command::Query { query: QueryKind::Mean, .. }));
    }

    #[test]
    fn parses_continual() {
        let cmd = parse_args(&v(&[
            "continual",
            "--input",
            "d.csv",
            "--output",
            "r.json",
            "--epsilon",
            "2",
            "--k",
            "8",
        ]))
        .unwrap();
        match cmd {
            Command::Continual { input, epsilon, k, domain, seed, horizon_levels, .. } => {
                assert_eq!(input, "d.csv");
                assert_eq!(epsilon, 2.0);
                assert_eq!(k, 8);
                assert_eq!(domain, DomainSpec::Interval);
                assert_eq!(seed, 42);
                assert_eq!(horizon_levels, None, "horizon defaults to input-sized");
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&v(&[
            "continual",
            "--input",
            "d",
            "--output",
            "o",
            "--epsilon",
            "1",
            "--k",
            "4",
            "--horizon-levels",
            "14",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Continual { horizon_levels: Some(14), .. }));
    }

    #[test]
    fn parses_serve_with_repeated_releases() {
        let cmd = parse_args(&v(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--release",
            "a=a.json",
            "--release",
            "b=b.json",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                addr,
                releases,
                workers,
                max_sample_n,
                request_timeout_ms,
                idle_timeout_ms,
                fault_seed,
                snapshot,
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(
                    releases,
                    vec![
                        ("a".to_string(), "a.json".to_string()),
                        ("b".to_string(), "b.json".to_string())
                    ]
                );
                assert_eq!(workers, None, "workers defaults to available parallelism");
                assert_eq!(max_sample_n, None, "cap defaults to the protocol limit");
                assert_eq!(request_timeout_ms, None, "deadline defaults to the server's");
                assert_eq!(idle_timeout_ms, None, "deadline defaults to the server's");
                assert_eq!(fault_seed, None, "fault injection defaults to off");
                assert_eq!(snapshot, None, "no snapshot file by default");
            }
            other => panic!("wrong command {other:?}"),
        }
        // No preloaded releases is fine (hot-load via the `load` op).
        assert!(matches!(
            parse_args(&v(&["serve", "--addr", "127.0.0.1:0"])).unwrap(),
            Command::Serve { releases, .. } if releases.is_empty()
        ));
    }

    #[test]
    fn parses_serve_pool_flags() {
        let cmd = parse_args(&v(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "8",
            "--max-sample-n",
            "2097152",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Serve { workers: Some(8), max_sample_n: Some(2_097_152), .. }
        ));
        let e = parse_args(&v(&["serve", "--addr", "x", "--workers", "0"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--max-sample-n", "0"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--workers", "2", "--workers", "3"]))
            .unwrap_err();
        assert!(e.0.contains("twice"), "{}", e.0);
    }

    #[test]
    fn parses_serve_deadline_and_chaos_flags() {
        let cmd = parse_args(&v(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--request-timeout-ms",
            "2500",
            "--idle-timeout-ms",
            "0",
            "--fault-seed",
            "42",
            "--registry-snapshot",
            "/tmp/reg.snapshot",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                request_timeout_ms, idle_timeout_ms, fault_seed, snapshot, ..
            } => {
                assert_eq!(request_timeout_ms, Some(2500));
                assert_eq!(idle_timeout_ms, Some(0), "0 means disabled, not default");
                assert_eq!(fault_seed, Some(42));
                assert_eq!(snapshot.as_deref(), Some("/tmp/reg.snapshot"));
            }
            other => panic!("wrong command {other:?}"),
        }
        let e =
            parse_args(&v(&["serve", "--addr", "x", "--request-timeout-ms", "abc"])).unwrap_err();
        assert!(e.0.contains("not a non-negative integer"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--fault-seed", "1", "--fault-seed", "2"]))
            .unwrap_err();
        assert!(e.0.contains("twice"), "{}", e.0);
    }

    #[test]
    fn serve_flag_validation() {
        let e = parse_args(&v(&["serve", "--release", "a=a.json"])).unwrap_err();
        assert!(e.0.contains("--addr"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--release", "nopath"])).unwrap_err();
        assert!(e.0.contains("name=path"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--release", "a=1", "--release", "a=2"]))
            .unwrap_err();
        assert!(e.0.contains("twice"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr", "x", "--port", "1"])).unwrap_err();
        assert!(e.0.contains("unknown serve flag"), "{}", e.0);
        let e = parse_args(&v(&["serve", "--addr"])).unwrap_err();
        assert!(e.0.contains("missing its value"), "{}", e.0);
    }

    #[test]
    fn parses_client() {
        let cmd =
            parse_args(&v(&["client", "--addr", "127.0.0.1:4750", "--json", "{\"op\":\"list\"}"]))
                .unwrap();
        match cmd {
            Command::Client { addr, request, binary, timeout_ms, retries } => {
                assert_eq!(addr, "127.0.0.1:4750");
                assert_eq!(request, "{\"op\":\"list\"}");
                assert!(!binary, "format defaults to json");
                assert_eq!(timeout_ms, None, "deadline defaults to the client's");
                assert_eq!(retries, 0, "single-shot by default (CI scripts rely on it)");
            }
            other => panic!("wrong command {other:?}"),
        }
        let e = parse_args(&v(&["client", "--addr", "x"])).unwrap_err();
        assert!(e.0.contains("--json"), "{}", e.0);
    }

    #[test]
    fn parses_client_retry_flags() {
        let cmd = parse_args(&v(&[
            "client",
            "--addr",
            "x",
            "--json",
            "{}",
            "--timeout-ms",
            "5000",
            "--retries",
            "12",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Client { timeout_ms: Some(5000), retries: 12, .. }));
        let e = parse_args(&v(&["client", "--addr", "x", "--json", "{}", "--timeout-ms", "0"]))
            .unwrap_err();
        assert!(e.0.contains("at least 1"), "{}", e.0);
        let e = parse_args(&v(&["client", "--addr", "x", "--json", "{}", "--retries", "-1"]))
            .unwrap_err();
        assert!(e.0.contains("not a non-negative integer"), "{}", e.0);
    }

    #[test]
    fn parses_client_format() {
        let base =
            |fmt: &str| parse_args(&v(&["client", "--addr", "x", "--json", "{}", "--format", fmt]));
        assert!(matches!(base("binary").unwrap(), Command::Client { binary: true, .. }));
        assert!(matches!(base("json").unwrap(), Command::Client { binary: false, .. }));
        let e = base("yaml").unwrap_err();
        assert!(e.0.contains("json|binary"), "{}", e.0);
    }

    #[test]
    fn parses_cluster() {
        let cmd = parse_args(&v(&[
            "cluster",
            "--shards",
            "3",
            "--addr",
            "127.0.0.1:4800",
            "--release",
            "a=a.json",
            "--release",
            "b=b.json",
        ]))
        .unwrap();
        match cmd {
            Command::Cluster { shards, base_addr, releases, replication, snapshot_dir } => {
                assert_eq!(shards, 3);
                assert_eq!(base_addr, "127.0.0.1:4800");
                assert_eq!(releases.len(), 2);
                assert_eq!(replication, 2, "replication defaults to 2");
                assert_eq!(snapshot_dir, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&v(&[
            "cluster",
            "--shards",
            "4",
            "--addr",
            "h:1",
            "--replication",
            "3",
            "--snapshot-dir",
            "/tmp/cl",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Cluster { replication: 3, snapshot_dir: Some(ref d), .. } if d == "/tmp/cl"
        ));
        let e = parse_args(&v(&["cluster", "--addr", "h:1"])).unwrap_err();
        assert!(e.0.contains("--shards"), "{}", e.0);
        let e = parse_args(&v(&["cluster", "--shards", "0", "--addr", "h:1"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{}", e.0);
        let e =
            parse_args(&v(&["cluster", "--shards", "2", "--addr", "h:1", "--replication", "0"]))
                .unwrap_err();
        assert!(e.0.contains("at least 1"), "{}", e.0);
    }

    #[test]
    fn parses_cluster_client() {
        let cmd = parse_args(&v(&[
            "cluster-client",
            "--endpoints",
            "127.0.0.1:4800, 127.0.0.1:4801,127.0.0.1:4802",
            "--json",
            "{\"op\":\"list\"}",
        ]))
        .unwrap();
        match cmd {
            Command::ClusterClient {
                endpoints,
                request,
                binary,
                timeout_ms,
                retries,
                replication,
            } => {
                assert_eq!(endpoints, ["127.0.0.1:4800", "127.0.0.1:4801", "127.0.0.1:4802"]);
                assert_eq!(request, "{\"op\":\"list\"}");
                assert!(!binary);
                assert_eq!(timeout_ms, None);
                assert_eq!(retries, 0);
                assert_eq!(replication, 2, "replication defaults to the cluster default");
            }
            other => panic!("wrong command {other:?}"),
        }
        let cmd = parse_args(&v(&[
            "cluster-client",
            "--endpoints",
            "a:1,b:2",
            "--json",
            "{}",
            "--format",
            "binary",
            "--retries",
            "5",
            "--replication",
            "1",
        ]))
        .unwrap();
        assert!(matches!(
            cmd,
            Command::ClusterClient { binary: true, retries: 5, replication: 1, .. }
        ));
        let e =
            parse_args(&v(&["cluster-client", "--endpoints", ",", "--json", "{}"])).unwrap_err();
        assert!(e.0.contains("at least one address"), "{}", e.0);
        let e = parse_args(&v(&["cluster-client", "--json", "{}"])).unwrap_err();
        assert!(e.0.contains("--endpoints"), "{}", e.0);
    }

    #[test]
    fn missing_flags_reported() {
        let e = parse_args(&v(&["build", "--input", "d.csv"])).unwrap_err();
        assert!(e.0.contains("--output"), "message was: {}", e.0);
    }

    #[test]
    fn dangling_flag_rejected() {
        let e = parse_args(&v(&["sample", "--release"])).unwrap_err();
        assert!(e.0.contains("missing its value"));
    }

    #[test]
    fn duplicate_flag_rejected() {
        let e = parse_args(&v(&["info", "--release", "a", "--release", "b"])).unwrap_err();
        assert!(e.0.contains("twice"));
    }

    #[test]
    fn unknown_subcommand() {
        let e = parse_args(&v(&["frobnicate"])).unwrap_err();
        assert!(e.0.contains("unknown subcommand"));
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }
}
