//! Process-level cluster chaos: real `privhp serve` shard processes,
//! SIGKILLed mid-traffic, driven through the failover [`ClusterClient`].
//!
//! This is the fleet analogue of the in-process chaos suite: with 3
//! shards and replication 2, killing one owner of a release must leave
//! every request — in-flight and subsequent, JSON and binary — settling
//! **bit-identical** to the fault-free baseline via failover; killing
//! both owners must settle the release's requests as the structured
//! retryable `unavailable` error; and a shard restarted from its
//! registry snapshot must be readmitted by the breaker (half-open →
//! closed) serving the same bytes.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use privhp_cli::commands::run_build;
use privhp_cli::{DomainSpec, ReleaseFormat};
use privhp_serve::{owners, BreakerState, Client, ClientError, ClusterClient, RetryPolicy};
use serde::Value;

const BIN: &str = env!("CARGO_BIN_EXE_privhp");
const REPLICATION: usize = 2;

/// Temp workspace removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("privhp-cluster-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, file: &str) -> String {
        self.0.join(file).display().to_string()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills every child on drop so a failing assert can't leak processes.
struct Fleet(Vec<Option<Child>>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in self.0.iter_mut().flatten() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Builds one tiny deterministic release file; the name-derived seed
/// means any replica — including a restarted one — serves the same
/// bytes.
fn build_release(scratch: &Scratch, name: &str) -> String {
    let seed: u64 = name.bytes().map(u64::from).sum();
    let csv: String =
        (0..256).map(|i| format!("{}\n", (i as f64 / 256.0).powi(2) * 0.999)).collect();
    let json = run_build(&csv, 1.0, 8, DomainSpec::Interval, seed, 1, ReleaseFormat::Json).unwrap();
    let path = scratch.path(&format!("{name}.json"));
    std::fs::write(&path, json).unwrap();
    path
}

/// Spawns one `privhp serve` shard with a registry snapshot file,
/// returning the child and its bound address (parsed from the ready
/// line).
fn spawn_shard(snapshot: &str, explicit_addr: Option<&str>) -> (Child, String) {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--addr",
            explicit_addr.unwrap_or("127.0.0.1:0"),
            "--registry-snapshot",
            snapshot,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn privhp serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before its ready line")
            .expect("readable shard stdout");
        if let Some((_, addr)) = line.split_once("listening on ") {
            break addr.trim().to_string();
        }
    };
    // Leave the remaining stdout unread: shards print nothing further
    // until shutdown, so the pipe cannot fill.
    (child, addr)
}

/// Boots a 3-shard fleet on ephemeral ports with empty registries.
fn boot_fleet(scratch: &Scratch) -> (Fleet, Vec<String>) {
    let mut children = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..3 {
        let (child, addr) = spawn_shard(&scratch.path(&format!("shard-{i}.snapshot")), None);
        children.push(Some(child));
        endpoints.push(addr);
    }
    (Fleet(children), endpoints)
}

/// Builds a release and hot-loads it onto the shards that own it under
/// the routing's own `owners` partitioning (each shard then records it
/// in its snapshot).
fn load_release(scratch: &Scratch, endpoints: &[String], name: &str) {
    let path = build_release(scratch, name);
    for i in owners(name, endpoints, REPLICATION) {
        let mut c = Client::connect_with(&endpoints[i], fast_policy()).unwrap();
        let reply = c
            .request(&format!("{{\"op\":\"load\",\"name\":\"{name}\",\"path\":\"{path}\"}}"))
            .unwrap();
        assert!(reply.starts_with("{\"ok\":true"), "load failed on shard {i}: {reply}");
    }
}

/// A release name with an owner *set* different from `taken` (order
/// ignored: same owners in reversed rendezvous order still die with the
/// victim) — found by scanning candidate names, since ephemeral ports
/// make hashing unpredictable. With 2-of-3 replication this means the
/// candidate is owned by the shard that survives the victim's owners
/// dying.
fn bystander_name(endpoints: &[String], taken: &[usize]) -> String {
    let mut taken: Vec<usize> = taken.to_vec();
    taken.sort_unstable();
    (0..64)
        .map(|i| format!("bystander-{i}"))
        .find(|name| {
            let mut set = owners(name, endpoints, REPLICATION);
            set.sort_unstable();
            set != taken
        })
        .expect("64 candidate names always yield a second owner set")
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        retries: 3,
        timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

fn sample_req(release: &str) -> String {
    format!("{{\"op\":\"sample\",\"release\":\"{release}\",\"n\":32,\"seed\":17}}")
}

fn sigkill(fleet: &mut Fleet, i: usize) {
    let mut child = fleet.0[i].take().expect("shard still running");
    child.kill().expect("SIGKILL shard");
    child.wait().expect("reap shard");
}

#[test]
fn sigkill_mid_traffic_fails_over_bit_identically_then_unavailable() {
    let scratch = Scratch::new("kill");
    let (mut fleet, endpoints) = boot_fleet(&scratch);

    let victim = "alpha";
    let owner_set = owners(victim, &endpoints, REPLICATION);
    let bystander = bystander_name(&endpoints, &owner_set);
    load_release(&scratch, &endpoints, victim);
    load_release(&scratch, &endpoints, &bystander);

    let mut cluster = ClusterClient::with_policy(&endpoints, REPLICATION, fast_policy()).unwrap();

    // Fault-free baselines, JSON and binary, through the router itself.
    let req = sample_req(victim);
    let baseline = cluster.request(&req).unwrap();
    let bystander_baseline = cluster.request(&sample_req(&bystander)).unwrap();
    cluster.set_binary();
    let (baseline_header, baseline_lanes) = cluster.request_expect_payload(&req).unwrap();
    assert!(baseline_lanes.is_some(), "binary sample carries a payload");
    cluster.request("{\"op\":\"format\",\"encoding\":\"json\"}").unwrap();

    // Driver thread hammers the victim release while the kill lands:
    // every response it sees must be the baseline, bit for bit.
    let driver = {
        let endpoints = endpoints.clone();
        let req = req.clone();
        let baseline = baseline.clone();
        std::thread::spawn(move || {
            let mut cc = ClusterClient::with_policy(&endpoints, REPLICATION, fast_policy())
                .expect("driver client");
            for i in 0..500 {
                let reply =
                    cc.request(&req).unwrap_or_else(|e| panic!("driver request {i} failed: {e}"));
                assert_eq!(reply, baseline, "request {i} changed bytes under the kill");
            }
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    sigkill(&mut fleet, owner_set[0]);
    driver.join().expect("driver thread");

    // Post-kill: JSON and binary still settle to the baselines.
    for _ in 0..4 {
        assert_eq!(cluster.request(&req).unwrap(), baseline);
    }
    cluster.set_binary();
    let (header, lanes) = cluster.request_expect_payload(&req).unwrap();
    assert_eq!(header, baseline_header, "binary header changed under failover");
    assert_eq!(lanes, baseline_lanes, "binary payload changed under failover");
    cluster.request("{\"op\":\"format\",\"encoding\":\"json\"}").unwrap();

    // Both owners dead: the release settles as structured retryable
    // `unavailable`; a release with a live owner keeps serving.
    sigkill(&mut fleet, owner_set[1]);
    match cluster.request(&req) {
        Err(ClientError::Server { code, frame }) => {
            assert_eq!(code.as_deref(), Some("unavailable"));
            assert!(frame.contains(victim), "frame must name the release: {frame}");
        }
        other => panic!("expected unavailable, got {other:?}"),
    }
    assert_eq!(cluster.request(&sample_req(&bystander)).unwrap(), bystander_baseline);

    // Degraded-mode observability: the merged stats document shows one
    // reachable endpoint and still satisfies the accounting identity.
    let stats = cluster.stats();
    let agg = stats.get("aggregate").expect("aggregate object");
    let get = |k: &str| agg.get(k).and_then(Value::as_u64).unwrap();
    assert_eq!(get("reachable"), 1);
    assert_eq!(
        get("connections"),
        get("served")
            + get("shed")
            + get("timed_out")
            + get("idle_closed")
            + get("io_error")
            + get("open"),
        "aggregate accounting identity broken: {stats:?}"
    );
}

#[test]
fn killed_shard_restarts_from_snapshot_and_breaker_readmits_it() {
    let scratch = Scratch::new("restart");
    let (mut fleet, endpoints) = boot_fleet(&scratch);

    let victim = "alpha";
    let first = owners(victim, &endpoints, REPLICATION)[0];
    load_release(&scratch, &endpoints, victim);

    let mut cluster = ClusterClient::with_policy(&endpoints, REPLICATION, fast_policy()).unwrap();
    let req = sample_req(victim);
    let baseline = cluster.request(&req).unwrap();

    // Drop our pooled connections *before* the kill: the shard's port
    // then holds no TIME_WAIT sockets, so the restart can re-bind it
    // immediately.
    cluster.disconnect();
    sigkill(&mut fleet, first);

    // Traffic fails over and trips the dead endpoint's breaker.
    for _ in 0..6 {
        assert_eq!(cluster.request(&req).unwrap(), baseline, "failover changed the bytes");
    }
    assert!(
        cluster
            .breaker_states()
            .iter()
            .any(|(e, s)| *e == endpoints[first] && *s != BreakerState::Closed),
        "repeated connect failures must trip the breaker"
    );

    // Restart from the snapshot alone — no --release flags. The shard
    // wrote it when its `load` landed, so it comes back owning exactly
    // its old slice.
    let (child, addr) =
        spawn_shard(&scratch.path(&format!("shard-{first}.snapshot")), Some(&endpoints[first]));
    assert_eq!(addr, endpoints[first], "restart must re-bind the old endpoint");
    fleet.0[first] = Some(child);

    // Past the millisecond cool-down the breaker half-opens; the next
    // request probes the restarted shard, closes it, and gets the same
    // bytes the snapshot's releases always produced.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        cluster
            .breaker_states()
            .iter()
            .any(|(e, s)| *e == endpoints[first] && *s == BreakerState::HalfOpen),
        "cool-down elapsed: breaker should be half-open"
    );
    assert_eq!(cluster.request(&req).unwrap(), baseline, "restarted shard changed the bytes");
    assert!(
        cluster
            .breaker_states()
            .iter()
            .any(|(e, s)| *e == endpoints[first] && *s == BreakerState::Closed),
        "successful probe should close the breaker"
    );
}
