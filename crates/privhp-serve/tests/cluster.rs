//! Cluster integration tests: real shard servers on real sockets behind
//! a [`ClusterClient`], with shard shutdowns mid-suite.
//!
//! The contract under test is the fleet half of the robustness story:
//! with 3 shards and replication 2, routed responses are **bit-identical**
//! to direct single-server responses; killing one owner of a release
//! fails traffic over to the surviving replica with identical bytes and
//! opens the dead endpoint's breaker; killing both owners settles the
//! release's requests as a structured retryable `unavailable` error
//! naming it; and restarting a shard half-opens and then closes the
//! breaker with — again — identical bytes.

use std::sync::Arc;
use std::time::Duration;

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_serve::{
    owners, BreakerState, Client, ClientError, ClusterClient, LoadedRelease, Registry, RetryPolicy,
    Server, ServerConfig,
};
use serde::Value;

fn tiny_release(seed: u64) -> ReleaseFile {
    let data: Vec<f64> =
        (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
    let mut rng = rng_from_seed(seed);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(seed);
    let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
    ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
}

/// Deterministic seed per release name, so every replica of a release —
/// including one booted later for a "restart" — holds identical bytes.
fn release_seed(name: &str) -> u64 {
    name.bytes().map(u64::from).sum()
}

const RELEASES: [&str; 3] = ["alpha", "beta", "gamma"];
const REPLICATION: usize = 2;

/// Boots one shard at `addr` (`"127.0.0.1:0"` for ephemeral) holding
/// `names`.
fn boot_shard(addr: &str, names: &[&str]) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let registry = Registry::new();
    for name in names {
        registry.insert(LoadedRelease::from_release(*name, tiny_release(release_seed(name))));
    }
    let config = ServerConfig { workers: 2, queue_depth: 16, ..ServerConfig::default() };
    let server = Arc::new(Server::bind_with(addr, registry, config).expect("bind shard"));
    let bound = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run());
    (server, bound, handle)
}

/// Boots a 3-shard cluster on ephemeral ports, partitioning [`RELEASES`]
/// with the same [`owners`] function the client routes by. Returns the
/// shards (server, addr, join handle) in endpoint order.
#[allow(clippy::type_complexity)]
fn boot_cluster() -> Vec<(Arc<Server>, String, std::thread::JoinHandle<()>)> {
    // Bind all three first: owner sets depend on the (ephemeral) ports.
    let shards: Vec<_> = (0..3).map(|_| boot_shard("127.0.0.1:0", &[])).collect();
    let endpoints: Vec<String> = shards.iter().map(|(_, addr, _)| addr.clone()).collect();
    for name in RELEASES {
        for i in owners(name, &endpoints, REPLICATION) {
            shards[i]
                .0
                .registry()
                .insert(LoadedRelease::from_release(name, tiny_release(release_seed(name))));
        }
    }
    shards
}

/// Fast-failover policy: short deadlines and millisecond cool-downs so
/// breaker transitions happen inside a test's patience.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        retries: 2,
        timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

fn shut_down(shard: (Arc<Server>, String, std::thread::JoinHandle<()>)) -> String {
    let (server, addr, handle) = shard;
    server.request_shutdown();
    handle.join().unwrap();
    addr
}

fn sample_req(release: &str) -> String {
    format!("{{\"op\":\"sample\",\"release\":\"{release}\",\"n\":48,\"seed\":11}}")
}

fn breaker_of(client: &ClusterClient, endpoint: &str) -> BreakerState {
    client
        .breaker_states()
        .into_iter()
        .find_map(|(e, s)| (e == endpoint).then_some(s))
        .expect("endpoint known to the client")
}

#[test]
fn routed_requests_match_direct_requests_bit_for_bit() {
    let shards = boot_cluster();
    let endpoints: Vec<String> = shards.iter().map(|(_, addr, _)| addr.clone()).collect();
    let mut cluster = ClusterClient::with_policy(&endpoints, REPLICATION, fast_policy()).unwrap();

    for name in RELEASES {
        let req = sample_req(name);
        // Direct baseline from the release's primary owner.
        let primary = owners(name, &endpoints, REPLICATION)[0];
        let mut direct = Client::connect_with(&endpoints[primary], fast_policy()).unwrap();
        let baseline = direct.request(&req).unwrap();
        assert_eq!(cluster.request(&req).unwrap(), baseline, "routed '{name}' differs");

        // The binary encoding routes identically: decoded lanes match the
        // owner's own binary reply.
        direct.set_binary().unwrap();
        let (bh, bp) = direct.request_expect_payload(&req).unwrap();
        cluster.set_binary();
        let (ch, cp) = cluster.request_expect_payload(&req).unwrap();
        assert_eq!(ch, bh, "binary header differs for '{name}'");
        assert_eq!(cp, bp, "binary payload differs for '{name}'");
        // Back to JSON for the next release's baseline.
        assert!(cluster.request("{\"op\":\"format\",\"encoding\":\"json\"}").is_ok());
    }

    // `list` merges the full release set, each name exactly once even
    // though every release lives on two shards.
    let list = cluster.request("{\"op\":\"list\"}").unwrap();
    let v = serde_json::parse_value_str(&list).unwrap();
    let names: Vec<&str> = v
        .get("releases")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|s| s.get("name").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(names, RELEASES, "merged list must be deduplicated and sorted");

    // A malformed frame settles as a structured terminal answer without
    // touching any shard.
    let reply = cluster.request("{\"op\":\"sample\"}").unwrap();
    assert!(reply.starts_with("{\"ok\":false"), "{reply}");

    // The merged stats document sums to the accounting identity.
    let stats = cluster.stats();
    let agg = stats.get("aggregate").expect("aggregate object");
    let get = |k: &str| agg.get(k).and_then(Value::as_u64).unwrap_or_else(|| panic!("no {k}"));
    assert_eq!(get("reachable"), 3);
    assert_eq!(
        get("connections"),
        get("served")
            + get("shed")
            + get("timed_out")
            + get("idle_closed")
            + get("io_error")
            + get("open"),
        "cluster aggregate accounting identity broken: {stats:?}"
    );

    for (server, _, handle) in shards {
        server.request_shutdown();
        handle.join().unwrap();
    }
}

#[test]
fn failover_is_bit_identical_and_unavailable_fires_and_recovers() {
    let mut shards = boot_cluster();
    let endpoints: Vec<String> = shards.iter().map(|(_, addr, _)| addr.clone()).collect();
    let mut cluster = ClusterClient::with_policy(&endpoints, REPLICATION, fast_policy()).unwrap();

    let victim_release = "alpha";
    let owner_set = owners(victim_release, &endpoints, REPLICATION);
    let (first, second) = (owner_set[0], owner_set[1]);
    let survivor =
        (0..3).find(|i| !owner_set.contains(i)).expect("3 shards, 2 owners: one bystander");
    // A release the bystander owns keeps serving throughout.
    let bystander_release = RELEASES
        .iter()
        .find(|name| owners(name, &endpoints, REPLICATION).contains(&survivor))
        .expect("some release is owned by the bystander");

    let req = sample_req(victim_release);
    let baseline = cluster.request(&req).unwrap();
    let bystander_req = sample_req(bystander_release);
    let bystander_baseline = cluster.request(&bystander_req).unwrap();

    // Close our pooled connections *before* the shard goes down, so its
    // port isn't pinned in TIME_WAIT and the later restart can re-bind.
    cluster.disconnect();
    let first_addr = shut_down(shards.remove(first));

    // Failover: every request settles bit-identical via the surviving
    // replica, and the dead endpoint's consecutive failures open its
    // breaker (after which it's skipped without touching the network).
    for _ in 0..6 {
        assert_eq!(cluster.request(&req).unwrap(), baseline, "failover changed the bytes");
    }
    // With millisecond cool-downs the breaker may already be probing
    // again (half-open); the invariant is that it is no longer closed.
    assert_ne!(
        breaker_of(&cluster, &first_addr),
        BreakerState::Closed,
        "repeated connect failures must trip the breaker"
    );
    assert_eq!(cluster.request(&bystander_req).unwrap(), bystander_baseline);

    // Second owner down: the release is now unavailable — a structured,
    // retryable error naming it — while the bystander's keeps serving.
    cluster.disconnect();
    // `first` was removed from the vec; locate `second` by address.
    let second_pos = shards
        .iter()
        .position(|(_, addr, _)| *addr == endpoints[second])
        .expect("second owner still booted");
    shut_down(shards.remove(second_pos));
    match cluster.request(&req) {
        Err(ClientError::Server { code, frame }) => {
            assert_eq!(code.as_deref(), Some("unavailable"));
            assert!(frame.contains(victim_release), "frame must name the release: {frame}");
            assert!(privhp_serve::code_is_retryable("unavailable"));
        }
        other => panic!("expected unavailable, got {other:?}"),
    }
    assert_eq!(cluster.request(&bystander_req).unwrap(), bystander_baseline);

    // Partial outage is visible, not silent: the merged stats document
    // reports the down endpoints' breakers and fetch errors.
    let stats = cluster.stats();
    assert_eq!(stats.get("aggregate").unwrap().get("reachable").and_then(Value::as_u64), Some(1));

    // "Restart" the first owner at its old address with its old slice
    // (same release seed → same bytes, like a snapshot restore would).
    let shard_releases: Vec<&str> = RELEASES
        .iter()
        .filter(|name| owners(name, &endpoints, REPLICATION).contains(&first))
        .copied()
        .collect();
    let restarted = boot_shard(&first_addr, &shard_releases);

    // Past the (millisecond) cool-down the breaker half-opens; the next
    // request probes, closes it, and serves the baseline bytes again.
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        breaker_of(&cluster, &first_addr),
        BreakerState::HalfOpen,
        "cool-down elapsed: breaker should be half-open"
    );
    assert_eq!(cluster.request(&req).unwrap(), baseline, "recovered shard changed the bytes");
    assert_eq!(breaker_of(&cluster, &first_addr), BreakerState::Closed, "probe should close it");

    shut_down(restarted);
    for shard in shards {
        shut_down(shard);
    }
}
