//! Table-driven taxonomy test: every structured error the server can
//! emit round-trips its `code` through a real frame, and the client-side
//! classifier ([`privhp_serve::client::frame_error`] +
//! [`privhp_serve::ClientError::is_retryable`]) agrees exactly with the
//! server-side [`privhp_serve::protocol::ERROR_CODES`] table — the
//! retry/don't-retry contract is one table, not two opinions.

use std::sync::Arc;
use std::time::Duration;

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_serve::client::frame_error;
use privhp_serve::protocol::{busy_frame, error_frame, ErrorReply, ERROR_CODES};
use privhp_serve::{
    code_is_retryable, oneshot, ClientError, LoadedRelease, Registry, Server, ServerConfig,
};
use serde::Value;

/// Builds the canonical frame for each code in [`ERROR_CODES`], through
/// the same constructors the server uses.
fn frame_for(code: &str) -> String {
    match code {
        "busy" => busy_frame(),
        "request_timeout" => ErrorReply::request_timeout(1500).frame(),
        "idle_timeout" => ErrorReply::idle_timeout(60_000).frame(),
        "unavailable" => ErrorReply::unavailable("x").frame(),
        "sample_cap" => ErrorReply::sample_cap(2_000_000, 1_000_000).frame(),
        "bad_request" => ErrorReply::bad_request("missing field 'n'".into()).frame(),
        "unknown_release" => ErrorReply::unknown_release("unknown release 'x'".into()).frame(),
        "internal" => ErrorReply::internal().frame(),
        other => panic!("ERROR_CODES gained '{other}' without a constructor in this table"),
    }
}

#[test]
fn every_error_code_round_trips_and_classifies_like_the_client() {
    for &(code, retryable) in ERROR_CODES.iter() {
        let frame = frame_for(code);

        // The frame parses and carries its machine-readable code.
        let v = serde_json::parse_value_str(&frame)
            .unwrap_or_else(|e| panic!("unparseable {code} frame '{frame}': {e}"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{frame}");
        assert_eq!(v.get("code").and_then(Value::as_str), Some(code), "{frame}");
        assert!(v.get("error").and_then(Value::as_str).is_some(), "{frame}");

        // The client classifies it exactly as the table says.
        let err = frame_error(&frame)
            .unwrap_or_else(|| panic!("client missed the {code} error frame '{frame}'"));
        assert_eq!(
            err.is_retryable(),
            retryable,
            "client/server disagree on whether '{code}' is retryable"
        );
        assert_eq!(code_is_retryable(code), retryable, "table self-consistency for '{code}'");
        match err {
            ClientError::Server { code: Some(c), .. } => assert_eq!(c, code),
            other => panic!("expected a coded server error for '{code}', got {other:?}"),
        }
    }
}

#[test]
fn codeless_and_transport_failures_classify_conservatively() {
    // A legacy codeless error frame: terminal (retrying can't help if we
    // can't even tell what failed).
    let err = frame_error(&error_frame("something broke")).expect("codeless frame is an error");
    assert!(!err.is_retryable(), "codeless frames must be terminal");

    // An unknown future code: conservatively terminal.
    assert!(!code_is_retryable("rate_limited_v9"), "unknown codes must be terminal");

    // Success frames and non-frames are not errors at all.
    assert!(frame_error("{\"ok\":true,\"op\":\"list\"}").is_none());
    assert!(frame_error("not json at all").is_none());

    // Transport-level failures (no authoritative answer exists) always
    // invite a retry.
    assert!(ClientError::Transport("connection reset".into()).is_retryable());
    assert!(ClientError::Timeout("no response within 5s".into()).is_retryable());
}

/// The codes a live server actually emits match the table's spelling —
/// guards against a constructor drifting away from `ERROR_CODES`.
#[test]
fn live_server_frames_carry_the_tabled_codes() {
    let data: Vec<f64> =
        (0..256).map(|i| ((i as f64 / 256.0).powi(2) * 0.999).min(0.999)).collect();
    let mut rng = rng_from_seed(1);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(1);
    let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
    let release = ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone());

    let registry = Registry::new();
    registry.insert(LoadedRelease::from_release("r", release));
    let server_config = ServerConfig {
        workers: 2,
        queue_depth: 8,
        max_sample_n: 4,
        request_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    };
    let server = Arc::new(Server::bind_with("127.0.0.1:0", registry, server_config).unwrap());
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run());

    for (frame, want_code) in [
        ("this is not json", "bad_request"),
        ("{\"op\":\"frobnicate\"}", "bad_request"),
        ("{\"op\":\"sample\",\"release\":\"r\",\"n\":64,\"seed\":1}", "sample_cap"),
        ("{\"op\":\"sample\",\"release\":\"missing\",\"n\":1,\"seed\":1}", "unknown_release"),
        ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.9,0.1]}", "bad_request"),
    ] {
        let line = oneshot(&addr, frame).unwrap();
        let v = serde_json::parse_value_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{line}");
        assert_eq!(
            v.get("code").and_then(Value::as_str),
            Some(want_code),
            "frame '{frame}' answered '{line}'"
        );
        // And the client-side classifier accepts the live bytes.
        let err = frame_error(&line).expect("live error frame classifies");
        assert_eq!(err.is_retryable(), code_is_retryable(want_code), "{line}");
    }

    server.request_shutdown();
    handle.join().unwrap();
}
