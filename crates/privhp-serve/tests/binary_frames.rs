//! Binary bulk-sample frames and worker-pool backpressure, end to end.
//!
//! The binary encoding is a pure transport change: a negotiated
//! connection must hand back the *bit-identical* draw the JSON encoding
//! renders, including the empty draw and a draw at the configured cap.
//! The pool tests drive a deliberately tiny server (2 workers, queue
//! depth 1) to saturation and check that overflow connections are shed
//! with a structured `busy` frame while in-flight requests keep
//! completing.

use std::io::{BufRead, BufReader, Cursor};
use std::sync::Arc;

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_serve::protocol::{read_binary_payload, write_binary_payload};
use privhp_serve::{oneshot, Client, LoadedRelease, Registry, Server, ServerConfig};
use proptest::prelude::*;
use serde::Value;

fn tiny_release(seed: u64) -> ReleaseFile {
    let data: Vec<f64> =
        (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
    let mut rng = rng_from_seed(seed);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(seed);
    let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
    ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
}

/// Boots a server with an explicit pool shape on an ephemeral port.
fn start_server_with(
    releases: Vec<(&str, ReleaseFile)>,
    config: ServerConfig,
) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let registry = Registry::new();
    for (name, release) in releases {
        registry.insert(LoadedRelease::from_release(name, release));
    }
    let server =
        Arc::new(Server::bind_with("127.0.0.1:0", registry, config).expect("bind ephemeral port"));
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run());
    (server, addr, handle)
}

fn roomy() -> ServerConfig {
    ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() }
}

fn parse(line: &str) -> Value {
    serde_json::parse_value_str(line).unwrap_or_else(|e| panic!("unparseable frame '{line}': {e}"))
}

#[test]
fn binary_sample_is_bit_identical_to_the_json_encoding() {
    let (_server, addr, handle) = start_server_with(vec![("r", tiny_release(21))], roomy());
    let req = "{\"op\":\"sample\",\"release\":\"r\",\"n\":256,\"seed\":17}";

    // JSON path: points as parsed floats (the vendored serializer
    // round-trips f64 exactly, so parsing recovers the drawn bits).
    let json_points: Vec<f64> = parse(&oneshot(&addr, req).unwrap())
        .get("points")
        .and_then(Value::as_array)
        .expect("json sample carries points")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();

    // Binary path: negotiated frame, decoded payload.
    let mut c = Client::connect(&addr).unwrap();
    c.set_binary().unwrap();
    let (header, payload) = c.send_expect_payload(req).unwrap();
    let h = parse(&header);
    assert_eq!(h.get("ok").and_then(Value::as_bool), Some(true), "{header}");
    assert_eq!(h.get("encoding").and_then(Value::as_str), Some("binary"), "{header}");
    assert_eq!(h.get("domain").and_then(Value::as_str), Some("interval"), "{header}");
    assert_eq!(h.get("lanes").and_then(Value::as_u64), Some(1), "{header}");
    assert_eq!(h.get("n").and_then(Value::as_u64), Some(256), "{header}");
    let lanes = payload.expect("binary sample carries a payload");

    assert_eq!(lanes.len(), json_points.len());
    for (b, j) in lanes.iter().zip(&json_points) {
        assert_eq!(b.to_bits(), j.to_bits(), "binary {b} != json {j}");
    }

    // Negotiating back to JSON reverts the connection.
    let (ack, none) = c.send_expect_payload("{\"op\":\"format\",\"encoding\":\"json\"}").unwrap();
    assert_eq!(parse(&ack).get("encoding").and_then(Value::as_str), Some("json"));
    assert!(none.is_none());
    let (line, none) = c.send_expect_payload(req).unwrap();
    assert!(none.is_none(), "after reverting, samples are plain JSON again");
    assert!(parse(&line).get("points").is_some(), "{line}");

    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn empty_and_capped_draws_cross_the_binary_frame() {
    let config = ServerConfig { max_sample_n: 512, ..roomy() };
    let (_server, addr, handle) = start_server_with(vec![("r", tiny_release(22))], config);
    let mut c = Client::connect(&addr).unwrap();
    c.set_binary().unwrap();

    // n = 0: a header followed by an empty payload, not a special case.
    let (header, payload) =
        c.send_expect_payload("{\"op\":\"sample\",\"release\":\"r\",\"n\":0,\"seed\":1}").unwrap();
    assert_eq!(parse(&header).get("n").and_then(Value::as_u64), Some(0));
    assert_eq!(payload.expect("empty draw still sends a payload").len(), 0);

    // n = cap: the largest allowed draw crosses intact.
    let (_, payload) = c
        .send_expect_payload("{\"op\":\"sample\",\"release\":\"r\",\"n\":512,\"seed\":2}")
        .unwrap();
    assert_eq!(payload.unwrap().len(), 512);

    // n = cap + 1: a structured JSON error naming the cap, no payload —
    // and the connection survives it.
    let (line, payload) = c
        .send_expect_payload("{\"op\":\"sample\",\"release\":\"r\",\"n\":513,\"seed\":3}")
        .unwrap();
    assert!(payload.is_none(), "errors are never followed by a payload");
    let e = parse(&line);
    assert_eq!(e.get("ok").and_then(Value::as_bool), Some(false), "{line}");
    assert_eq!(e.get("code").and_then(Value::as_str), Some("sample_cap"), "{line}");
    assert_eq!(e.get("cap").and_then(Value::as_u64), Some(512), "{line}");
    assert!(
        e.get("error").and_then(Value::as_str).unwrap().contains("--max-sample-n"),
        "the error should name the knob: {line}"
    );
    let (_, payload) =
        c.send_expect_payload("{\"op\":\"sample\",\"release\":\"r\",\"n\":8,\"seed\":4}").unwrap();
    assert_eq!(payload.unwrap().len(), 8);

    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn saturated_pool_sheds_with_busy_frames_while_in_flight_work_completes() {
    let config = ServerConfig { workers: 2, queue_depth: 1, ..ServerConfig::default() };
    let (server, addr, handle) = start_server_with(vec![("r", tiny_release(23))], config);

    // Occupy both workers: a worker owns its connection until the peer
    // closes, so one completed request pins each. Connect and complete a
    // request one connection at a time — with queue depth 1, two
    // unserved connections in flight at once could overflow the queue
    // before a worker wakes, shedding one of them here.
    let ok = |line: String| {
        let v = parse(&line);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{line}");
        v
    };
    let mut a = Client::connect(&addr).unwrap();
    ok(a.send("{\"op\":\"list\"}").unwrap());
    let mut b = Client::connect(&addr).unwrap();
    ok(b.send("{\"op\":\"list\"}").unwrap());

    // Fill the single queue slot with a connection no worker can take...
    let queued = Client::connect(&addr).unwrap();
    // ...then overflow it: the newcomer must get a busy frame and a close,
    // while the accept loop keeps running.
    let overflow = std::net::TcpStream::connect(&addr).unwrap();
    let mut line = String::new();
    BufReader::new(overflow).read_line(&mut line).unwrap();
    let busy = parse(line.trim_end());
    assert_eq!(busy.get("ok").and_then(Value::as_bool), Some(false), "{line}");
    assert_eq!(busy.get("code").and_then(Value::as_str), Some("busy"), "{line}");

    // In-flight connections are unaffected by the shed, and the shed is
    // observable in the stats counters.
    let stats = ok(a.send("{\"op\":\"stats\"}").unwrap());
    assert!(stats.get("shed").and_then(Value::as_u64).unwrap() >= 1, "{stats:?}");
    let sampled = ok(b.send("{\"op\":\"sample\",\"release\":\"r\",\"n\":4,\"seed\":1}").unwrap());
    assert!(sampled.get("points").is_some());
    assert!(server.stats().shed() >= 1);

    // Freeing a worker drains the queued connection.
    drop(a);
    let mut queued = queued;
    assert!(ok(queued.send("{\"op\":\"list\"}").unwrap()).get("releases").is_some());

    let _ = queued.send("{\"op\":\"shutdown\"}").unwrap();
    drop(b);
    handle.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any f64 bit pattern — NaNs, infinities, subnormals, negative zero
    /// — survives the length-prefixed wire payload bit-exactly, at any
    /// length including zero.
    #[test]
    fn payload_round_trips_any_bits(
        bits in proptest::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let mut lanes: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        // Make sure the awkward values show up even in short vectors.
        for (i, special) in
            [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE / 2.0]
                .into_iter()
                .enumerate()
        {
            if i < lanes.len() {
                lanes[i] = special;
            }
        }
        let mut wire = Vec::new();
        write_binary_payload(&mut wire, &lanes).unwrap();
        prop_assert_eq!(wire.len(), 8 + lanes.len() * 8);
        let decoded = read_binary_payload(&mut Cursor::new(&wire)).unwrap();
        prop_assert_eq!(decoded.len(), lanes.len());
        for (d, l) in decoded.iter().zip(&lanes) {
            prop_assert_eq!(d.to_bits(), l.to_bits());
        }
    }

    /// A served binary draw equals the served JSON draw bit for bit at
    /// every (n, seed) — the encoding is transport, not semantics.
    #[test]
    fn served_binary_equals_served_json(n in 0usize..96, seed in 0u64..1_000_000) {
        let (_server, addr, handle) =
            start_server_with(vec![("r", tiny_release(24))], roomy());
        let req = format!("{{\"op\":\"sample\",\"release\":\"r\",\"n\":{n},\"seed\":{seed}}}");

        let json_points: Vec<f64> = parse(&oneshot(&addr, &req).unwrap())
            .get("points")
            .and_then(Value::as_array)
            .expect("json sample carries points")
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();

        let mut c = Client::connect(&addr).unwrap();
        c.set_binary().unwrap();
        let (_, payload) = c.send_expect_payload(&req).unwrap();
        let lanes = payload.expect("binary sample carries a payload");

        prop_assert_eq!(lanes.len(), json_points.len());
        for (b, j) in lanes.iter().zip(&json_points) {
            prop_assert_eq!(b.to_bits(), j.to_bits());
        }

        let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
        handle.join().unwrap();
    }
}
