//! End-to-end protocol tests: a real [`Server`] on an ephemeral port,
//! driven over real sockets by [`Client`] connections.
//!
//! Covers the serving contract the CI smoke pipeline also relies on:
//! deterministic seeded samples (byte-identical repeats, equal to an
//! in-process [`ReleaseFile::generator`] draw), structured errors for
//! malformed/unknown frames without dropping the connection or listener,
//! concurrent clients, hot `load`, and graceful shutdown.

use std::sync::Arc;

use privhp_core::release::{DomainSpec, ReleaseFile};
use privhp_core::{PrivHp, PrivHpConfig};
use privhp_domain::UnitInterval;
use privhp_dp::rng::rng_from_seed;
use privhp_serve::registry::SAMPLE_SEED_XOR;
use privhp_serve::{oneshot, Client, LoadedRelease, Registry, Server, ServerConfig};
use serde::Value;

fn tiny_release(seed: u64) -> ReleaseFile {
    let data: Vec<f64> =
        (0..512).map(|i| ((i as f64 / 512.0).powi(2) * 0.999).min(0.999)).collect();
    let mut rng = rng_from_seed(seed);
    let config = PrivHpConfig::for_domain(1.0, data.len(), 8).with_seed(seed);
    let g = PrivHp::build(&UnitInterval::new(), config.clone(), data, &mut rng).unwrap();
    ReleaseFile::new(DomainSpec::Interval, config, g.tree().clone())
}

/// Boots a server with the given named releases on an ephemeral port;
/// returns it with its address and the serve-loop thread (joins cleanly
/// only after a shutdown).
///
/// Sized explicitly (not by host parallelism): several tests hold one
/// connection open while driving another, so the pool must exceed one
/// worker even on a single-core CI runner.
fn start_server(
    releases: Vec<(&str, ReleaseFile)>,
) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let registry = Registry::new();
    for (name, release) in releases {
        registry.insert(LoadedRelease::from_release(name, release));
    }
    let config = ServerConfig { workers: 4, queue_depth: 16, ..ServerConfig::default() };
    let server =
        Arc::new(Server::bind_with("127.0.0.1:0", registry, config).expect("bind ephemeral port"));
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let handle = std::thread::spawn(move || runner.run());
    (server, addr, handle)
}

fn parse(line: &str) -> Value {
    serde_json::parse_value_str(line).unwrap_or_else(|e| panic!("unparseable frame '{line}': {e}"))
}

fn assert_ok(line: &str) -> Value {
    let v = parse(line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "expected ok frame: {line}");
    v
}

fn assert_err(line: &str) -> String {
    let v = parse(line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "expected error frame: {line}");
    v.get("error").and_then(Value::as_str).expect("error frames carry a message").to_string()
}

#[test]
fn full_request_sweep_over_one_connection() {
    let (_server, addr, handle) = start_server(vec![("demo", tiny_release(3))]);
    let mut c = Client::connect(&addr).unwrap();

    let list = assert_ok(&c.send("{\"op\":\"list\"}").unwrap());
    let releases = list.get("releases").and_then(Value::as_array).unwrap();
    assert_eq!(releases.len(), 1);
    assert_eq!(releases[0].get("name").and_then(Value::as_str), Some("demo"));

    let info = assert_ok(&c.send("{\"op\":\"info\",\"release\":\"demo\"}").unwrap());
    assert_eq!(info.get("domain").and_then(Value::as_str), Some("interval"));
    assert!(info.get("tree_nodes").and_then(Value::as_u64).unwrap() > 1);
    assert!(info.get("mass").and_then(Value::as_f64).unwrap() > 0.0);

    // Determinism: the same seeded request twice is byte-identical.
    let req = "{\"op\":\"sample\",\"release\":\"demo\",\"n\":64,\"seed\":9}";
    let a = c.send(req).unwrap();
    let b = c.send(req).unwrap();
    assert_eq!(a, b, "seeded sample responses must be byte-identical");
    let other = c.send("{\"op\":\"sample\",\"release\":\"demo\",\"n\":64,\"seed\":10}").unwrap();
    assert_ne!(a, other, "different seeds must draw differently");
    let points = assert_ok(&a);
    assert_eq!(points.get("points").and_then(Value::as_array).unwrap().len(), 64);

    let cdf = assert_ok(&c.send("{\"op\":\"cdf\",\"release\":\"demo\",\"x\":0.5}").unwrap());
    let cdf_half = cdf.get("value").and_then(Value::as_f64).unwrap();
    assert!((cdf_half - 0.707).abs() < 0.15, "CDF(0.5) = {cdf_half}");

    let range =
        assert_ok(&c.send("{\"op\":\"query\",\"release\":\"demo\",\"range\":[0.0,0.5]}").unwrap());
    let range_mass = range.get("value").and_then(Value::as_f64).unwrap();
    assert!((range_mass - cdf_half).abs() < 1e-12, "range [0,0.5] must equal the CDF at 0.5");

    let point =
        assert_ok(&c.send("{\"op\":\"query\",\"release\":\"demo\",\"point\":0.3}").unwrap());
    assert!(point.get("leaf").and_then(Value::as_str).is_some());
    let mass = point.get("mass").and_then(Value::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&mass));

    let q = assert_ok(&c.send("{\"op\":\"query\",\"release\":\"demo\",\"quantile\":0.5}").unwrap());
    let median = q.get("value").and_then(Value::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&median));
    let mean = assert_ok(&c.send("{\"op\":\"query\",\"release\":\"demo\",\"mean\":true}").unwrap());
    assert!((mean.get("value").and_then(Value::as_f64).unwrap() - 0.333).abs() < 0.15);

    let stats = assert_ok(&c.send("{\"op\":\"stats\"}").unwrap());
    assert!(stats.get("requests").and_then(Value::as_u64).unwrap() >= 10);
    assert_eq!(stats.get("points_sampled").and_then(Value::as_u64), Some(192));
    assert!(stats.get("by_op").and_then(|o| o.get("sample")).and_then(Value::as_u64).unwrap() >= 3);

    let bye = assert_ok(&c.send("{\"op\":\"shutdown\"}").unwrap());
    assert_eq!(bye.get("stopping").and_then(Value::as_bool), Some(true));
    handle.join().expect("serve loop exits cleanly after shutdown");
}

#[test]
fn server_sample_matches_in_process_generator_at_equal_seeds() {
    let release = tiny_release(5);
    let (_server, addr, handle) = start_server(vec![("r", release.clone())]);

    let line = oneshot(&addr, "{\"op\":\"sample\",\"release\":\"r\",\"n\":32,\"seed\":7}").unwrap();
    let served: Vec<f64> = assert_ok(&line)
        .get("points")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();

    // The exact in-process equivalent of the server's sample path.
    let domain = UnitInterval::new();
    let sampler = release.generator(&domain);
    let mut rng = rng_from_seed(7 ^ SAMPLE_SEED_XOR);
    let direct = sampler.sample_many(32, &mut rng);

    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(s.to_bits(), d.to_bits(), "served {s} != in-process {d}");
    }

    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_frames_get_structured_errors_and_the_connection_survives() {
    let (_server, addr, handle) = start_server(vec![("r", tiny_release(1))]);
    let mut c = Client::connect(&addr).unwrap();

    for (frame, needle) in [
        ("this is not json", "invalid JSON"),
        ("[1,2,3]", "JSON object"),
        ("{\"no_op\":1}", "'op'"),
        ("{\"op\":\"frobnicate\"}", "unknown op"),
        ("{\"op\":\"sample\",\"release\":\"r\"}", "'n'"),
        ("{\"op\":\"sample\",\"release\":\"missing\",\"n\":1,\"seed\":1}", "unknown release"),
        ("{\"op\":\"query\",\"release\":\"r\"}", "one of"),
        ("{\"op\":\"query\",\"release\":\"r\",\"range\":[0.9,0.1]}", "range"),
        ("{\"op\":\"load\",\"name\":\"x\",\"path\":\"/nonexistent/release.json\"}", "cannot read"),
    ] {
        let e = assert_err(&c.send(frame).unwrap());
        assert!(e.contains(needle), "frame '{frame}': expected '{needle}' in '{e}'");
    }

    // After nine bad frames, the same connection still answers real work.
    assert_ok(&c.send("{\"op\":\"sample\",\"release\":\"r\",\"n\":4,\"seed\":2}").unwrap());
    // ...and the listener still accepts new connections.
    assert_ok(&oneshot(&addr, "{\"op\":\"list\"}").unwrap());

    let stats = assert_ok(&c.send("{\"op\":\"stats\"}").unwrap());
    assert!(stats.get("errors").and_then(Value::as_u64).unwrap() >= 9);

    let _ = c.send("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_see_identical_seeded_responses() {
    let (_server, addr, handle) = start_server(vec![("r", tiny_release(8))]);
    let req = "{\"op\":\"sample\",\"release\":\"r\",\"n\":128,\"seed\":42}";

    let responses: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    // Two requests per connection to interleave harder.
                    let first = c.send(req).unwrap();
                    let second = c.send(req).unwrap();
                    assert_eq!(first, second);
                    first
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for r in &responses[1..] {
        assert_eq!(r, &responses[0], "all concurrent clients must see the same bytes");
    }
    assert_ok(&responses[0]);

    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn hot_load_registers_and_replaces_releases() {
    let (_server, addr, handle) = start_server(vec![]);

    // Nothing loaded yet: sampling errors, listing is empty.
    let e = assert_err(
        &oneshot(&addr, "{\"op\":\"sample\",\"release\":\"x\",\"n\":1,\"seed\":1}").unwrap(),
    );
    assert!(e.contains("unknown release"), "{e}");
    let list = assert_ok(&oneshot(&addr, "{\"op\":\"list\"}").unwrap());
    assert!(list.get("releases").and_then(Value::as_array).unwrap().is_empty());

    let path = std::env::temp_dir().join(format!("privhp_serve_load_{}.json", std::process::id()));
    std::fs::write(&path, tiny_release(6).to_json()).unwrap();
    let mut c = Client::connect(&addr).unwrap();
    let load =
        format!("{{\"op\":\"load\",\"name\":\"hot\",\"path\":{:?}}}", path.display().to_string());
    let first = assert_ok(&c.send(&load).unwrap());
    assert_eq!(first.get("replaced").and_then(Value::as_bool), Some(false));
    let again = assert_ok(&c.send(&load).unwrap());
    assert_eq!(again.get("replaced").and_then(Value::as_bool), Some(true));

    assert_ok(&c.send("{\"op\":\"sample\",\"release\":\"hot\",\"n\":8,\"seed\":3}").unwrap());
    let _ = std::fs::remove_file(&path);

    let _ = c.send("{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn oversized_newline_less_stream_is_cut_off_with_an_error() {
    use privhp_serve::server::MAX_REQUEST_BYTES;
    use std::io::{BufRead, BufReader, Write};
    let (_server, addr, handle) = start_server(vec![("r", tiny_release(9))]);

    // Stream well past the line cap without ever sending a newline: the
    // server must answer with a structured error and close, not buffer
    // without bound.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= MAX_REQUEST_BYTES + chunk.len() {
        if stream.write_all(&chunk).is_err() {
            break; // server already closed on us — also acceptable
        }
        sent += chunk.len();
    }
    let _ = stream.flush();
    let mut line = String::new();
    let n = BufReader::new(stream).read_line(&mut line).unwrap_or(0);
    if n > 0 {
        assert!(assert_err(line.trim_end()).contains("too long"), "{line}");
    }
    // The listener survives the flood.
    assert_ok(&oneshot(&addr, "{\"op\":\"list\"}").unwrap());

    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_releases_idle_connections() {
    let (_server, addr, handle) = start_server(vec![("r", tiny_release(2))]);

    // An idle connection that never sends anything must not wedge the
    // serve loop's scope join.
    let idle = Client::connect(&addr).unwrap();
    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().expect("serve loop exits despite the idle connection");
    drop(idle);
}

#[test]
fn blank_lines_are_ignored_keepalives() {
    let (_server, addr, handle) = start_server(vec![("r", tiny_release(4))]);
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    // Two blank lines then a request: exactly one response must come back.
    stream.write_all(b"\n\n{\"op\":\"list\"}\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_ok(line.trim_end());
    let _ = oneshot(&addr, "{\"op\":\"shutdown\"}").unwrap();
    handle.join().unwrap();
}
